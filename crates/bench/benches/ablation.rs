//! Ablations of the framework's design choices (beyond the paper's own
//! figures):
//!
//! 1. **Join-unit granularity** — the paper argues units should be "of
//!    moderate size … without overwhelming the physical planner" (§3.3).
//!    Sweep the hash-bucket count and watch alignment/comparison balance
//!    against planning overhead.
//! 2. **Greedy write-lock schedule vs. an idealized network** — how much
//!    of the alignment makespan the paper's §3.4 congestion control
//!    explains versus a per-link-load lower bound.
//! 3. **Tabu's seed** — Algorithm 2 starts from MinBandwidth; seed its
//!    rebalancing loop from the skew-agnostic baseline instead and
//!    compare final plan quality.

use std::time::Duration;

use sj_bench::{bench_params, cluster_with_pair, run_join};
use sj_cluster::{simulate_shuffle, NetworkModel, Transfer};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

fn main() {
    let params = bench_params(32);
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 120_000,
        spatial_alpha: 0.0,
        value_alpha: 1.0,
        value_domain: 50_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let cluster = cluster_with_pair(4, a, b);
    let query = JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001);

    // ---- 1. Join-unit granularity. ------------------------------------
    println!("Ablation 1: hash-bucket count (join-unit granularity), Tabu planner");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "buckets", "plan (ms)", "align (ms)", "comp (ms)", "total (ms)"
    );
    for buckets in [16usize, 64, 256, 1024, 4096] {
        let m = run_join(
            &cluster,
            &query,
            PlannerKind::Tabu,
            Some(JoinAlgo::Hash),
            params,
            Some(buckets),
        );
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            buckets,
            m.physical_planning.as_secs_f64() * 1e3,
            m.alignment_seconds * 1e3,
            (m.slice_map_seconds + m.comparison_seconds) * 1e3,
            m.total_seconds() * 1e3,
        );
    }
    println!(
        "(coarse units limit the planner's options; very fine units raise \
         slice-mapping and planning overhead — §3.3's \"moderate size\")"
    );

    // ---- 2. Lock-scheduled shuffle vs idealized network. ----------------
    println!("\nAblation 2: greedy write-lock schedule vs per-link lower bound");
    println!(
        "{:>10} {:>16} {:>16} {:>8}",
        "pattern", "makespan (ms)", "lower bound (ms)", "ratio"
    );
    let net = NetworkModel::scaled_to_engine();
    let k = 6;
    let patterns: Vec<(&str, Vec<Transfer>)> = vec![
        (
            "all-to-one",
            (1..k)
                .map(|s| Transfer {
                    src: s,
                    dst: 0,
                    bytes: 400_000,
                })
                .collect(),
        ),
        ("all-to-all", {
            let mut ts = Vec::new();
            for s in 0..k {
                for d in 0..k {
                    if s != d {
                        ts.push(Transfer {
                            src: s,
                            dst: d,
                            bytes: 80_000,
                        });
                    }
                }
            }
            ts
        }),
        ("ring", {
            (0..k)
                .map(|s| Transfer {
                    src: s,
                    dst: (s + 1) % k,
                    bytes: 400_000,
                })
                .collect()
        }),
    ];
    for (name, transfers) in patterns {
        let report = simulate_shuffle(k, &net, &transfers).unwrap();
        let lower = report
            .sent_bytes
            .iter()
            .chain(&report.recv_bytes)
            .map(|&bytes| net.transfer_time(bytes))
            .fold(0.0f64, f64::max);
        println!(
            "{:>10} {:>16.2} {:>16.2} {:>8.2}",
            name,
            report.makespan * 1e3,
            lower * 1e3,
            report.makespan / lower
        );
    }
    println!(
        "(the greedy lock schedule stays near the per-link lower bound on \
         balanced patterns and serializes on converging ones, as designed)"
    );

    // ---- 3. Tabu seed quality. ------------------------------------------
    // Tabu always seeds from MBH (Algorithm 2). Compare the final plan
    // against its seed and against the baseline, showing how much the
    // rebalancing loop contributes on top of the greedy start.
    println!("\nAblation 3: Tabu vs its MBH seed vs the skew-agnostic baseline");
    println!("{:>10} {:>14} {:>14}", "planner", "model cost", "exec (ms)");
    for planner in [
        PlannerKind::Baseline,
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
        PlannerKind::IlpCoarse {
            budget: Duration::from_secs(1),
            bins: 75,
        },
    ] {
        let m = run_join(
            &cluster,
            &query,
            planner,
            Some(JoinAlgo::Hash),
            params,
            Some(256),
        );
        println!(
            "{:>10} {:>14.5} {:>14.2}",
            m.planner,
            m.est_physical_cost,
            (m.alignment_seconds + m.slice_map_seconds + m.comparison_seconds) * 1e3
        );
    }
}
