//! Figure 10: scale-out of the merge join from Figure 7 across cluster
//! sizes 2–12 (even), at fixed skew α = 1.0.
//!
//! Paper §6.4 findings this bench regenerates:
//! * the skew-aware planners on 2 nodes beat the baseline on 12;
//! * with few nodes the join is alignment-bound (few links);
//! * the ILP solvers converge quickly at small scale but drown in the
//!   richer decision space as nodes are added;
//! * MBH performs on par at small scale and best at large scale.

use std::time::Duration;

use sj_bench::{bench_params, cluster_with_pair, print_phase_table, run_join, PhaseRow};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const NODES: [usize; 6] = [2, 4, 6, 8, 10, 12];

fn main() {
    let params = bench_params(32);
    println!("Figure 10: merge join scale-out at Zipfian alpha = 1.0");

    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 120_000,
        spatial_alpha: 1.0,
        value_alpha: 0.0,
        value_domain: 100_000,
        seed: 42,
    };
    let (a, b) = skewed_pair(&cfg);

    let mut skew_aware_2node = f64::INFINITY;
    let mut baseline_12node = 0.0f64;
    for &k in &NODES {
        let cluster = cluster_with_pair(k, a.clone(), b.clone());
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]))
            .with_selectivity(0.0001);
        let mut rows = Vec::new();
        for planner in [
            PlannerKind::Baseline,
            PlannerKind::IlpCoarse {
                budget: Duration::from_secs(2),
                bins: 75,
            },
            PlannerKind::MinBandwidth,
            PlannerKind::Tabu,
        ] {
            let m = run_join(
                &cluster,
                &query,
                planner,
                Some(JoinAlgo::Merge),
                params,
                None,
            );
            let row = PhaseRow::from_metrics(m.planner, &m);
            if k == 2 && m.planner != "B" {
                skew_aware_2node = skew_aware_2node.min(row.total_ms());
            }
            if k == 12 && m.planner == "B" {
                baseline_12node = row.total_ms();
            }
            rows.push(row);
        }
        print_phase_table(&format!("{k} nodes"), &rows);
    }

    println!(
        "\nskew-aware on 2 nodes: {skew_aware_2node:.1} ms vs baseline on 12 nodes: {baseline_12node:.1} ms"
    );
    println!(
        "paper claim 'skew-aware planners on 2 nodes beat the baseline on 12': {}",
        if skew_aware_2node < baseline_12node {
            "reproduced"
        } else {
            "not reproduced at this scale (see EXPERIMENTS.md: our simulated \
             network parallelizes the baseline's shuffle more than the paper's \
             saturated testbed did)"
        }
    );
}
