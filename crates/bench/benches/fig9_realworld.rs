//! Figure 9: merge join on real-world-like data — beneficial skew
//! (AIS ⋈ MODIS) and adversarial skew (MODIS band ⋈ band).
//!
//! Paper §6.3: the beneficial-skew query joins ship broadcasts with a
//! reflectance band on the geospatial dimensions; ~85% of AIS cells sit
//! in ~5% of the chunks, so the shuffle planners cut data alignment by
//! an order of magnitude and even out comparison, for ≈2.5x end-to-end.
//! The adversarial query joins two bands of the same sensor footprint;
//! chunk sizes line up and every planner performs comparably.

use std::time::Duration;

use sj_bench::{bench_params, cluster_with_pair, print_phase_table, run_join, PhaseRow};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{ais_broadcasts, modis_band, AisConfig, GeoConfig};

fn planners() -> Vec<PlannerKind> {
    vec![
        PlannerKind::Baseline,
        // Budget scaled to query size, as the paper tunes its solver
        // budget "to an empirically observed time at which the solver's
        // solution quality becomes asymptotic".
        PlannerKind::IlpCoarse {
            budget: Duration::from_millis(250),
            bins: 75,
        },
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ]
}

/// One untimed run to warm caches/allocator so the first measured
/// planner is not penalized.
fn warmup(cluster: &sj_cluster::Cluster, query: &JoinQuery, params: sj_core::physical::CostParams) {
    let _ = run_join(
        cluster,
        query,
        PlannerKind::MinBandwidth,
        Some(JoinAlgo::Merge),
        params,
        None,
    );
}

fn main() {
    let params = bench_params(40);

    // ---- Beneficial skew: Band1 ⋈ Broadcast on (lon, lat). -------------
    let geo = GeoConfig {
        time_extent: 2048,
        time_chunk: 2048,
        lon_chunks: 32,
        lat_chunks: 16,
        deg_per_chunk: 16, // quarter-degree cells, 4-degree tiles
        cells: 150_000,
        seed: 2015,
    };
    let band1 = modis_band(&geo, "Band1", 1);
    let ais = ais_broadcasts(
        &AisConfig {
            port_zipf_alpha: 0.7,
            ..AisConfig::new(GeoConfig {
                cells: 100_000,
                ..geo.clone()
            })
        },
        "Broadcast",
    );
    println!("Figure 9 (left): beneficial skew — AIS x MODIS on (lon, lat)");
    println!(
        "Band1 {} cells (near-uniform), Broadcast {} cells (~85% in ports)",
        band1.cell_count(),
        ais.cell_count()
    );
    let cluster = cluster_with_pair(4, band1, ais);
    let query = JoinQuery::new(
        "Band1",
        "Broadcast",
        JoinPredicate::new(vec![("lon", "lon"), ("lat", "lat")]),
    );
    warmup(&cluster, &query, params);
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    let mut best = f64::INFINITY;
    let mut baseline_moved = 0u64;
    let mut best_moved = u64::MAX;
    for planner in planners() {
        let m = run_join(
            &cluster,
            &query,
            planner,
            Some(JoinAlgo::Merge),
            params,
            None,
        );
        let row = PhaseRow::from_metrics(m.planner, &m);
        // Compare execution time (align + comp); planner overhead is
        // reported in its own column.
        let exec_ms = row.align_ms + row.comp_ms;
        if m.planner == "B" {
            baseline = exec_ms;
            baseline_moved = m.cells_moved;
        } else {
            best = best.min(exec_ms);
            best_moved = best_moved.min(m.cells_moved);
        }
        rows.push(row);
    }
    print_phase_table("beneficial skew (AIS x MODIS)", &rows);
    println!(
        "\nexecution speedup over baseline: {:.2}x   (paper: ~2.5x)",
        baseline / best
    );
    println!(
        "data-movement reduction: {:.1}x   (paper: ~20x)",
        baseline_moved as f64 / best_moved.max(1) as f64
    );

    // ---- Adversarial skew: Band1 ⋈ Band2 on (time, lon, lat). -----------
    let geo2 = GeoConfig {
        time_extent: 1024,
        time_chunk: 1024,
        lon_chunks: 24,
        lat_chunks: 12,
        deg_per_chunk: 16,
        cells: 120_000,
        seed: 77,
    };
    let b1 = modis_band(&geo2, "Band1", 1);
    let b2 = modis_band(&geo2, "Band2", 2);
    println!("\nFigure 9 (right): adversarial skew — NDVI band x band");
    println!(
        "Band1 {} cells, Band2 {} cells (aligned chunk sizes)",
        b1.cell_count(),
        b2.cell_count()
    );
    let cluster2 = cluster_with_pair(4, b1, b2);
    let query2 = JoinQuery::new(
        "Band1",
        "Band2",
        JoinPredicate::new(vec![("time", "time"), ("lon", "lon"), ("lat", "lat")]),
    );
    warmup(&cluster2, &query2, params);
    let mut rows2 = Vec::new();
    for planner in planners() {
        let m = run_join(
            &cluster2,
            &query2,
            planner,
            Some(JoinAlgo::Merge),
            params,
            None,
        );
        rows2.push(PhaseRow::from_metrics(m.planner, &m));
    }
    print_phase_table("adversarial skew (band x band)", &rows2);
    let exec = |r: &PhaseRow| r.align_ms + r.comp_ms;
    let max = rows2.iter().map(exec).fold(0.0f64, f64::max);
    let min = rows2.iter().map(exec).fold(f64::INFINITY, f64::min);
    println!(
        "\nexecution-time spread across planners: {:.2}x (paper: all comparable)",
        max / min
    );
}
