//! Micro-benchmarks for the engine's kernels: the three join
//! algorithms, the schema-alignment operators, and the physical planners'
//! planning latency (the "Query Plan" component of Figures 7–10).
//!
//! Uses the dependency-free harness in `sj_bench::harness` (criterion is
//! unavailable offline); benchmark ids are unchanged from the criterion
//! version (`group/name/param`).

use sj_array::ops::{hash_partition, rechunk, redim, ColumnRef, RedimPolicy};
use sj_array::{ArraySchema, CellBatch, DataType, Histogram, Value};
use sj_bench::harness::Runner;
use sj_core::algorithms::{run_join, Emitter, JoinAlgo};
use sj_core::join_schema::{infer_join_schema, ColumnStats};
use sj_core::physical::{plan_physical, CostParams, PlannerKind, SliceStats};
use sj_core::predicate::{JoinPredicate, JoinSide};
use sj_workload::{skewed_array, SkewedArrayConfig, Zipf};

fn join_fixture() -> sj_core::JoinSchema {
    let a = ArraySchema::parse("A<v:int>[i=1,1000000,100000]").unwrap();
    let b = ArraySchema::parse("B<w:int>[j=1,1000000,100000]").unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    for (side, col) in [(JoinSide::Left, "v"), (JoinSide::Right, "w")] {
        stats.insert(
            side,
            col,
            Histogram::build((0..1000).map(Value::Int), 8).unwrap(),
        );
    }
    infer_join_schema(&a, &b, &p, None, &stats).unwrap()
}

fn unit_batch(n: i64, dup_every: i64) -> CellBatch {
    let mut b = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
    for i in 0..n {
        let key = (i * 48271 % n) / dup_every;
        b.push(&[], &[Value::Int(i), Value::Int(key)]).unwrap();
    }
    b
}

fn bench_join_kernels(runner: &mut Runner) {
    let js = join_fixture();
    let mut group = runner.group("join_kernels");
    for &n in &[1_000i64, 10_000] {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
            let left = unit_batch(n, 2);
            let right = unit_batch(n, 2);
            group.bench(&format!("{}/{n}", algo.name()), || {
                let mut l = left.clone();
                let mut r = right.clone();
                let mut em = Emitter::new(&js);
                run_join(algo, &mut l, &[1], &mut r, &[1], &mut em).unwrap()
            });
        }
        // Nested loop only at the small size (quadratic).
        if n <= 1_000 {
            let left = unit_batch(n, 2);
            let right = unit_batch(n, 2);
            group.bench(&format!("nestedLoopJoin/{n}"), || {
                let mut l = left.clone();
                let mut r = right.clone();
                let mut em = Emitter::new(&js);
                run_join(JoinAlgo::NestedLoop, &mut l, &[1], &mut r, &[1], &mut em).unwrap()
            });
        }
    }
}

fn bench_alignment_operators(runner: &mut Runner) {
    let cfg = SkewedArrayConfig {
        name: "A".into(),
        grid: 8,
        chunk_interval: 128,
        cells: 50_000,
        spatial_alpha: 0.5,
        value_alpha: 0.0,
        value_domain: 50_000,
        seed: 1,
    };
    let array = skewed_array(&cfg);
    let target = ArraySchema::parse("T<i:int, j:int, v2:int>[v1=0,49999,3200]").unwrap();
    let mut group = runner.group("alignment_operators");
    group.bench("redim_50k", || {
        redim(&array, &target, RedimPolicy::Strict).unwrap()
    });
    group.bench("rechunk_50k", || {
        rechunk(&array, &target, RedimPolicy::Strict).unwrap()
    });
    group.bench("hash_partition_50k", || {
        hash_partition(&array, &[ColumnRef::Attr(0)], 256).unwrap()
    });
}

fn zipf_slice_stats(units: usize, nodes: usize, alpha: f64) -> SliceStats {
    let z = Zipf::new(units, alpha);
    let counts = z.proportional_counts(1_000_000);
    let mut s = SliceStats::new(units, nodes);
    for (i, &c) in counts.iter().enumerate() {
        for j in 0..nodes {
            // Deterministic uneven spread across nodes.
            let share = c / nodes * (1 + (i + j) % 3);
            s.left[i][j] = share as u64 / 2;
            s.right[i][j] = share as u64 / 2;
        }
    }
    s
}

fn bench_planner_latency(runner: &mut Runner) {
    let params = CostParams::default();
    let mut group = runner.group("planner_latency");
    for &units in &[256usize, 1024] {
        let stats = zipf_slice_stats(units, 4, 1.0);
        group.bench(&format!("mbh/{units}"), || {
            plan_physical(
                &PlannerKind::MinBandwidth,
                &stats,
                &params,
                JoinAlgo::Hash,
                JoinSide::Left,
            )
            .unwrap()
        });
        group.bench(&format!("tabu/{units}"), || {
            plan_physical(
                &PlannerKind::Tabu,
                &stats,
                &params,
                JoinAlgo::Hash,
                JoinSide::Left,
            )
            .unwrap()
        });
    }
}

fn main() {
    let mut runner = Runner::from_args();
    bench_join_kernels(&mut runner);
    bench_alignment_operators(&mut runner);
    bench_planner_latency(&mut runner);
}
