//! Criterion micro-benchmarks for the engine's kernels: the three join
//! algorithms, the schema-alignment operators, and the physical planners'
//! planning latency (the "Query Plan" component of Figures 7–10).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sj_array::ops::{hash_partition, rechunk, redim, ColumnRef, RedimPolicy};
use sj_array::{ArraySchema, CellBatch, DataType, Histogram, Value};
use sj_core::algorithms::{run_join, Emitter, JoinAlgo};
use sj_core::join_schema::{infer_join_schema, ColumnStats};
use sj_core::physical::{plan_physical, CostParams, PlannerKind, SliceStats};
use sj_core::predicate::{JoinPredicate, JoinSide};
use sj_workload::{skewed_array, SkewedArrayConfig, Zipf};

fn join_fixture() -> sj_core::JoinSchema {
    let a = ArraySchema::parse("A<v:int>[i=1,1000000,100000]").unwrap();
    let b = ArraySchema::parse("B<w:int>[j=1,1000000,100000]").unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    for (side, col) in [(JoinSide::Left, "v"), (JoinSide::Right, "w")] {
        stats.insert(
            side,
            col,
            Histogram::build((0..1000).map(Value::Int), 8).unwrap(),
        );
    }
    infer_join_schema(&a, &b, &p, None, &stats).unwrap()
}

fn unit_batch(n: i64, dup_every: i64) -> CellBatch {
    let mut b = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
    for i in 0..n {
        let key = (i * 48271 % n) / dup_every;
        b.push(&[], &[Value::Int(i), Value::Int(key)]).unwrap();
    }
    b
}

fn bench_join_kernels(c: &mut Criterion) {
    let js = join_fixture();
    let mut group = c.benchmark_group("join_kernels");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &n in &[1_000i64, 10_000] {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &n,
                |bench, &n| {
                    let left = unit_batch(n, 2);
                    let right = unit_batch(n, 2);
                    bench.iter(|| {
                        let mut l = left.clone();
                        let mut r = right.clone();
                        let mut em = Emitter::new(&js);
                        run_join(algo, &mut l, &[1], &mut r, &[1], &mut em).unwrap()
                    });
                },
            );
        }
        // Nested loop only at the small size (quadratic).
        if n <= 1_000 {
            group.bench_with_input(
                BenchmarkId::new("nestedLoopJoin", n),
                &n,
                |bench, &n| {
                    let left = unit_batch(n, 2);
                    let right = unit_batch(n, 2);
                    bench.iter(|| {
                        let mut l = left.clone();
                        let mut r = right.clone();
                        let mut em = Emitter::new(&js);
                        run_join(JoinAlgo::NestedLoop, &mut l, &[1], &mut r, &[1], &mut em)
                            .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_alignment_operators(c: &mut Criterion) {
    let cfg = SkewedArrayConfig {
        name: "A".into(),
        grid: 8,
        chunk_interval: 128,
        cells: 50_000,
        spatial_alpha: 0.5,
        value_alpha: 0.0,
        value_domain: 50_000,
        seed: 1,
    };
    let array = skewed_array(&cfg);
    let target = ArraySchema::parse(
        "T<i:int, j:int, v2:int>[v1=0,49999,3200]",
    )
    .unwrap();
    let mut group = c.benchmark_group("alignment_operators");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("redim_50k", |b| {
        b.iter(|| redim(&array, &target, RedimPolicy::Strict).unwrap())
    });
    group.bench_function("rechunk_50k", |b| {
        b.iter(|| rechunk(&array, &target, RedimPolicy::Strict).unwrap())
    });
    group.bench_function("hash_partition_50k", |b| {
        b.iter(|| hash_partition(&array, &[ColumnRef::Attr(0)], 256).unwrap())
    });
    group.finish();
}

fn zipf_slice_stats(units: usize, nodes: usize, alpha: f64) -> SliceStats {
    let z = Zipf::new(units, alpha);
    let counts = z.proportional_counts(1_000_000);
    let mut s = SliceStats::new(units, nodes);
    for (i, &c) in counts.iter().enumerate() {
        for j in 0..nodes {
            // Deterministic uneven spread across nodes.
            let share = c / nodes * (1 + (i + j) % 3);
            s.left[i][j] = share as u64 / 2;
            s.right[i][j] = share as u64 / 2;
        }
    }
    s
}

fn bench_planner_latency(c: &mut Criterion) {
    let params = CostParams::default();
    let mut group = c.benchmark_group("planner_latency");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    for &units in &[256usize, 1024] {
        let stats = zipf_slice_stats(units, 4, 1.0);
        group.bench_with_input(BenchmarkId::new("mbh", units), &units, |b, _| {
            b.iter(|| {
                plan_physical(
                    &PlannerKind::MinBandwidth,
                    &stats,
                    &params,
                    JoinAlgo::Hash,
                    JoinSide::Left,
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("tabu", units), &units, |b, _| {
            b.iter(|| {
                plan_physical(
                    &PlannerKind::Tabu,
                    &stats,
                    &params,
                    JoinAlgo::Hash,
                    JoinSide::Left,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_kernels,
    bench_alignment_operators,
    bench_planner_latency
);
criterion_main!(benches);
