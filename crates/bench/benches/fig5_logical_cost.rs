//! Figure 5: logical plan cost vs. measured query latency.
//!
//! Paper §6.1: two synthetic 1-D arrays, the A:A query
//! `SELECT * INTO C<i,j>[v] FROM A, B WHERE A.v = B.w`, executed on one
//! node with all three join algorithms at selectivities
//! {0.01, 0.1, 1, 10, 100}. The paper reports a strong power-law
//! correlation (r² ≈ 0.9) between the logical cost model and the
//! observed latency, with the minimum-cost plan also the fastest at
//! every selectivity.

use sj_bench::{bench_params, r_squared_loglog, run_join};
use sj_cluster::{Cluster, Placement};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{selectivity_output_schema, selectivity_pair};

const N: u64 = 60_000;
const CHUNK: u64 = 4_000;
const SELECTIVITIES: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

fn main() {
    let params = bench_params(16);
    println!("Figure 5: logical plan cost vs. query duration (single node)");
    println!("arrays: A<v:int>[i=1,{N},{CHUNK}], B<w:int>[j=1,{N},{CHUNK}]");
    println!(
        "\n{:<12} {:>12} {:>16} {:>14}",
        "algorithm", "selectivity", "plan cost", "duration (ms)"
    );

    let mut costs = Vec::new();
    let mut durations = Vec::new();
    let mut min_cost_is_fastest = true;

    for &sel in &SELECTIVITIES {
        let (a, b) = selectivity_pair(N, CHUNK, sel, 42);
        let out = selectivity_output_schema(N, CHUNK, sel);
        let mut cluster = Cluster::new(1, sj_bench::bench_network());
        cluster.load_array(a, &Placement::RoundRobin).unwrap();
        cluster.load_array(b, &Placement::RoundRobin).unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "w")]))
            .into_schema(out.clone())
            .with_selectivity(sel);

        let mut per_algo: Vec<(JoinAlgo, f64, f64)> = Vec::new();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let run = || {
                run_join(
                    &cluster,
                    &query,
                    PlannerKind::MinBandwidth,
                    Some(algo),
                    params,
                    Some(64),
                )
            };
            // Paper §6: "executed 3 times. We report the average".
            let mut wall_ms = 0.0;
            let mut m = run();
            for _ in 0..3 {
                m = run();
                // Execution time of the plan itself (slice mapping +
                // network + comparison + output), excluding the per-query
                // statistics collection shared by every plan.
                wall_ms +=
                    (m.slice_map_seconds + m.alignment_seconds + m.comparison_seconds) * 1e3 / 3.0;
            }
            println!(
                "{:<12} {:>12} {:>16.3e} {:>14.2}",
                m.algo.name(),
                sel,
                m.logical_cost,
                wall_ms
            );
            costs.push(m.logical_cost);
            durations.push(wall_ms);
            per_algo.push((algo, m.logical_cost, wall_ms));
        }
        let min_cost = per_algo.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        let min_time = per_algo.iter().min_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
        // Plans within 10% of the fastest count as tied: at low
        // selectivity the hash and merge plans differ by a couple of ms
        // of fixed engine overhead, below run-to-run noise.
        if min_cost.0 != min_time.0 && min_cost.2 > min_time.2 * 1.10 {
            min_cost_is_fastest = false;
            println!(
                "  (sel {sel}: cheapest plan {} but fastest was {})",
                min_cost.0.name(),
                min_time.0.name()
            );
        }
    }

    let r2 = r_squared_loglog(&costs, &durations);
    println!("\npower-law correlation of cost vs duration: r² = {r2:.3} (paper: ≈0.9)");
    println!(
        "minimum-cost plan was the fastest at every selectivity: {}",
        if min_cost_is_fastest {
            "yes (matches paper)"
        } else {
            "no"
        }
    );
}
