//! Multi-threaded executor speedup on the Figure-8 hash-skew workload.
//!
//! Runs the α = 1.5 hash join (256 buckets, 4 nodes) at thread counts
//! 1, 2, 4, and 8 and reports wall-clock per phase plus the measured
//! speedup over the sequential path. Output is identical at every thread
//! count (see `tests/determinism.rs`); only the wall clock moves.
//!
//! On a single-core host the speedup is ≈1x by construction — the
//! interesting column there is the per-worker busy time, which shows the
//! LPT schedule keeping workers evenly loaded despite Zipfian skew.

use sj_bench::{bench_params, cluster_with_pair, harness::json_str};
use sj_core::exec::{execute_join, ExecConfig, JoinQuery};
use sj_core::{JoinAlgo, JoinPredicate, MetricsView, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const BUCKETS: usize = 256;
const THREADS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

fn main() {
    let params = bench_params(32);
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: 120_000,
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 50_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let cluster = cluster_with_pair(4, a, b);
    let query = JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001);

    println!(
        "Parallel executor speedup: fig8 hash-skew join (alpha=1.5, {BUCKETS} buckets, 4 nodes)"
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "threads", "slice (ms)", "comp (ms)", "total (ms)", "speedup", "matches"
    );

    let mut baseline_ms = None;
    for &threads in &THREADS {
        let mut best_ms = f64::INFINITY;
        let mut slice_ms = 0.0;
        let mut comp_ms = 0.0;
        let mut matches = 0;
        let mut busy = Vec::new();
        for _ in 0..RUNS {
            let config = ExecConfig::builder()
                .planner(PlannerKind::Tabu)
                .cost_params(params)
                .forced_algo(JoinAlgo::Hash)
                .hash_buckets(BUCKETS)
                .threads(threads)
                .build()
                .expect("speedup bench config invalid");
            let m = execute_join(&cluster, &query, &config)
                .expect("speedup bench join failed")
                .telemetry
                .join_metrics()
                .expect("join span recorded");
            let total = (m.profile.slice_map_wall_seconds
                + m.profile.comparison_wall_seconds
                + m.profile.output_wall_seconds)
                * 1e3;
            if total < best_ms {
                best_ms = total;
                slice_ms = m.profile.slice_map_wall_seconds * 1e3;
                comp_ms = m.profile.comparison_wall_seconds * 1e3;
                busy = m.profile.comparison_busy_seconds.clone();
                matches = m.matches;
            }
        }
        let speedup = match baseline_ms {
            None => {
                baseline_ms = Some(best_ms);
                1.0
            }
            Some(base) => base / best_ms,
        };
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x {:>8}",
            threads, slice_ms, comp_ms, best_ms, speedup, matches
        );
        let busy_json: Vec<String> = busy.iter().map(|s| format!("{:.6}", s * 1e3)).collect();
        println!(
            "{{\"bench\":{},\"threads\":{},\"slice_ms\":{:.3},\"comp_ms\":{:.3},\"total_ms\":{:.3},\"speedup\":{:.3},\"comp_busy_ms\":[{}]}}",
            json_str("parallel_speedup/fig8_hash_skew"),
            threads,
            slice_ms,
            comp_ms,
            best_ms,
            speedup,
            busy_json.join(",")
        );
    }
}
