//! Streaming-pipeline throughput: an op-chain sweep over array sizes.
//!
//! Each point runs a whole plan through `sj_core::run_plan` on a 4-node
//! cluster and reports one human line plus one machine-readable JSON line
//! (`{"bench":"pipeline/<chain>/<cells>", ...}`). The `filter_pushed` /
//! `filter_coordinator` pair measures the same plan with and without the
//! rewriter's gather pushdown, isolating the coordinator-bottleneck win.
//!
//! Run with `cargo bench --bench pipeline_throughput [-- <filter>]`.

use std::time::Duration;

use sj_array::{ArraySchema, BinOp, Expr};
use sj_bench::harness::{Options, Runner};
use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::ExecConfig;
use sj_core::{rewrite, run_plan, PlanNode, TelemetryConfig};
use sj_workload::{skewed_array, SkewedArrayConfig};

fn cluster_with(cells: usize) -> Cluster {
    let cfg = SkewedArrayConfig {
        name: "A".to_string(),
        grid: 8,
        chunk_interval: 64,
        cells,
        spatial_alpha: 0.0,
        value_alpha: 0.8,
        value_domain: 10_000,
        seed: 11,
    };
    let mut cluster = Cluster::new(4, NetworkModel::gigabit());
    cluster
        .load_array(skewed_array(&cfg), &Placement::RoundRobin)
        .unwrap();
    cluster
}

fn scan() -> PlanNode {
    PlanNode::Scan {
        array: "A".to_string(),
    }
}

fn selective_filter() -> Expr {
    Expr::binary(BinOp::Lt, Expr::col("v1"), Expr::int(1_000))
}

/// The swept op chains: (name, plan builder). `filter_coordinator`
/// deliberately skips the rewriter so the predicate runs above `gather`.
fn chains() -> Vec<(&'static str, PlanNode)> {
    let filter = PlanNode::Filter {
        input: Box::new(scan().gathered()),
        predicate: selective_filter(),
    };
    let apply_chain = PlanNode::Apply {
        input: Box::new(filter.clone()),
        outputs: vec![(
            "s".to_string(),
            Expr::binary(BinOp::Add, Expr::col("v1"), Expr::col("v2")),
        )],
        lenient: false,
    };
    let between = PlanNode::Between {
        input: Box::new(scan().gathered()),
        bounds: vec![1, 1, 256, 256],
    };
    let redim = PlanNode::Redim {
        input: Box::new(scan().gathered()),
        target: ArraySchema::parse("R<i:int, j:int, v2:int>[v1=0,9999,2048]").unwrap(),
    };
    vec![
        ("gather", scan().gathered()),
        ("filter_coordinator", filter.clone()),
        ("filter_pushed", rewrite(filter)),
        ("filter_apply", rewrite(apply_chain)),
        ("between", rewrite(between)),
        ("redim", redim),
    ]
}

fn main() {
    let mut runner = Runner::from_args().with_options(Options {
        measure: Duration::from_secs(1),
        ..Options::default()
    });
    // Throughput numbers should measure the pipeline, not trace recording.
    let config = ExecConfig::builder()
        .telemetry(TelemetryConfig::Off)
        .build()
        .unwrap();
    for &cells in &[5_000usize, 20_000, 80_000] {
        let cluster = cluster_with(cells);
        let mut group = runner.group("pipeline");
        for (name, plan) in chains() {
            group.bench(&format!("{name}/{cells}"), || {
                run_plan(&cluster, &plan, &config).unwrap().array
            });
        }
    }
}
