//! Multi-way join ordering: the Selinger DP against every left-deep
//! order on a skewed star schema.
//!
//! The workload is a fact table `F<m>[i, j]` whose `j` coordinate is a
//! Zipf-skewed foreign key into two dimension tables on the same key:
//! `D1<x>[j]` (unfiltered) and `D2<y>[j]` behind a ~1%-selective filter.
//! Join order decides how many fact rows survive into the second join:
//! starting with `F ⋈ D1` drags the full fact table through both joins,
//! starting from the filtered dimension shrinks it immediately — so the
//! spread between the best and worst left-deep order is real, and the
//! optimizer's job is to land on the cheap side from statistics alone.
//!
//! Each point reports one human line plus one machine-readable JSON line
//! (`{"bench":"multi_join/<plan>/<cells>", ...}`). The `dp/<cells>`
//! entry runs the as-written plan through the default optimizer
//! (statistics gathering and DP included in the timed path); the
//! `order_*` entries execute one explicit left-deep order each with the
//! optimizer off.
//!
//! **Ordering gate** (asserted, `# multi_join gate` lines on stderr) at
//! 1M fact cells: the DP-chosen plan must come within 1.1x of the best
//! left-deep order (its decision plus statistics overhead may not eat
//! the win), and the worst order must cost at least 1.5x the DP plan
//! (the spread the optimizer is protecting against is real). The
//! dp-vs-best ratio is measured on interleaved samples (`bench_pair`)
//! because 1.1x is tighter than back-to-back p50s can resolve; the
//! 1.5x worst-order margin (~4x measured) needs no such care.
//!
//! `MULTI_JOIN_SMOKE=1` runs the [100k, 1M] endpoints (CI/verify
//! smoke); the default sweep adds a 5M point. Run with
//! `cargo bench --bench multi_join`.

use std::time::Duration;

use sj_array::{Array, ArraySchema, BinOp, Expr, Value};
use sj_bench::harness::{Options, Runner, Stats};
use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::ExecConfig;
use sj_core::optimizer::{JoinGraph, OptimizerMode};
use sj_core::{run_plan, PlanNode, TelemetryConfig};
use sj_workload::{Rng64, Zipf};

/// Distinct join-key values (`j` domain) shared by fact and dimensions.
const KEYS: i64 = 1_000;
/// The filter keeps `j < SELECTED` — SELECTED/KEYS of the key domain.
const SELECTED: i64 = 10;
/// Fact size where the ordering gate is asserted.
const GATE_CELLS: usize = 1_000_000;

/// Build the star schema: `F` with `cells` rows (`i` a unique row id,
/// `j` a Zipf(1.0) key), plus one-row-per-key dimensions `D1`, `D2`.
fn cluster_with(cells: usize) -> Cluster {
    let mut cluster = Cluster::new(4, NetworkModel::gigabit());
    let chunk = (cells as i64 / 32).max(1_024);
    let f_schema =
        ArraySchema::parse(&format!("F<m:int>[i=1,{cells},{chunk}, j=1,{KEYS},250]")).unwrap();
    let zipf = Zipf::new(KEYS as usize, 1.0);
    let mut rng = Rng64::seed_from_u64(0x57A5);
    let fact = Array::from_cells(
        f_schema,
        (1..=cells as i64).map(|i| {
            let j = zipf.sample(&mut rng) as i64 + 1;
            (vec![i, j], vec![Value::Int(i % 97)])
        }),
    )
    .unwrap();
    cluster.load_array(fact, &Placement::RoundRobin).unwrap();
    for (name, attr) in [("D1", "x"), ("D2", "y")] {
        let schema = ArraySchema::parse(&format!("{name}<{attr}:int>[j=1,{KEYS},250]")).unwrap();
        let dim = Array::from_cells(
            schema,
            (1..=KEYS).map(|j| (vec![j], vec![Value::Int(j * 3)])),
        )
        .unwrap();
        cluster.load_array(dim, &Placement::RoundRobin).unwrap();
    }
    cluster
}

fn scan(name: &str) -> PlanNode {
    PlanNode::Scan {
        array: name.to_string(),
    }
}

/// The as-written plan: `(F ⋈ D1) ⋈ σ(D2)` — deliberately the shape
/// that joins the unfiltered dimension first.
fn as_written() -> PlanNode {
    let filtered_d2 = PlanNode::Filter {
        input: Box::new(scan("D2")),
        predicate: Expr::binary(BinOp::Lt, Expr::col("y"), Expr::int(SELECTED * 3)),
    };
    PlanNode::Join {
        left: Box::new(PlanNode::Join {
            left: Box::new(scan("F")),
            right: Box::new(scan("D1")),
            pairs: vec![("j".to_string(), "j".to_string())],
            output: None,
        }),
        right: Box::new(filtered_d2),
        pairs: vec![("j".to_string(), "j".to_string())],
        output: None,
    }
}

fn config(mode: OptimizerMode) -> ExecConfig {
    ExecConfig::builder()
        .telemetry(TelemetryConfig::Off)
        .optimizer(mode)
        .build()
        .unwrap()
}

/// Assert one side of the ordering gate and print the stderr line
/// `scripts/verify.sh` greps for. p50s for the same drift-robustness
/// reasons as the kernel dispatch gate.
fn assert_gate(label: &str, cells: usize, ratio: f64, bound: f64, at_most: bool) {
    let ok = if at_most {
        ratio <= bound
    } else {
        ratio >= bound
    };
    eprintln!(
        "# multi_join gate: {label} at {cells} cells: ratio {ratio:.3} \
         ({} {bound}) {}",
        if at_most { "<=" } else { ">=" },
        if ok { "OK" } else { "FAIL" }
    );
    assert!(
        ok,
        "multi_join ordering gate failed: {label} ratio {ratio:.3} vs bound {bound}"
    );
}

fn main() {
    let smoke = std::env::var("MULTI_JOIN_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[100_000, GATE_CELLS]
    } else {
        &[100_000, GATE_CELLS, 5_000_000]
    };

    for &cells in sizes {
        let cluster = cluster_with(cells);
        let plan = as_written();
        let catalog_src = cluster.catalog().clone();
        let catalog = move |name: &str| catalog_src.schema(name).ok().cloned();
        let graph = JoinGraph::from_plan(&plan, &catalog).expect("star schema flattens");
        let orders = graph.enumerate_left_deep();

        // At gate size the warmup must cover at least one full query
        // (~120ms+), so the DP point's one-off statistics-cache build
        // lands in warmup, not in the measured samples.
        let mut runner = Runner::from_args().with_options(Options {
            warmup: Duration::from_millis(if cells >= GATE_CELLS {
                600
            } else if smoke {
                30
            } else {
                200
            }),
            measure: Duration::from_millis(if cells >= GATE_CELLS { 2_500 } else { 600 }),
            ..Options::default()
        });
        let mut group = runner.group("multi_join");

        let dp_config = config(OptimizerMode::Dp);
        let dp = group.bench(&format!("dp/{cells}"), || {
            run_plan(&cluster, &plan, &dp_config).unwrap().array
        });

        let off = config(OptimizerMode::Off);
        let mut order_stats: Vec<(usize, String, Stats)> = Vec::new();
        for (oi, order) in orders.iter().enumerate() {
            let label: String = order
                .iter()
                .map(|&r| graph.relations[r].name.as_str())
                .collect::<Vec<_>>()
                .join(".");
            let tree = graph.tree_for_order(order).expect("orders stay connected");
            let stats = group.bench(&format!("order_{label}/{cells}"), || {
                run_plan(&cluster, &tree, &off).unwrap().array
            });
            if let Some(s) = stats {
                order_stats.push((oi, label, s));
            }
        }

        if cells == GATE_CELLS {
            let (dp, order_stats) = match (dp, order_stats.is_empty()) {
                (Some(dp), false) => (dp, order_stats),
                _ => continue, // CLI filter excluded the gate points
            };
            let best = order_stats
                .iter()
                .min_by(|a, b| a.2.p50_ns.total_cmp(&b.2.p50_ns))
                .unwrap();
            let worst = order_stats
                .iter()
                .max_by(|a, b| a.2.p50_ns.total_cmp(&b.2.p50_ns))
                .unwrap();
            eprintln!(
                "# multi_join orders at {cells}: best {} ({:.1}ms), worst {} ({:.1}ms), \
                 dp {:.1}ms",
                best.1,
                best.2.p50_ns / 1e6,
                worst.1,
                worst.2.p50_ns / 1e6,
                dp.p50_ns / 1e6,
            );
            // The dp-vs-best margin (1.1x) is far tighter than
            // back-to-back p50s can resolve — identical plans drift
            // 15%+ run to run on a busy machine — so gate on
            // *interleaved* samples of the two plans (the same
            // drift-cancelling harness the kernel dispatch gate uses).
            let best_tree = graph
                .tree_for_order(&orders[best.0])
                .expect("orders stay connected");
            let paired = group.bench_pair(
                &format!("dp_paired/{cells}"),
                || run_plan(&cluster, &plan, &dp_config).unwrap().array,
                &format!("best_order_paired/{cells}"),
                || run_plan(&cluster, &best_tree, &off).unwrap().array,
            );
            let (dp_p, best_p) = paired.expect("gate ids match the CLI filter");
            assert_gate(
                "dp_vs_best_order",
                cells,
                dp_p.p50_ns / best_p.p50_ns,
                1.1,
                true,
            );
            assert_gate(
                "worst_order_vs_dp",
                cells,
                worst.2.p50_ns / dp.p50_ns,
                1.5,
                false,
            );
        }
    }
}
