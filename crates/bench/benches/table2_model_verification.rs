//! Table 2: analytical cost model vs. observed hash-join time for the
//! cost-based planners at moderate-to-high skew.
//!
//! Paper §6.2: for α ∈ {1.0, 1.5, 2.0} and the ILP / ILP-Coarse / Tabu
//! planners, the model's estimates correlate linearly with observed
//! join time (data alignment + cell comparison) at r² ≈ 0.9 — the
//! planners "are able to accurately compare competing plans".

use std::time::Duration;

use sj_bench::{bench_params, cluster_with_pair, r_squared, run_join};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const ALPHAS: [f64; 3] = [1.0, 1.5, 2.0];
const BUCKETS: usize = 1024;

fn main() {
    let params = bench_params(32);
    println!("Table 2: analytical cost model vs observed hash-join time");
    println!(
        "\n{:<6} {:<8} {:>16} {:>16}",
        "skew", "planner", "model cost", "join time (ms)"
    );

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &alpha in &ALPHAS {
        let cfg = SkewedArrayConfig {
            name: String::new(),
            grid: 16,
            chunk_interval: 64,
            cells: 120_000,
            spatial_alpha: 0.0,
            value_alpha: alpha,
            value_domain: 50_000,
            seed: 7,
        };
        let (a, b) = skewed_pair(&cfg);
        let cluster = cluster_with_pair(4, a, b);
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
        )
        .with_selectivity(0.0001);
        for planner in [
            PlannerKind::Ilp {
                budget: Duration::from_secs(1),
            },
            PlannerKind::IlpCoarse {
                budget: Duration::from_secs(1),
                bins: 75,
            },
            PlannerKind::Tabu,
        ] {
            // "Each experiment ... executed 3 times. We report the
            // average query duration."
            let mut observed = 0.0;
            let mut cost = 0.0;
            let mut name = "";
            for _ in 0..3 {
                let m = run_join(
                    &cluster,
                    &query,
                    planner.clone(),
                    Some(JoinAlgo::Hash),
                    params,
                    Some(BUCKETS),
                );
                // "the summed data alignment and join execution times".
                observed +=
                    (m.alignment_seconds + m.slice_map_seconds + m.comparison_seconds) * 1e3 / 3.0;
                cost = m.est_physical_cost;
                name = m.planner;
            }
            println!(
                "a={:<4} {:<8} {:>16.4} {:>16.2}",
                alpha, name, cost, observed
            );
            xs.push(cost);
            ys.push(observed);
        }
    }

    let r2 = r_squared(&xs, &ys);
    println!("\nlinear correlation of model cost vs observed time: r² = {r2:.3} (paper: ≈0.9)");
}
