//! Fault matrix: shuffle makespan and recovery cost under injected
//! node failures and lossy links.
//!
//! Sweeps node-failure count 0..=3 × transfer drop rate {0, 1%, 5%} on
//! the Figure-8 hash-skew workload (α = 1.5), run on a 6-node cluster
//! with 3-way chained replication so every crash is recoverable. The
//! MBH planner (deterministic, unlike the wall-clock-budgeted Tabu
//! search) and a seeded `FaultPlan` make every point exactly
//! reproducible run to run. One JSON line per point reports the simulated makespan
//! next to the fault counters — the "2.5× speedup, but at what
//! availability cost?" curve.
//!
//! A second sweep measures mid-shuffle straggler re-planning: straggler
//! severity {2x, 5x, 10x} × re-planning {off, on}, with a greppable
//! `replan gate` line asserting the 10x point is cut by >= 1.5x. Set
//! `FAULT_MAKESPAN_SMOKE=1` for a smaller workload suited to CI
//! snapshots (`scripts/verify.sh` redirects the JSON lines into
//! `BENCH_SHUFFLE.json`).

use sj_array::Array;
use sj_bench::{bench_params, harness::json_str};
use sj_cluster::{Cluster, FaultPlan, NetworkModel, Placement, ReplanPolicy};
use sj_core::exec::{execute_join, ExecConfig, JoinMetrics, JoinQuery};
use sj_core::{JoinAlgo, JoinPredicate, MetricsView, PlannerKind};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const NODES: usize = 6;
const REPLICAS: usize = 3;
const DROP_RATES: [f64; 3] = [0.0, 0.01, 0.05];
const MAX_FAILURES: usize = 3;
/// Crashed in order as the failure count grows; spread across the ring
/// so chained replicas of a dead node stay alive.
const CRASH_NODES: [usize; MAX_FAILURES] = [0, 2, 4];
/// Straggler sweep: slowdown factors applied to one node's links.
const SEVERITIES: [f64; 3] = [2.0, 5.0, 10.0];
const STRAGGLER_NODE: usize = 1;

fn fig8_cluster() -> Cluster {
    let smoke = std::env::var_os("FAULT_MAKESPAN_SMOKE").is_some();
    let cfg = SkewedArrayConfig {
        name: String::new(),
        grid: 16,
        chunk_interval: 64,
        cells: if smoke { 60_000 } else { 120_000 },
        spatial_alpha: 0.0,
        value_alpha: 1.5,
        value_domain: 50_000,
        seed: 7,
    };
    let (a, b) = skewed_pair(&cfg);
    let mut cluster = Cluster::new(NODES, NetworkModel::scaled_to_engine());
    cluster
        .load_array_replicated(a, &Placement::HashSalted(1), REPLICAS)
        .expect("load left");
    cluster
        .load_array_replicated(b, &Placement::HashSalted(2), REPLICAS)
        .expect("load right");
    cluster
}

fn main() {
    let cluster = fig8_cluster();
    let query = JoinQuery::new(
        "A",
        "B",
        JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
    )
    .with_selectivity(0.0001);
    let params = bench_params(32);
    let base_config = |faults: FaultPlan| -> ExecConfig {
        ExecConfig::builder()
            .planner(PlannerKind::MinBandwidth)
            .cost_params(params)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(256)
            .faults(faults)
            .build()
            .expect("fault bench config invalid")
    };
    let run = |config: &ExecConfig| -> (Array, JoinMetrics) {
        let run = execute_join(&cluster, &query, config).expect("join must survive the fault plan");
        let m = run.telemetry.join_metrics().expect("join span recorded");
        (run.array, m)
    };

    // Fault-free reference: fixes the expected output and the clean
    // makespan the crash schedule is staggered across.
    let (clean_out, clean) = run(&base_config(FaultPlan::none()));
    let mut clean_cells: Vec<_> = clean_out.iter_cells().collect();
    clean_cells.sort();
    println!(
        "Fault matrix: fig8 hash-skew join (alpha=1.5), {NODES} nodes, {REPLICAS}-way replication"
    );
    println!(
        "clean run: makespan {:.3}s, {} matches",
        clean.shuffle.makespan, clean.matches
    );
    println!(
        "{:>8} {:>6} {:>12} {:>8} {:>8} {:>14} {:>9}",
        "failures", "drop", "makespan", "retries", "reroutes", "recovery_bytes", "degraded"
    );

    for failures in 0..=MAX_FAILURES {
        for &drop in &DROP_RATES {
            let mut faults = FaultPlan::seeded(41).with_drop_rate(drop);
            for (i, &node) in CRASH_NODES.iter().take(failures).enumerate() {
                // Stagger crashes through the clean schedule's span.
                let at = clean.shuffle.makespan * (i + 1) as f64 / (failures + 1) as f64;
                faults = faults.with_crash(node, at);
            }
            let (out, m) = run(&base_config(faults));
            let mut cells: Vec<_> = out.iter_cells().collect();
            cells.sort();
            assert_eq!(
                cells, clean_cells,
                "faults changed the join answer at failures={failures} drop={drop}"
            );
            let s = &m.shuffle;
            println!(
                "{:>8} {:>5.0}% {:>11.3}s {:>8} {:>8} {:>14} {:>9}",
                failures,
                drop * 100.0,
                s.makespan,
                s.retries,
                s.reroutes,
                s.recovery_bytes,
                m.degraded
            );
            println!(
                "{{\"bench\":{},\"failures\":{},\"drop_rate\":{},\"makespan_s\":{:.6},\"retries\":{},\"reroutes\":{},\"recovery_bytes\":{},\"timeouts\":{},\"checksum_failures\":{},\"degraded\":{},\"plan_tier\":{},\"matches\":{}}}",
                json_str("fault_makespan/fig8"),
                failures,
                drop,
                s.makespan,
                s.retries,
                s.reroutes,
                s.recovery_bytes,
                s.timeouts,
                s.checksum_failures,
                m.degraded,
                json_str(m.plan_tier.name()),
                m.matches
            );
        }
    }

    // ---- Straggler severity × re-planning sweep. ---------------------------
    // One node's links run `severity`x slow; with re-planning on, the
    // progress monitor (barriers every quarter of the clean makespan)
    // re-routes the remaining slices onto healthy substitutes.
    let policy = ReplanPolicy::enabled(2.0, clean.shuffle.makespan / 4.0, 2);
    let straggler_config = |severity: f64, replan: ReplanPolicy| -> ExecConfig {
        ExecConfig::builder()
            .planner(PlannerKind::MinBandwidth)
            .cost_params(params)
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(256)
            .faults(FaultPlan::seeded(11).with_straggler(STRAGGLER_NODE, severity))
            .replan(replan)
            .build()
            .expect("straggler bench config invalid")
    };
    println!(
        "Straggler sweep: node {STRAGGLER_NODE} slowed, re-plan barriers at clean makespan / 4"
    );
    println!(
        "{:>8} {:>7} {:>12} {:>8} {:>15}",
        "severity", "replan", "makespan", "replans", "replanned_bytes"
    );
    let mut gate: Option<(f64, f64)> = None;
    for &severity in &SEVERITIES {
        let mut makespans = [0.0f64; 2];
        for (i, enabled) in [false, true].into_iter().enumerate() {
            let replan = if enabled {
                policy.clone()
            } else {
                ReplanPolicy::disabled()
            };
            let (out, m) = run(&straggler_config(severity, replan));
            let mut cells: Vec<_> = out.iter_cells().collect();
            cells.sort();
            assert_eq!(
                cells, clean_cells,
                "straggler changed the join answer at severity={severity} replan={enabled}"
            );
            let s = &m.shuffle;
            makespans[i] = s.makespan;
            println!(
                "{:>7}x {:>7} {:>11.3}s {:>8} {:>15}",
                severity, enabled, s.makespan, s.replans, s.replanned_bytes
            );
            println!(
                "{{\"bench\":{},\"severity\":{},\"replan\":{},\"makespan_s\":{:.6},\"replans\":{},\"replanned_bytes\":{},\"reroutes\":{},\"degraded\":{},\"matches\":{}}}",
                json_str("fault_makespan/straggler"),
                severity,
                enabled,
                s.makespan,
                s.replans,
                s.replanned_bytes,
                s.reroutes,
                m.degraded,
                m.matches
            );
        }
        if severity == 10.0 {
            gate = Some((makespans[0], makespans[1]));
        }
    }
    let (off, on) = gate.expect("10x severity point must run");
    let cut = off / on;
    println!("replan gate: 10x straggler makespan cut {cut:.2}x ({off:.3}s -> {on:.3}s, >= 1.5x required)");
    assert!(
        cut >= 1.5,
        "re-planning must cut the 10x-straggler makespan by >= 1.5x, got {cut:.2}x"
    );
}
