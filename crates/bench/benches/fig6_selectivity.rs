//! Figure 6: query duration vs. join selectivity for the three logical
//! plans (Hash / Merge / NestedLoop).
//!
//! Paper §6.1 findings this bench regenerates:
//! * all plans slow down as output cardinality grows;
//! * hash join is fastest at selectivity < 1 (the sort is deferred to
//!   the small output);
//! * merge join edges ahead at selectivity ≥ 1 and wins decisively at
//!   high selectivity (it front-loads the reordering);
//! * nested loop is always the worst.

use sj_bench::{bench_params, run_join};
use sj_cluster::{Cluster, Placement};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate, PlannerKind};
use sj_workload::{selectivity_output_schema, selectivity_pair};

const N: u64 = 60_000;
const CHUNK: u64 = 4_000;
const SELECTIVITIES: [f64; 5] = [0.01, 0.1, 1.0, 10.0, 100.0];

fn main() {
    let params = bench_params(16);
    println!("Figure 6: query duration (ms) vs selectivity per logical plan");
    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "plan", 0.01, 0.1, 1.0, 10.0, 100.0
    );

    let mut series: Vec<(JoinAlgo, Vec<f64>)> =
        [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop]
            .into_iter()
            .map(|a| (a, Vec::new()))
            .collect();

    for &sel in &SELECTIVITIES {
        let (a, b) = selectivity_pair(N, CHUNK, sel, 42);
        let out = selectivity_output_schema(N, CHUNK, sel);
        let mut cluster = Cluster::new(1, sj_bench::bench_network());
        cluster.load_array(a, &Placement::RoundRobin).unwrap();
        cluster.load_array(b, &Placement::RoundRobin).unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "w")]))
            .into_schema(out)
            .with_selectivity(sel);
        for (algo, ys) in &mut series {
            let run = || {
                run_join(
                    &cluster,
                    &query,
                    PlannerKind::MinBandwidth,
                    Some(*algo),
                    params,
                    Some(64),
                )
            };
            // 3-run average, discarding one warm-up run.
            let _ = run();
            let mut avg = 0.0;
            for _ in 0..3 {
                let m = run();
                avg +=
                    (m.slice_map_seconds + m.alignment_seconds + m.comparison_seconds) * 1e3 / 3.0;
            }
            ys.push(avg);
        }
    }

    for (algo, ys) in &series {
        print!("{:<12}", algo.name());
        for y in ys {
            print!(" {y:>10.1}");
        }
        println!();
    }

    // Shape assertions mirrored from the paper.
    let hash = &series[0].1;
    let merge = &series[1].1;
    let nl = &series[2].1;
    println!("\nshape checks:");
    println!("  hash beats merge at sel 0.01: {}", hash[0] < merge[0]);
    println!(
        "  merge beats hash at sel >= 1: {}",
        merge[2] <= hash[2] * 1.05 && merge[3] < hash[3] && merge[4] < hash[4]
    );
    // At selectivity 100 all plans converge on the giant output's cost
    // ("All join deviates from the trend when the data produces an
    // output 100 times larger than its sources", §6.1) — check NL is
    // worst over the paper's trend region.
    println!(
        "  nested loop worst at sel <= 10: {}",
        nl[..4].iter().zip(hash).all(|(n, h)| n > h)
            && nl[..4].iter().zip(merge).all(|(n, m)| n > m)
    );
    println!(
        "  merge-vs-hash gap at sel 100: {:.1}x (paper: up to 35x on its hardware)",
        hash[4] / merge[4]
    );
}
