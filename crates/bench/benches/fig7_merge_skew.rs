//! Figure 7: merge join under varying Zipfian skew, across the five
//! physical planners.
//!
//! Paper §6.2.1: two 2-D arrays on a chunk grid (the paper: 32×32 =
//! 1024 join units over 100 GB; here 16×16 = 256 units at laptop scale);
//! the D:D query `WHERE A.i = B.i AND A.j = B.j` runs as `merge(A, B)`
//! with whole chunks as join units, sweeping spatial skew α from 0 to 2.
//!
//! Expected shapes: all planners comparable at α = 0; skew helps every
//! skew-aware planner; MBH is the overall winner for merge joins (the
//! plan space is simple — each unit has only two sensible homes); the
//! ILP pays heavy planning time without better plans.

use std::time::Duration;

use sj_bench::{
    bench_params, cluster_with_pair, paper_planners, print_phase_table, run_join, PhaseRow,
};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const ALPHAS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];

fn main() {
    let params = bench_params(32);
    println!("Figure 7: merge join duration by skew level and physical planner");
    println!("(16x16 chunk grid -> 256 join units, 120k cells per array, 4 nodes)");

    for &alpha in &ALPHAS {
        let cfg = SkewedArrayConfig {
            name: String::new(),
            grid: 16,
            chunk_interval: 64,
            cells: 120_000,
            spatial_alpha: alpha,
            value_alpha: 0.0,
            value_domain: 100_000,
            seed: 42,
        };
        let (a, b) = skewed_pair(&cfg);
        let cluster = cluster_with_pair(4, a, b);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]))
            .with_selectivity(0.0001);

        let mut rows = Vec::new();
        for planner in paper_planners(Duration::from_secs(2), 75) {
            let m = run_join(
                &cluster,
                &query,
                planner,
                Some(JoinAlgo::Merge),
                params,
                None,
            );
            rows.push(PhaseRow::from_metrics(m.planner, &m));
        }
        print_phase_table(&format!("Zipfian alpha = {alpha}"), &rows);
    }
}
