//! Figure 8: hash join under varying Zipfian skew, across the five
//! physical planners.
//!
//! Paper §6.2.2: the A:A query `WHERE A.v1 = B.v1 AND A.v2 = B.v2` with
//! hash buckets as join units. Skew lives in the *value frequencies*, so
//! bucket sizes follow a Zipfian and every join unit is spread over all
//! nodes — a much richer assignment space than merge joins.
//!
//! Expected shapes: MBH degrades under slight skew (α = 0.5) where its
//! single-pass greed creates comparison imbalance; the full ILP misses
//! its budget on 256 buckets; Tabu is the overall winner.

use std::time::Duration;

use sj_bench::{
    bench_params, cluster_with_pair, paper_planners, print_phase_table, run_join, PhaseRow,
};
use sj_core::exec::JoinQuery;
use sj_core::{JoinAlgo, JoinPredicate};
use sj_workload::{skewed_pair, SkewedArrayConfig};

const ALPHAS: [f64; 5] = [0.0, 0.5, 1.0, 1.5, 2.0];
const BUCKETS: usize = 256;

fn main() {
    let params = bench_params(32);
    println!("Figure 8: hash join duration by skew level and physical planner");
    println!("({BUCKETS} hash buckets as join units, 120k cells per array, 4 nodes)");

    for &alpha in &ALPHAS {
        let cfg = SkewedArrayConfig {
            name: String::new(),
            grid: 16,
            chunk_interval: 64,
            cells: 120_000,
            spatial_alpha: 0.0,
            value_alpha: alpha,
            value_domain: 50_000,
            seed: 7,
        };
        let (a, b) = skewed_pair(&cfg);
        let cluster = cluster_with_pair(4, a, b);
        let query = JoinQuery::new(
            "A",
            "B",
            JoinPredicate::new(vec![("v1", "v1"), ("v2", "v2")]),
        )
        .with_selectivity(0.0001);

        let mut rows = Vec::new();
        for planner in paper_planners(Duration::from_secs(2), 75) {
            let m = run_join(
                &cluster,
                &query,
                planner,
                Some(JoinAlgo::Hash),
                params,
                Some(BUCKETS),
            );
            let mut row = PhaseRow::from_metrics(m.planner, &m);
            if let Some(status) = m.solver_status {
                row.label = format!("{} ({status})", m.planner);
            }
            rows.push(row);
        }
        print_phase_table(&format!("Zipfian alpha = {alpha}"), &rows);
    }
}
