//! Kernel sweep + dispatch-gate microbenchmarks for the normalized-key
//! columnar kernels.
//!
//! Every rewritten kernel keeps its predecessor callable
//! (`sort_c_order_comparator`, `sort_by_attr_columns_comparator`,
//! `hash_join_rowwise`) and every forced kernel is reachable through an
//! explicit `KernelConfig`, so one run measures all paths on identical
//! inputs across a row-count sweep:
//!
//! - `sort_coords_*`: per-chunk C-order sort — comparator vs forced
//!   radix vs the dispatched entry point. 1-dim exercises the
//!   single-`u64` key path, 2-dim the 16-byte wide-key path.
//! - `sort_attrs_{int,float}`: attribute-column sort on wide-domain
//!   keys (radix territory).
//! - `sort_attrs_narrow`: a ~1000-value key domain where the
//!   counting-sort kernel is eligible — the counting/radix crossover.
//! - `parallel_radix/t{1,2,8}`: the multi-threaded MSB partition sort
//!   at the largest sweep size (bit-identical at every thread count;
//!   real speedup needs real cores — see EXPERIMENTS.md).
//! - `hash_join`: partitioned bucket-chain join vs the row-wise
//!   `HashMap<Vec<Value>, _>` join, probe side Zipf(1.0)-skewed.
//! - `chunked/*`: explicit-chunked loop evidence — the columnar filter
//!   vs the row-wise interpreter, and batched row hashing vs per-row
//!   `hash_row` calls (interleaved A/B sampling).
//!
//! Every sort point clones a pristine shuffled batch per iteration; the
//! matching `clone_baseline` point measures that overhead so it can be
//! subtracted when comparing absolute kernel times.
//!
//! **Dispatch gate** (asserted, `# dispatch gate` lines on stderr): at
//! 20k and 1M rows the dispatched entry point must come within 1.1x of
//! the best forced kernel on the same input — dispatch may never cost
//! more than its decision overhead.
//!
//! `JOIN_KERNELS_SMOKE=1` runs the [20k, 1M] endpoints (CI/verify
//! smoke); the default sweep is [20k, 100k, 1M, 10M], reported in
//! EXPERIMENTS.md. Run with `cargo bench --bench join_kernels`.

use std::time::Duration;

use sj_array::keys::{KernelConfig, SortKernel};
use sj_array::ops::kernels::FilterKernel;
use sj_array::{keys, ArraySchema, BinOp, CellBatch, DataType, Expr, Histogram, Value};
use sj_bench::harness::{Options, Runner, Stats};
use sj_core::algorithms::{hash_join, hash_join_rowwise, Emitter};
use sj_core::join_schema::{infer_join_schema, ColumnStats};
use sj_core::predicate::{JoinPredicate, JoinSide};
use sj_telemetry::{TelemetryConfig, Tracer};
use sj_workload::{Rng64, Zipf};

/// Sizes where the dispatch gate is asserted (both sweep modes hit them).
const GATE_SIZES: [usize; 2] = [20_000, 1_000_000];

/// Shuffled batch with `ndims` coordinate dimensions and one int attr.
fn coord_batch(n: usize, ndims: usize, seed: u64) -> CellBatch {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = CellBatch::with_capacity(ndims, &[DataType::Int64], n);
    let mut coord = vec![0i64; ndims];
    for row in 0..n {
        for c in coord.iter_mut() {
            *c = (rng.next_u64() % 1_000_000) as i64 - 500_000;
        }
        b.push(&coord, &[Value::Int(row as i64)]).unwrap();
    }
    b
}

/// Dimension-less batch with one key attr drawn from `domain` distinct
/// values (int or float) and one payload column.
fn attr_batch(n: usize, domain: u64, float_key: bool, seed: u64) -> CellBatch {
    let mut rng = Rng64::seed_from_u64(seed);
    let key_type = if float_key {
        DataType::Float64
    } else {
        DataType::Int64
    };
    let mut b = CellBatch::with_capacity(0, &[key_type, DataType::Int64], n);
    for row in 0..n {
        let raw = (rng.next_u64() % domain) as i64 - (domain / 2) as i64;
        let key = if float_key {
            Value::Float(raw as f64 * 0.5)
        } else {
            Value::Int(raw)
        };
        b.push(&[], &[key, Value::Int(row as i64)]).unwrap();
    }
    b
}

/// Join inputs in the join unit's dimension-less layout `[i, v]` /
/// `[j, w]`: the probe side draws `v` from a Zipf(1.0) over `domain`
/// ranks, the build side (`n / 4` rows) uniformly.
fn join_batches(n: usize, domain: usize, seed: u64) -> (CellBatch, CellBatch) {
    let mut rng = Rng64::seed_from_u64(seed);
    let zipf = Zipf::new(domain, 1.0);
    let layout = [DataType::Int64, DataType::Int64];
    let mut probe = CellBatch::with_capacity(0, &layout, n);
    for row in 0..n {
        let v = zipf.sample(&mut rng) as i64 + 1;
        probe
            .push(&[], &[Value::Int(row as i64), Value::Int(v)])
            .unwrap();
    }
    let mut build = CellBatch::with_capacity(0, &layout, n / 4);
    for row in 0..n / 4 {
        let w = (rng.next_u64() % domain as u64) as i64 + 1;
        build
            .push(&[], &[Value::Int(row as i64), Value::Int(w)])
            .unwrap();
    }
    (probe, build)
}

/// The `v = w` join schema for the bench batches (same shape as the
/// planner would infer for an attribute-attribute equi-join).
fn join_schema(domain: usize) -> sj_core::join_schema::JoinSchema {
    let bound = domain as i64;
    let a = ArraySchema::parse(&format!("A<v:int>[i=1,{bound},8192]")).unwrap();
    let b = ArraySchema::parse(&format!("B<w:int>[j=1,{bound},8192]")).unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    let hist = Histogram::build((1..=bound).map(Value::Int), 16).unwrap();
    stats.insert(JoinSide::Left, "v", hist.clone());
    stats.insert(JoinSide::Right, "w", hist);
    infer_join_schema(&a, &b, &p, None, &stats).unwrap()
}

/// Forced-kernel configs: dispatch disabled, exactly one kernel eligible.
fn force_radix() -> KernelConfig {
    KernelConfig::radix_only()
}

fn force_counting() -> KernelConfig {
    KernelConfig {
        radix_min_rows: 0,
        counting_max_bits: 26,
        parallel_min_rows: usize::MAX,
        threads: 1,
    }
}

fn force_parallel(threads: usize) -> KernelConfig {
    KernelConfig {
        radix_min_rows: 0,
        counting_max_bits: 0,
        parallel_min_rows: 0,
        threads,
    }
}

/// Assert an interleaved dispatched-vs-best ratio against the 1.1x gate
/// and print the `# dispatch gate` stderr line `scripts/verify.sh`
/// greps for. Callers pass the **p50** of the interleaved samples:
/// the two sides' minima can come from different drift epochs of the
/// run (defeating the pairing), while the medians move together — a
/// full-sweep run once tripped a min-based gate at 1.153 on a pair
/// executing identical code whose p50s agreed within 7%.
fn assert_gate(label: &str, n: usize, best_name: &str, dispatched_ns: f64, best_ns: f64) {
    let ratio = dispatched_ns / best_ns;
    eprintln!(
        "# dispatch gate {label}/{n}: dispatched {dispatched_ns:.0}ns vs best single kernel \
         {best_name} {best_ns:.0}ns, ratio {ratio:.3} (gate <= 1.10)"
    );
    assert!(
        ratio <= 1.10,
        "dispatch gate failed at {label}/{n}: dispatched {dispatched_ns:.0}ns is {ratio:.3}x \
         the best single kernel ({best_name} at {best_ns:.0}ns); dispatch must not cost more \
         than its decision overhead"
    );
}

/// One sort group of the sweep: clone baseline, every forced kernel,
/// and the dispatched entry point. At the gate sizes the dispatched
/// path is then re-measured **interleaved** against whichever forced
/// kernel won (two back-to-back `bench` runs of identical code can
/// drift past 10% on a busy machine; interleaving cancels that).
/// A labeled in-place sort to race against the dispatcher.
type ForcedSort<'a> = (&'a str, &'a dyn Fn(&mut CellBatch));

fn sort_group(
    runner: &mut Runner,
    label: &str,
    n: usize,
    pristine: &CellBatch,
    dispatched: &dyn Fn(&mut CellBatch),
    forced: &[ForcedSort],
) {
    let mut stats: Vec<(&str, Option<Stats>)> = Vec::new();
    let disp = {
        let mut group = runner.group("join_kernels");
        group.bench(&format!("{label}/clone_baseline/{n}"), || pristine.clone());
        for (name, f) in forced {
            let s = group.bench(&format!("{label}/{name}/{n}"), || {
                let mut b = pristine.clone();
                f(&mut b);
                b
            });
            stats.push((name, s));
        }
        group.bench(&format!("{label}/dispatched/{n}"), || {
            let mut b = pristine.clone();
            dispatched(&mut b);
            b
        })
    };
    if !GATE_SIZES.contains(&n) || disp.is_none() {
        return;
    }
    let mut best: Option<(&str, f64)> = None;
    for (name, s) in &stats {
        // A CLI filter that skipped any kernel point skips the gate too.
        let Some(s) = s else { return };
        if best.is_none_or(|(_, ns)| s.min_ns < ns) {
            best = Some((name, s.min_ns));
        }
    }
    let (best_name, _) = best.expect("at least one forced kernel");
    let best_fn = forced
        .iter()
        .find(|(name, _)| *name == best_name)
        .expect("best kernel is one of the forced set")
        .1;
    // The gate is an assertion, not a data point: widen the window 3x
    // so the paired medians settle before comparing.
    let saved_measure = runner.opts_mut().measure;
    runner.opts_mut().measure = saved_measure * 3;
    let pair = runner.group("join_kernels").bench_pair(
        &format!("{label}/gate_dispatched/{n}"),
        || {
            let mut b = pristine.clone();
            dispatched(&mut b);
            b
        },
        &format!("{label}/gate_{best_name}/{n}"),
        || {
            let mut b = pristine.clone();
            best_fn(&mut b);
            b
        },
    );
    runner.opts_mut().measure = saved_measure;
    if let Some((d, b)) = pair {
        assert_gate(label, n, best_name, d.p50_ns, b.p50_ns);
    }
}

/// Runner whose measurement window scales with the workload size.
fn runner_for(n: usize, smoke: bool) -> Runner {
    let measure_ms = (n as u64 / 2_000).clamp(120, 3_000);
    Runner::from_args().with_options(Options {
        warmup: if smoke {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300).min(Duration::from_millis(measure_ms / 2))
        },
        measure: Duration::from_millis(measure_ms),
        ..Options::default()
    })
}

fn bench_sorts(runner: &mut Runner, n: usize) {
    // --- C-order coordinate sorts: u64-key (1-dim) and wide-key (2-dim).
    for (tag, ndims) in [("1d", 1usize), ("2d", 2usize)] {
        let pristine = coord_batch(n, ndims, 0xC0FFEE + ndims as u64);
        sort_group(
            runner,
            &format!("sort_coords_{tag}"),
            n,
            &pristine,
            &|b| {
                b.sort_c_order();
            },
            &[
                ("radix", &|b| {
                    b.sort_c_order_with(&force_radix());
                }),
                ("comparator", &|b| b.sort_c_order_comparator()),
            ],
        );
    }

    // --- Attribute-column sorts: wide-domain int and float keys.
    for (tag, float_key) in [("int", false), ("float", true)] {
        let pristine = attr_batch(n, 2_000_000, float_key, 0xBEEF + float_key as u64);
        sort_group(
            runner,
            &format!("sort_attrs_{tag}"),
            n,
            &pristine,
            &|b| b.sort_by_attr_columns(&[0]),
            &[
                ("radix", &|b| {
                    b.sort_by_attr_columns_with(&[0], &force_radix());
                }),
                ("comparator", &|b| b.sort_by_attr_columns_comparator(&[0])),
            ],
        );
    }

    // --- Narrow key domain (~1000 distinct): counting-sort territory.
    {
        let pristine = attr_batch(n, 1_000, false, 0xFACADE);
        // Sanity-pin what dispatch picks here before timing it.
        {
            let mut b = pristine.clone();
            let picked = b.sort_by_attr_columns_with(&[0], &KernelConfig::default());
            assert_eq!(
                picked,
                SortKernel::Counting,
                "narrow-domain fixture must dispatch to counting sort at n={n}"
            );
        }
        sort_group(
            runner,
            "sort_attrs_narrow",
            n,
            &pristine,
            &|b| b.sort_by_attr_columns(&[0]),
            &[
                ("counting", &|b| {
                    b.sort_by_attr_columns_with(&[0], &force_counting());
                }),
                ("radix", &|b| {
                    b.sort_by_attr_columns_with(&[0], &force_radix());
                }),
                ("comparator", &|b| b.sort_by_attr_columns_comparator(&[0])),
            ],
        );
    }
}

/// Multi-threaded MSB radix partition sort at the sweep's largest size.
/// Output is bit-identical at every thread count (asserted in the test
/// suite); these points measure the wall-clock side on this machine.
fn bench_parallel_radix(runner: &mut Runner, n: usize) {
    let pristine = attr_batch(n, 2_000_000, false, 0x9A9A);
    // Pin that the forced config actually takes the parallel kernel.
    {
        let mut b = pristine.clone();
        let picked = b.sort_by_attr_columns_with(&[0], &force_parallel(8));
        assert_eq!(picked, SortKernel::ParallelRadix);
    }
    let mut group = runner.group("join_kernels");
    let mut per_thread: Vec<(usize, Stats)> = Vec::new();
    for t in [1usize, 2, 8] {
        let cfg = force_parallel(t);
        let stats = group.bench(&format!("parallel_radix/t{t}/{n}"), || {
            let mut b = pristine.clone();
            b.sort_by_attr_columns_with(&[0], &cfg);
            b
        });
        if let Some(s) = stats {
            per_thread.push((t, s));
        }
    }
    if per_thread.len() == 3 {
        let base = per_thread[0].1.min_ns;
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        let speedups: Vec<String> = per_thread
            .iter()
            .map(|(t, s)| format!("t{t} {:.2}x", base / s.min_ns))
            .collect();
        eprintln!(
            "# parallel radix @ {n} rows: {} (machine has {cores} core(s); \
             >=2x requires >=2 real cores)",
            speedups.join(", ")
        );
    }
}

fn bench_hash_join(runner: &mut Runner, n: usize) {
    let domain = n;
    let (probe, build) = join_batches(n, domain, 0xD00D);
    let js = join_schema(domain);
    let mut matches = (0usize, 0usize);
    let mut group = runner.group("join_kernels");
    let columnar = group.bench(&format!("hash_join/columnar/{n}"), || {
        let mut em = Emitter::new(&js);
        matches.0 = hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
        em.len()
    });
    let rowwise = group.bench(&format!("hash_join/rowwise/{n}"), || {
        let mut em = Emitter::new(&js);
        matches.1 = hash_join_rowwise(&probe, &[1], &build, &[1], &mut em).unwrap();
        em.len()
    });
    if columnar.is_some() && rowwise.is_some() {
        assert_eq!(matches.0, matches.1, "paths disagree on match count");
        eprintln!(
            "# hash_join workload: probe {n} rows (Zipf 1.0), build {} rows, {} matches",
            build.len(),
            matches.0
        );
    }
    // The dispatched join path IS the columnar kernel; the gate checks
    // the row-wise predecessor never beats it by more than the margin.
    // (No interleaved re-measure here: the two paths are ~3x apart, so
    // drift cannot flip the verdict the way it can for identical sorts.)
    if GATE_SIZES.contains(&n) {
        if let (Some(c), Some(r)) = (&columnar, &rowwise) {
            let (best_name, best_ns) = if c.p50_ns <= r.p50_ns {
                ("columnar", c.p50_ns)
            } else {
                ("rowwise", r.p50_ns)
            };
            assert_gate("hash_join", n, best_name, c.p50_ns, best_ns);
        }
    }
}

/// Explicit-chunked loop evidence: columnar filter vs the row-wise
/// interpreter, and batched row hashing vs per-row `hash_row` calls.
/// Interleaved A/B sampling (`bench_pair`) so the printed ratio is
/// drift-free.
fn bench_chunked(runner: &mut Runner, n: usize) {
    {
        let schema = ArraySchema::parse("F<v:int>[i=-500000,500000,8192]").unwrap();
        let input = coord_batch(n, 1, 0xF117);
        let predicate = Expr::binary(BinOp::Lt, Expr::col("i"), Expr::int(0));
        let kernel = FilterKernel::compile(&schema, &predicate).unwrap();
        let mut out_a = input.take(&[]);
        let mut out_b = input.take(&[]);
        let mut group = runner.group("join_kernels");
        let pair = group.bench_pair(
            &format!("chunked/filter_int/{n}"),
            || {
                out_a.clear();
                kernel.apply(&input, &mut out_a).unwrap();
                out_a.len()
            },
            &format!("chunked/filter_int_rowwise/{n}"),
            || {
                out_b.clear();
                kernel.apply_rowwise(&input, &mut out_b).unwrap();
                out_b.len()
            },
        );
        if let Some((fast, slow)) = pair {
            eprintln!(
                "# chunked filter @ {n} rows: columnar {:.2}x over row-wise interpreter",
                slow.min_ns / fast.min_ns
            );
        }
    }
    {
        let batch = attr_batch(n, 2_000_000, false, 0x4A54);
        let cols = [0usize, 1];
        let mut hashes: Vec<u64> = Vec::new();
        let mut group = runner.group("join_kernels");
        let pair = group.bench_pair(
            &format!("chunked/hash_rows_batched/{n}"),
            || {
                keys::hash_rows_into(&batch, &cols, &mut hashes);
                hashes.last().copied()
            },
            &format!("chunked/hash_rows_perrow/{n}"),
            || {
                let mut acc = 0u64;
                for row in 0..batch.len() {
                    acc ^= keys::hash_row(&batch, &cols, row);
                }
                acc
            },
        );
        if let Some((batched, perrow)) = pair {
            eprintln!(
                "# chunked hash_rows @ {n} rows: batched {:.2}x over per-row",
                perrow.min_ns / batched.min_ns
            );
        }
    }
}

/// Disabled-telemetry overhead gate: the executor wraps every join in
/// spans and fields; with `TelemetryConfig::Off` that wrapping must cost
/// < 2% of a hash-join batch (the telemetry subsystem's compile-away
/// contract). Both sides run the identical columnar join with samples
/// interleaved, so the mean difference is attributable to the disabled
/// span calls rather than drift between two back-to-back runs.
fn bench_telemetry_overhead(runner: &mut Runner, n: usize) {
    let domain = n;
    let (probe, build) = join_batches(n, domain, 0xD00D);
    let js = join_schema(domain);
    let tracer = Tracer::new(&TelemetryConfig::Off);
    // Like the dispatch gate: this is an assertion, so widen the window
    // and compare p50s — the mean of even interleaved samples is swung
    // past the 2% budget by a handful of slow outliers on one side.
    let saved_measure = runner.opts_mut().measure;
    runner.opts_mut().measure = saved_measure * 3;
    let mut group = runner.group("join_kernels");
    let pair = group.bench_pair(
        &format!("telemetry/no_spans/{n}"),
        || {
            let mut em = Emitter::new(&js);
            hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
            em.len()
        },
        &format!("telemetry/off_spans/{n}"),
        || {
            let span = tracer.root("join");
            span.field("algo", "hashJoin");
            span.field("threads", 1usize);
            let mut em = Emitter::new(&js);
            let ex = span.child("execute");
            let m = hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
            drop(ex);
            span.field("matches", m);
            tracer.counter("kernel.matches").add(m as u64);
            em.len()
        },
    );
    drop(group);
    runner.opts_mut().measure = saved_measure;
    if let Some((bare, traced)) = pair {
        let overhead = traced.p50_ns / bare.p50_ns - 1.0;
        eprintln!(
            "# disabled-telemetry overhead: {:+.3}% p50 over interleaved samples (gate: < 2%)",
            overhead * 100.0
        );
        assert!(
            overhead < 0.02,
            "disabled telemetry costs {:.2}% of a hash-join batch (budget 2%): \
             bare {:.0} ns/iter vs traced {:.0} ns/iter (interleaved p50s)",
            overhead * 100.0,
            bare.p50_ns,
            traced.p50_ns
        );
    }
}

/// `JOIN_KERNELS_CALIBRATE=1` mode: sweep small row counts with
/// interleaved radix-vs-comparator sampling to locate the crossover
/// that `keys::RADIX_MIN_ROWS` bakes in. The threshold constant's value
/// is derived from (and re-derivable by) this sweep.
fn calibrate_radix_min_rows() {
    let mut runner = Runner::from_args().with_options(Options {
        warmup: Duration::from_millis(20),
        measure: Duration::from_millis(150),
        ..Options::default()
    });
    for n in [8usize, 16, 32, 64, 100, 200, 400, 800, 1_600, 3_200] {
        let pristine = attr_batch(n, 2_000_000, false, 0xCA11);
        let mut group = runner.group("calibrate");
        let pair = group.bench_pair(
            &format!("radix/{n}"),
            || {
                let mut b = pristine.clone();
                b.sort_by_attr_columns_with(&[0], &force_radix());
                b
            },
            &format!("comparator/{n}"),
            || {
                let mut b = pristine.clone();
                b.sort_by_attr_columns_comparator(&[0]);
                b
            },
        );
        if let Some((radix, comparator)) = pair {
            eprintln!(
                "# calibrate n={n}: radix/comparator ratio {:.3} ({})",
                radix.min_ns / comparator.min_ns,
                if radix.min_ns <= comparator.min_ns {
                    "radix wins"
                } else {
                    "comparator wins"
                }
            );
        }
    }
}

fn main() {
    if std::env::var("JOIN_KERNELS_CALIBRATE").is_ok_and(|v| v != "0") {
        calibrate_radix_min_rows();
        return;
    }
    let smoke = std::env::var("JOIN_KERNELS_SMOKE").is_ok_and(|v| v != "0");
    let sizes: &[usize] = if smoke {
        &[20_000, 1_000_000]
    } else {
        &[20_000, 100_000, 1_000_000, 10_000_000]
    };
    for &n in sizes {
        let mut runner = runner_for(n, smoke);
        bench_sorts(&mut runner, n);
        bench_hash_join(&mut runner, n);
        bench_chunked(&mut runner, n);
    }
    let largest = *sizes.last().unwrap();
    bench_parallel_radix(&mut runner_for(largest, smoke), largest);
    bench_telemetry_overhead(&mut runner_for(sizes[0], smoke), sizes[0]);
}
