//! Before/after microbenchmarks for the normalized-key columnar kernels.
//!
//! Each kernel that was rewritten on top of `sj_array::keys` keeps its
//! predecessor callable (`sort_c_order_comparator`,
//! `sort_by_attr_columns_comparator`, `hash_join_rowwise`), so a single
//! run measures both paths on identical inputs:
//!
//! - `sort_coords_*`: per-chunk C-order sort — radix over normalized
//!   coordinate keys vs. the comparator sort. The 1-dim batch exercises
//!   the single-`u64` key path, the 2-dim batch the 16-byte wide-key
//!   path.
//! - `sort_attrs_*`: attribute-column sort (regroup/organize ordering)
//!   on an integer and on a float key column.
//! - `hash_join`: the partitioned bucket-chain join vs. the row-wise
//!   `HashMap<Vec<Value>, _>` join, probe side Zipf(1.0)-skewed.
//!
//! Every sort point clones a pristine shuffled batch per iteration; the
//! matching `clone_baseline` point measures that overhead so it can be
//! subtracted when comparing absolute kernel times.
//!
//! `JOIN_KERNELS_SMOKE=1` shrinks the workload (CI/verify smoke); the
//! default is the paper-scale 1M-cell workload reported in
//! EXPERIMENTS.md. Run with `cargo bench --bench join_kernels`.

use std::time::Duration;

use sj_array::{ArraySchema, CellBatch, DataType, Histogram, Value};
use sj_bench::harness::{Options, Runner};
use sj_core::algorithms::{hash_join, hash_join_rowwise, Emitter};
use sj_core::join_schema::{infer_join_schema, ColumnStats};
use sj_core::predicate::{JoinPredicate, JoinSide};
use sj_telemetry::{TelemetryConfig, Tracer};
use sj_workload::{Rng64, Zipf};

/// Shuffled batch with `ndims` coordinate dimensions and one int attr.
fn coord_batch(n: usize, ndims: usize, seed: u64) -> CellBatch {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut b = CellBatch::with_capacity(ndims, &[DataType::Int64], n);
    let mut coord = vec![0i64; ndims];
    for row in 0..n {
        for c in coord.iter_mut() {
            *c = (rng.next_u64() % 1_000_000) as i64 - 500_000;
        }
        b.push(&coord, &[Value::Int(row as i64)]).unwrap();
    }
    b
}

/// Dimension-less batch with one key attr (int or float) and one payload.
fn attr_batch(n: usize, float_key: bool, seed: u64) -> CellBatch {
    let mut rng = Rng64::seed_from_u64(seed);
    let key_type = if float_key {
        DataType::Float64
    } else {
        DataType::Int64
    };
    let mut b = CellBatch::with_capacity(0, &[key_type, DataType::Int64], n);
    for row in 0..n {
        let raw = (rng.next_u64() % 2_000_000) as i64 - 1_000_000;
        let key = if float_key {
            Value::Float(raw as f64 * 0.5)
        } else {
            Value::Int(raw)
        };
        b.push(&[], &[key, Value::Int(row as i64)]).unwrap();
    }
    b
}

/// Join inputs in the join unit's dimension-less layout `[i, v]` /
/// `[j, w]`: the probe side draws `v` from a Zipf(1.0) over `domain`
/// ranks, the build side (`n / 4` rows) uniformly.
fn join_batches(n: usize, domain: usize, seed: u64) -> (CellBatch, CellBatch) {
    let mut rng = Rng64::seed_from_u64(seed);
    let zipf = Zipf::new(domain, 1.0);
    let layout = [DataType::Int64, DataType::Int64];
    let mut probe = CellBatch::with_capacity(0, &layout, n);
    for row in 0..n {
        let v = zipf.sample(&mut rng) as i64 + 1;
        probe
            .push(&[], &[Value::Int(row as i64), Value::Int(v)])
            .unwrap();
    }
    let mut build = CellBatch::with_capacity(0, &layout, n / 4);
    for row in 0..n / 4 {
        let w = (rng.next_u64() % domain as u64) as i64 + 1;
        build
            .push(&[], &[Value::Int(row as i64), Value::Int(w)])
            .unwrap();
    }
    (probe, build)
}

/// The `v = w` join schema for the bench batches (same shape as the
/// planner would infer for an attribute-attribute equi-join).
fn join_schema(domain: usize) -> sj_core::join_schema::JoinSchema {
    let bound = domain as i64;
    let a = ArraySchema::parse(&format!("A<v:int>[i=1,{bound},8192]")).unwrap();
    let b = ArraySchema::parse(&format!("B<w:int>[j=1,{bound},8192]")).unwrap();
    let p = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    let hist = Histogram::build((1..=bound).map(Value::Int), 16).unwrap();
    stats.insert(JoinSide::Left, "v", hist.clone());
    stats.insert(JoinSide::Right, "w", hist);
    infer_join_schema(&a, &b, &p, None, &stats).unwrap()
}

fn main() {
    let smoke = std::env::var("JOIN_KERNELS_SMOKE").is_ok_and(|v| v != "0");
    let (n, measure) = if smoke {
        (20_000usize, Duration::from_millis(120))
    } else {
        (1_000_000usize, Duration::from_secs(1))
    };
    let mut runner = Runner::from_args().with_options(Options {
        warmup: if smoke {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300)
        },
        measure,
        ..Options::default()
    });

    // --- C-order coordinate sorts: u64-key (1-dim) and wide-key (2-dim).
    for (tag, ndims) in [("1d", 1usize), ("2d", 2usize)] {
        let pristine = coord_batch(n, ndims, 0xC0FFEE + ndims as u64);
        let mut group = runner.group("join_kernels");
        group.bench(&format!("sort_coords_{tag}/clone_baseline/{n}"), || {
            pristine.clone()
        });
        group.bench(&format!("sort_coords_{tag}/radix/{n}"), || {
            let mut b = pristine.clone();
            b.sort_c_order();
            b
        });
        group.bench(&format!("sort_coords_{tag}/comparator/{n}"), || {
            let mut b = pristine.clone();
            b.sort_c_order_comparator();
            b
        });
    }

    // --- Attribute-column sorts: int key (u64 path) and float key.
    for (tag, float_key) in [("int", false), ("float", true)] {
        let pristine = attr_batch(n, float_key, 0xBEEF + float_key as u64);
        let mut group = runner.group("join_kernels");
        group.bench(&format!("sort_attrs_{tag}/clone_baseline/{n}"), || {
            pristine.clone()
        });
        group.bench(&format!("sort_attrs_{tag}/radix/{n}"), || {
            let mut b = pristine.clone();
            b.sort_by_attr_columns(&[0]);
            b
        });
        group.bench(&format!("sort_attrs_{tag}/comparator/{n}"), || {
            let mut b = pristine.clone();
            b.sort_by_attr_columns_comparator(&[0]);
            b
        });
    }

    // --- Hash join: columnar bucket-chain vs. row-wise HashMap.
    let domain = n;
    let (probe, build) = join_batches(n, domain, 0xD00D);
    let js = join_schema(domain);
    {
        let mut matches = (0usize, 0usize);
        let mut group = runner.group("join_kernels");
        let ran_columnar = group
            .bench(&format!("hash_join/columnar/{n}"), || {
                let mut em = Emitter::new(&js);
                matches.0 = hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
                em.len()
            })
            .is_some();
        let ran_rowwise = group
            .bench(&format!("hash_join/rowwise/{n}"), || {
                let mut em = Emitter::new(&js);
                matches.1 = hash_join_rowwise(&probe, &[1], &build, &[1], &mut em).unwrap();
                em.len()
            })
            .is_some();
        if ran_columnar && ran_rowwise {
            assert_eq!(matches.0, matches.1, "paths disagree on match count");
            eprintln!(
                "# hash_join workload: probe {n} rows (Zipf 1.0), build {} rows, {} matches",
                build.len(),
                matches.0
            );
        }
    }

    // --- Disabled-telemetry overhead gate: the executor wraps every join
    // in spans and fields; with `TelemetryConfig::Off` that wrapping must
    // cost < 2% of a hash-join batch (the telemetry subsystem's
    // compile-away contract). Both points run the identical columnar
    // join; the `off_spans` point adds the executor-style span tree
    // around it through a disabled tracer.
    {
        let mut group = runner.group("join_kernels");
        let bare = group.bench(&format!("telemetry/no_spans/{n}"), || {
            let mut em = Emitter::new(&js);
            hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
            em.len()
        });
        let tracer = Tracer::new(&TelemetryConfig::Off);
        let traced = group.bench(&format!("telemetry/off_spans/{n}"), || {
            let span = tracer.root("join");
            span.field("algo", "hashJoin");
            span.field("threads", 1usize);
            let mut em = Emitter::new(&js);
            let ex = span.child("execute");
            let m = hash_join(&probe, &[1], &build, &[1], &mut em).unwrap();
            drop(ex);
            span.field("matches", m);
            tracer.counter("kernel.matches").add(m as u64);
            em.len()
        });
        if let (Some(bare), Some(traced)) = (bare, traced) {
            let overhead = traced.min_ns / bare.min_ns - 1.0;
            eprintln!(
                "# disabled-telemetry overhead: {:+.3}% (gate: < 2%)",
                overhead * 100.0
            );
            assert!(
                overhead < 0.02,
                "disabled telemetry costs {:.2}% of a hash-join batch (budget 2%): \
                 bare {:.0} ns/iter vs traced {:.0} ns/iter",
                overhead * 100.0,
                bare.min_ns,
                traced.min_ns
            );
        }
    }
}
