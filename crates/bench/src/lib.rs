//! Shared harness utilities for the per-figure/table benchmarks.
//!
//! Every bench target regenerates one table or figure from the paper's
//! evaluation (§6), printing the same rows/series the paper reports.
//! Scales are laptop-sized; EXPERIMENTS.md records paper-vs-measured.

#![warn(missing_docs)]

pub mod harness;

use std::time::Duration;

use sj_cluster::{Cluster, NetworkModel, Placement};
use sj_core::exec::{calibrate_cost_params, execute_join, ExecConfig, JoinMetrics, JoinQuery};
use sj_core::physical::CostParams;
use sj_core::{JoinAlgo, MetricsView, PlannerKind};

/// The five physical planners of §6.2, in the paper's display order,
/// with the given ILP time budget.
pub fn paper_planners(ilp_budget: Duration, coarse_bins: usize) -> Vec<PlannerKind> {
    vec![
        PlannerKind::Baseline,
        PlannerKind::Ilp { budget: ilp_budget },
        PlannerKind::IlpCoarse {
            budget: ilp_budget,
            bins: coarse_bins,
        },
        PlannerKind::MinBandwidth,
        PlannerKind::Tabu,
    ]
}

/// Calibrated cost-model parameters for the benchmark network.
pub fn bench_params(cell_bytes: usize) -> CostParams {
    calibrate_cost_params(&bench_network(), cell_bytes)
}

/// The network profile used by all benchmarks (see
/// [`NetworkModel::scaled_to_engine`]).
pub fn bench_network() -> NetworkModel {
    NetworkModel::scaled_to_engine()
}

/// Build a cluster with two arrays on decorrelated layouts (each array
/// of a real engine is distributed independently).
pub fn cluster_with_pair(k: usize, left: sj_array::Array, right: sj_array::Array) -> Cluster {
    let mut cluster = Cluster::new(k, bench_network());
    cluster
        .load_array(left, &Placement::HashSalted(1))
        .expect("load left");
    cluster
        .load_array(right, &Placement::HashSalted(2))
        .expect("load right");
    cluster
}

/// Run one configured join and return its metrics.
pub fn run_join(
    cluster: &Cluster,
    query: &JoinQuery,
    planner: PlannerKind,
    algo: Option<JoinAlgo>,
    params: CostParams,
    hash_buckets: Option<usize>,
) -> JoinMetrics {
    let mut builder = ExecConfig::builder().planner(planner).cost_params(params);
    if let Some(buckets) = hash_buckets {
        builder = builder.hash_buckets(buckets);
    }
    if let Some(algo) = algo {
        builder = builder.forced_algo(algo);
    }
    let config = builder.build().expect("benchmark config invalid");
    execute_join(cluster, query, &config)
        .expect("benchmark join failed")
        .telemetry
        .join_metrics()
        .expect("join span missing from benchmark trace")
}

/// One row of a phase-breakdown table (the stacked bars of Figs 7–10).
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Row label (planner name, α value, node count, ...).
    pub label: String,
    /// "Query Plan" in ms.
    pub plan_ms: f64,
    /// "Data Align" in ms.
    pub align_ms: f64,
    /// "Cell Comp" in ms.
    pub comp_ms: f64,
}

impl PhaseRow {
    /// Build from join metrics.
    pub fn from_metrics(label: impl Into<String>, m: &JoinMetrics) -> Self {
        PhaseRow {
            label: label.into(),
            plan_ms: m.physical_planning.as_secs_f64() * 1e3,
            align_ms: m.alignment_seconds * 1e3,
            comp_ms: (m.slice_map_seconds + m.comparison_seconds) * 1e3,
        }
    }

    /// Total duration in ms.
    pub fn total_ms(&self) -> f64 {
        self.plan_ms + self.align_ms + self.comp_ms
    }
}

/// Print a phase table under a heading.
pub fn print_phase_table(title: &str, rows: &[PhaseRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "series", "plan (ms)", "align (ms)", "comp (ms)", "total (ms)"
    );
    for r in rows {
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r.label,
            r.plan_ms,
            r.align_ms,
            r.comp_ms,
            r.total_ms()
        );
    }
    // Machine-readable mirror of the table, one JSON object per row.
    for r in rows {
        println!(
            "{{\"table\":{},\"series\":{},\"plan_ms\":{:.3},\"align_ms\":{:.3},\"comp_ms\":{:.3},\"total_ms\":{:.3}}}",
            harness::json_str(title),
            harness::json_str(&r.label),
            r.plan_ms,
            r.align_ms,
            r.comp_ms,
            r.total_ms()
        );
    }
}

/// Coefficient of determination of the least-squares line y ≈ a·x + b.
pub fn r_squared(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 1.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

/// r² of the power-law fit `y ≈ c·x^a` (linear fit in log-log space) —
/// the paper's Figure 5 correlation.
pub fn r_squared_loglog(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.max(1e-12).ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-12).ln()).collect();
    r_squared(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_squared_perfect_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((r_squared(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_uncorrelated_is_low() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ys = [5.0, 1.0, 4.0, 2.0, 6.0, 3.0];
        assert!(r_squared(&xs, &ys) < 0.3);
    }

    #[test]
    fn loglog_fits_power_laws() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(2.5)).collect();
        assert!((r_squared_loglog(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_row_totals() {
        let r = PhaseRow {
            label: "x".into(),
            plan_ms: 1.0,
            align_ms: 2.0,
            comp_ms: 3.0,
        };
        assert_eq!(r.total_ms(), 6.0);
    }
}
