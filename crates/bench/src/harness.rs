//! Dependency-free micro-benchmark harness.
//!
//! A minimal replacement for criterion built on `std::time::Instant`:
//! warm-up, batch-size calibration (so per-sample timer overhead is
//! negligible even for nanosecond-scale kernels), and robust summary
//! statistics. Every benchmark prints one human-readable line and one
//! machine-readable JSON line:
//!
//! ```text
//! bench join_kernels/hashJoin/1000 ... 123456 iters  mean 8.1µs  p50 8.0µs  min 7.9µs
//! {"bench":"join_kernels/hashJoin/1000","iters":123456,"mean_ns":8123.4,"p50_ns":8011.0,"min_ns":7903.2}
//! ```
//!
//! Run with `cargo bench --bench <name> [-- <substring filter>]`.

use std::time::{Duration, Instant};

/// Re-export so benches don't need a direct `std::hint` import.
pub use std::hint::black_box;

/// Timing policy for one runner.
#[derive(Debug, Clone)]
pub struct Options {
    /// Time spent running the closure before measurement starts.
    pub warmup: Duration,
    /// Target measurement time per benchmark.
    pub measure: Duration,
    /// Upper bound on collected samples (each sample times one batch).
    pub max_samples: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(2),
            max_samples: 200,
        }
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Full benchmark id (`group/name`).
    pub id: String,
    /// Total timed iterations across all samples.
    pub iters: u64,
    /// Mean ns/iter over all samples.
    pub mean_ns: f64,
    /// Median ns/iter over samples.
    pub p50_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
}

impl Stats {
    /// Mean seconds per iteration.
    pub fn mean_secs(&self) -> f64 {
        self.mean_ns * 1e-9
    }
}

/// Top-level harness: holds the timing policy and the CLI filter.
#[derive(Debug, Clone)]
pub struct Runner {
    filter: Option<String>,
    opts: Options,
}

impl Runner {
    /// A runner with the given policy and no filter.
    pub fn new(opts: Options) -> Self {
        Runner { filter: None, opts }
    }

    /// A runner configured from the process arguments: the first
    /// non-flag argument is a substring filter on benchmark ids
    /// (matching `cargo bench -- <filter>` behavior).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner {
            filter,
            opts: Options::default(),
        }
    }

    /// Override the timing policy.
    pub fn with_options(mut self, opts: Options) -> Self {
        self.opts = opts;
        self
    }

    /// Mutable access to the timing policy, for callers that need to
    /// widen the window for one high-stakes comparison (e.g. a gate
    /// pair) and then restore it.
    pub fn opts_mut(&mut self) -> &mut Options {
        &mut self.opts
    }

    /// Start a named benchmark group (ids become `name/<bench>`).
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            runner: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks sharing an id prefix.
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
}

impl Group<'_> {
    /// Measure `f`, printing and returning its stats. Returns `None`
    /// when the id doesn't match the CLI filter. The closure's return
    /// value is passed through `black_box` so the optimizer cannot
    /// discard the computation.
    pub fn bench<R, F: FnMut() -> R>(&mut self, id: &str, mut f: F) -> Option<Stats> {
        let full_id = format!("{}/{}", self.name, id);
        if !self.matches(&full_id) {
            return None;
        }
        let opts = self.runner.opts.clone();
        let batch = calibrate(&mut f, &opts);

        let mut samples_ns: Vec<f64> = Vec::new();
        let mut iters: u64 = 0;
        let run_start = Instant::now();
        while samples_ns.len() < opts.max_samples
            && (samples_ns.is_empty() || run_start.elapsed() < opts.measure)
        {
            samples_ns.push(sample_once(&mut f, batch));
            iters += batch;
        }
        Some(report(full_id, samples_ns, iters))
    }

    /// Measure two closures with interleaved samples (A batch, B batch,
    /// A batch, …) so slow drift — CPU frequency, thermals, a noisy
    /// neighbor — lands on both sides equally instead of biasing
    /// whichever ran second. This is the harness to use for overhead
    /// gates: the *difference* between the two means is trustworthy at
    /// far smaller margins than two back-to-back [`bench`] runs.
    ///
    /// Each side is calibrated to its own batch size. Returns `None`
    /// when neither id matches the CLI filter.
    ///
    /// [`bench`]: Self::bench
    pub fn bench_pair<RA, RB, FA, FB>(
        &mut self,
        id_a: &str,
        mut a: FA,
        id_b: &str,
        mut b: FB,
    ) -> Option<(Stats, Stats)>
    where
        FA: FnMut() -> RA,
        FB: FnMut() -> RB,
    {
        let full_a = format!("{}/{}", self.name, id_a);
        let full_b = format!("{}/{}", self.name, id_b);
        if !self.matches(&full_a) && !self.matches(&full_b) {
            return None;
        }
        let opts = self.runner.opts.clone();
        let batch_a = calibrate(&mut a, &opts);
        let batch_b = calibrate(&mut b, &opts);

        let mut samples_a: Vec<f64> = Vec::new();
        let mut samples_b: Vec<f64> = Vec::new();
        let (mut iters_a, mut iters_b) = (0u64, 0u64);
        let run_start = Instant::now();
        while samples_a.len() < opts.max_samples
            && (samples_a.is_empty() || run_start.elapsed() < opts.measure)
        {
            samples_a.push(sample_once(&mut a, batch_a));
            iters_a += batch_a;
            samples_b.push(sample_once(&mut b, batch_b));
            iters_b += batch_b;
        }
        Some((
            report(full_a, samples_a, iters_a),
            report(full_b, samples_b, iters_b),
        ))
    }

    fn matches(&self, full_id: &str) -> bool {
        self.runner
            .filter
            .as_ref()
            .is_none_or(|filter| full_id.contains(filter.as_str()))
    }
}

/// Warm `f` up and pick the timed-batch size (enough calls that one
/// sample takes ~1ms, bounding the relative cost of the two `Instant`
/// reads around it).
///
/// Warm-up runs in doubling batches and the per-call estimate is taken
/// from the **last completed batch only**: the cold first calls (lazy
/// allocation, page faults, cache fill) get amortized across later
/// batches instead of inflating the estimate. The old whole-warmup
/// average undersized the batch by the cold-start factor, and a batch
/// of 1 lets single lucky calls pollute `min_ns` (observed: min 7.9µs
/// under a p50 of 99µs).
fn calibrate<R>(f: &mut impl FnMut() -> R, opts: &Options) -> u64 {
    let warm_start = Instant::now();
    let mut batch: u64 = 1;
    let per_call = loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let took = t.elapsed().as_secs_f64();
        if warm_start.elapsed() >= opts.warmup {
            break took / batch as f64;
        }
        if took < 1e-3 {
            // Still below one sample's worth of work; grow toward it.
            batch = batch.saturating_mul(2).min(1_000_000);
        }
    };
    ((1e-3 / per_call.max(1e-9)) as u64).clamp(1, 1_000_000)
}

/// Time one batch of `f`; returns ns per call.
fn sample_once<R>(f: &mut impl FnMut() -> R, batch: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..batch {
        black_box(f());
    }
    t.elapsed().as_nanos() as f64 / batch as f64
}

/// Summarize samples into [`Stats`] and print the two report lines.
fn report(id: String, mut samples_ns: Vec<f64>, iters: u64) -> Stats {
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let min_ns = samples_ns[0];
    let p50_ns = samples_ns[samples_ns.len() / 2];
    let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let stats = Stats {
        id,
        iters,
        mean_ns,
        p50_ns,
        min_ns,
    };
    println!(
        "bench {:<44} {:>10} iters  mean {:>10}  p50 {:>10}  min {:>10}",
        stats.id,
        stats.iters,
        fmt_ns(stats.mean_ns),
        fmt_ns(stats.p50_ns),
        fmt_ns(stats.min_ns),
    );
    println!(
        "{{\"bench\":{},\"iters\":{},\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"min_ns\":{:.1}}}",
        json_str(&stats.id),
        stats.iters,
        stats.mean_ns,
        stats.p50_ns,
        stats.min_ns,
    );
    stats
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

/// Minimal JSON string encoding (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_stats() {
        let mut runner = Runner::new(Options {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(20),
            max_samples: 16,
        });
        let mut group = runner.group("g");
        let stats = group
            .bench("spin", || {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            })
            .expect("no filter set");
        assert_eq!(stats.id, "g/spin");
        assert!(stats.iters > 0);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.p50_ns);
        assert!(stats.p50_ns <= stats.mean_ns * 4.0);
    }

    #[test]
    fn bench_pair_reports_both_sides() {
        let mut runner = Runner::new(Options {
            warmup: Duration::from_millis(2),
            measure: Duration::from_millis(10),
            max_samples: 8,
        });
        let mut group = runner.group("g");
        let (a, b) = group
            .bench_pair("a", || black_box(1u64) + 1, "b", || black_box(2u64) * 3)
            .expect("no filter set");
        assert_eq!(a.id, "g/a");
        assert_eq!(b.id, "g/b");
        // Interleaving collects the same sample count on both sides.
        assert!(a.iters > 0 && b.iters > 0);
        assert!(a.min_ns > 0.0 && b.min_ns > 0.0);
    }

    #[test]
    fn calibration_amortizes_cold_start() {
        // A closure whose first call is 100x slower than the rest: the
        // batch size must be driven by the warm cost, not the cold call.
        let mut cold = true;
        let mut f = || {
            let spins = if cold { 100_000u64 } else { 100 };
            cold = false;
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i * i);
            }
            acc
        };
        let batch = calibrate(
            &mut f,
            &Options {
                warmup: Duration::from_millis(10),
                measure: Duration::from_millis(1),
                max_samples: 1,
            },
        );
        // The warm call is well under 1µs, so a ~1ms sample needs many
        // calls; the old whole-average calibration picked far fewer.
        assert!(batch > 100, "batch {batch} sized by the cold first call");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut runner = Runner::new(Options {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            max_samples: 2,
        });
        runner.filter = Some("nope".into());
        let mut group = runner.group("g");
        assert!(group.bench("spin", || 1).is_none());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_str("x\ny"), "\"x\\ny\"");
    }
}
