//! # sj-workload: workload generators for the shuffle-join evaluation
//!
//! Synthetic and real-world-like datasets matching the paper's
//! experimental setup (§6): Zipf-skewed 2-D arrays for the physical
//! planner sweeps, selectivity-controlled 1-D pairs for the logical
//! planner study, and MODIS/AIS-like geospatial generators for the
//! beneficial/adversarial real-data experiments.

#![warn(missing_docs)]

mod realworld;
pub mod rng;
mod synthetic;
mod zipf;

pub use realworld::{ais_broadcasts, modis_band, AisConfig, GeoConfig};
pub use rng::Rng64;
pub use synthetic::{
    selectivity_output_schema, selectivity_pair, skewed_array, skewed_pair, SkewedArrayConfig,
};
pub use zipf::Zipf;
