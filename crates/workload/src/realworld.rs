//! Synthetic stand-ins for the paper's real-world datasets (§6.3).
//!
//! * **MODIS**: satellite reflectance bands over (time, longitude,
//!   latitude), near-uniformly distributed with a slight equatorial
//!   density bump ("the top 5% of its chunks contain only 10% of the
//!   data"). Two bands share a sensor footprint, so band⋈band chunk
//!   sizes line up — *adversarial* skew.
//! * **AIS**: ship-position broadcasts clustered around ports — ~85% of
//!   the data in ~5% of the chunks — joined against MODIS it produces
//!   *beneficial* skew.
//!
//! Real data is unavailable offline; these generators reproduce the
//! distributional properties the paper reports, which is what the
//! planners react to (see DESIGN.md §4).

use sj_array::{Array, ArraySchema, Value};

use crate::rng::Rng64;

/// Geometry shared by the geospatial generators.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// Extent of the time dimension (1..=time_extent).
    pub time_extent: u64,
    /// Chunk interval of the time dimension.
    pub time_chunk: u64,
    /// Number of longitude chunks (each `deg_per_chunk` wide).
    pub lon_chunks: u64,
    /// Number of latitude chunks.
    pub lat_chunks: u64,
    /// Degrees per chunk (the paper uses 4° × 4° tiles).
    pub deg_per_chunk: u64,
    /// Total occupied cells to generate.
    pub cells: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeoConfig {
    /// A small configuration for tests: 8×6 geographic chunks.
    pub fn small(seed: u64) -> Self {
        GeoConfig {
            time_extent: 4096,
            time_chunk: 4096,
            lon_chunks: 8,
            lat_chunks: 6,
            deg_per_chunk: 4,
            cells: 20_000,
            seed,
        }
    }

    fn lon_extent(&self) -> u64 {
        self.lon_chunks * self.deg_per_chunk
    }

    fn lat_extent(&self) -> u64 {
        self.lat_chunks * self.deg_per_chunk
    }

    /// Longitude range, centered like real-world coordinates.
    fn lon_range(&self) -> (i64, i64) {
        let half = (self.lon_extent() / 2) as i64;
        (-half, self.lon_extent() as i64 - half - 1)
    }

    /// Latitude range.
    fn lat_range(&self) -> (i64, i64) {
        let half = (self.lat_extent() / 2) as i64;
        (-half, self.lat_extent() as i64 - half - 1)
    }

    /// Schema for an array named `name` with the given attribute list
    /// (rendered in the paper's literal syntax).
    pub fn schema(&self, name: &str, attrs: &str) -> ArraySchema {
        let (lon_lo, lon_hi) = self.lon_range();
        let (lat_lo, lat_hi) = self.lat_range();
        ArraySchema::parse(&format!(
            "{name}<{attrs}>[time=1,{},{}, lon={lon_lo},{lon_hi},{d}, lat={lat_lo},{lat_hi},{d}]",
            self.time_extent,
            self.time_chunk,
            d = self.deg_per_chunk
        ))
        .expect("generated schema is valid")
    }

    /// Number of geographic (lon × lat) chunks.
    pub fn geo_chunks(&self) -> u64 {
        self.lon_chunks * self.lat_chunks
    }
}

/// Per-geo-chunk weights with a slight equatorial bump: the chunk at
/// latitude φ gets weight `1 + 0.25·cos(φ)` — MODIS's "very slight skew".
fn modis_weights(cfg: &GeoConfig) -> Vec<f64> {
    let (lat_lo, _) = cfg.lat_range();
    let mut w = Vec::with_capacity(cfg.geo_chunks() as usize);
    for lon_c in 0..cfg.lon_chunks {
        let _ = lon_c;
        for lat_c in 0..cfg.lat_chunks {
            let mid_lat = lat_lo as f64 + (lat_c as f64 + 0.5) * cfg.deg_per_chunk as f64;
            // Map the scaled grid onto ±90° so the bump is gentle.
            let phi = mid_lat / (cfg.lat_extent() as f64 / 2.0) * std::f64::consts::FRAC_PI_2;
            w.push(1.0 + 0.25 * phi.cos());
        }
    }
    w
}

/// Distribute `total` cells over chunks proportionally to `weights`.
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| (w / sum * total as f64).floor() as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let n = counts.len();
    let mut i = 0usize;
    while assigned < total {
        counts[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// Generate one MODIS reflectance band.
///
/// All bands of the same `cfg` share a sensor footprint: cell
/// coordinates depend only on the config, while `band` seeds the values
/// and drops a ~1.5% random subset (the paper's mean band-to-band chunk
/// difference is ~1.5% of the mean chunk size).
pub fn modis_band(cfg: &GeoConfig, name: &str, band: u32) -> Array {
    let schema = cfg.schema(name, "reflectance:float");
    let mut coord_rng = Rng64::seed_from_u64(cfg.seed); // shared footprint
    let mut band_rng = Rng64::seed_from_u64(cfg.seed ^ (band as u64) << 32 | band as u64);
    let weights = modis_weights(cfg);
    let counts = apportion(cfg.cells, &weights);
    let mut array = Array::new(schema);
    let (lon_lo, _) = cfg.lon_range();
    let (lat_lo, _) = cfg.lat_range();
    let box_cells = (cfg.time_extent * cfg.deg_per_chunk * cfg.deg_per_chunk) as usize;
    for (geo_idx, &count) in counts.iter().enumerate() {
        let lon_c = geo_idx as u64 / cfg.lat_chunks;
        let lat_c = geo_idx as u64 % cfg.lat_chunks;
        let count = count.min(box_cells);
        for pos in distinct_positions(box_cells, count, &mut coord_rng) {
            // Keep each band's ~1.5% dropout independent.
            if band_rng.gen_f64() < 0.015 {
                continue;
            }
            let p = pos as u64;
            let t = (p / (cfg.deg_per_chunk * cfg.deg_per_chunk)) as i64 + 1;
            let rem = p % (cfg.deg_per_chunk * cfg.deg_per_chunk);
            let lon = lon_lo + (lon_c * cfg.deg_per_chunk + rem / cfg.deg_per_chunk) as i64;
            let lat = lat_lo + (lat_c * cfg.deg_per_chunk + rem % cfg.deg_per_chunk) as i64;
            let reflectance = band_rng.gen_range(0.0..1.0);
            array
                .insert(&[t, lon, lat], &[Value::Float(reflectance)])
                .expect("coordinates in range");
        }
    }
    array.sort_chunks();
    array
}

/// Configuration for the AIS ship-track generator.
#[derive(Debug, Clone)]
pub struct AisConfig {
    /// Shared geometry (should match the MODIS config it joins against).
    pub geo: GeoConfig,
    /// Fraction of geographic chunks that are "ports" (paper: ~5%).
    pub port_chunk_fraction: f64,
    /// Fraction of cells clustered at ports (paper: ~85%).
    pub port_mass: f64,
    /// Number of distinct vessels.
    pub ships: u64,
    /// Zipf exponent over port sizes (busier ports get more traffic;
    /// 0 = equal ports).
    pub port_zipf_alpha: f64,
}

impl AisConfig {
    /// Defaults matching the paper's reported distribution.
    pub fn new(geo: GeoConfig) -> Self {
        AisConfig {
            geo,
            port_chunk_fraction: 0.05,
            port_mass: 0.85,
            ships: 1_000,
            port_zipf_alpha: 1.0,
        }
    }
}

/// Generate AIS-like ship broadcasts: heavy hotspots at a few port
/// chunks, the remainder spread along shipping lanes.
pub fn ais_broadcasts(cfg: &AisConfig, name: &str) -> Array {
    let geo = &cfg.geo;
    let schema = geo.schema(name, "ship_id:int, speed:float");
    let mut rng = Rng64::seed_from_u64(geo.seed ^ 0xA15);
    let n_geo = geo.geo_chunks() as usize;
    let n_ports = ((n_geo as f64 * cfg.port_chunk_fraction).round() as usize).clamp(1, n_geo);
    // Pick port chunks.
    let mut ids: Vec<usize> = (0..n_geo).collect();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let ports: Vec<usize> = ids[..n_ports].to_vec();
    let others: Vec<usize> = ids[n_ports..].to_vec();

    // Mass split: port_mass over ports (Zipf-ish: busier ports exist),
    // remainder uniform over the rest.
    let port_cells = (cfg.geo.cells as f64 * cfg.port_mass) as usize;
    let rest_cells = cfg.geo.cells - port_cells;
    let port_weights: Vec<f64> = (0..n_ports)
        .map(|r| 1.0 / (r as f64 + 1.0).powf(cfg.port_zipf_alpha))
        .collect();
    let port_counts = apportion(port_cells, &port_weights);
    let rest_weights = vec![1.0; others.len().max(1)];
    let rest_counts = apportion(rest_cells, &rest_weights);

    let mut array = Array::new(schema);
    let box_cells = (geo.time_extent * geo.deg_per_chunk * geo.deg_per_chunk) as usize;
    let (lon_lo, _) = geo.lon_range();
    let (lat_lo, _) = geo.lat_range();
    let emit_chunk = |geo_idx: usize, count: usize, rng: &mut Rng64, array: &mut Array| {
        let lon_c = geo_idx as u64 / geo.lat_chunks;
        let lat_c = geo_idx as u64 % geo.lat_chunks;
        let count = count.min(box_cells);
        for pos in distinct_positions(box_cells, count, rng) {
            let p = pos as u64;
            let t = (p / (geo.deg_per_chunk * geo.deg_per_chunk)) as i64 + 1;
            let rem = p % (geo.deg_per_chunk * geo.deg_per_chunk);
            let lon = lon_lo + (lon_c * geo.deg_per_chunk + rem / geo.deg_per_chunk) as i64;
            let lat = lat_lo + (lat_c * geo.deg_per_chunk + rem % geo.deg_per_chunk) as i64;
            let ship = rng.gen_range(0..cfg.ships) as i64;
            let speed = rng.gen_range(0.0..30.0);
            array
                .insert(&[t, lon, lat], &[Value::Int(ship), Value::Float(speed)])
                .expect("coordinates in range");
        }
    };
    for (r, &geo_idx) in ports.iter().enumerate() {
        emit_chunk(geo_idx, port_counts[r], &mut rng, &mut array);
    }
    for (r, &geo_idx) in others.iter().enumerate() {
        emit_chunk(
            geo_idx,
            rest_counts.get(r).copied().unwrap_or(0),
            &mut rng,
            &mut array,
        );
    }
    array.sort_chunks();
    array
}

/// `count` distinct positions in `0..space` via a random full-cycle walk.
fn distinct_positions(space: usize, count: usize, rng: &mut Rng64) -> Vec<usize> {
    let count = count.min(space);
    if count == 0 {
        return Vec::new();
    }
    let stride = loop {
        let s = rng.gen_range(1..space.max(2));
        if gcd(s, space) == 1 {
            break s;
        }
    };
    let start = rng.gen_range(0..space);
    (0..count).map(|t| (start + t * stride) % space).collect()
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modis_band_is_near_uniform() {
        let cfg = GeoConfig::small(1);
        let band = modis_band(&cfg, "Band1", 1);
        band.validate().unwrap();
        // ~1.5% dropout from the nominal cell budget.
        let n = band.cell_count() as f64;
        assert!((n / cfg.cells as f64 - 0.985).abs() < 0.01);
        // Top 5% of chunks hold well under 20% of the data.
        let mut sizes: Vec<usize> = band.chunk_histogram().values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top = ((sizes.len() as f64 * 0.05).ceil() as usize).max(1);
        let top_mass: usize = sizes[..top].iter().sum();
        assert!(
            (top_mass as f64) < 0.2 * n,
            "MODIS too skewed: top 5% hold {top_mass} of {n}"
        );
    }

    #[test]
    fn two_bands_are_adversarially_aligned() {
        let cfg = GeoConfig::small(2);
        let b1 = modis_band(&cfg, "Band1", 1);
        let b2 = modis_band(&cfg, "Band2", 2);
        let h1 = b1.chunk_histogram();
        let h2 = b2.chunk_histogram();
        assert_eq!(h1.len(), h2.len());
        // Chunk-by-chunk sizes are within a few percent of each other.
        for (id, &c1) in &h1 {
            let c2 = h2[id];
            let diff = (c1 as f64 - c2 as f64).abs() / c1.max(c2) as f64;
            assert!(diff < 0.15, "chunk {id}: {c1} vs {c2}");
        }
        // Values differ between bands.
        assert_ne!(b1.to_batch(), b2.to_batch());
    }

    #[test]
    fn ais_concentrates_mass_in_ports() {
        let cfg = AisConfig::new(GeoConfig {
            cells: 50_000,
            ..GeoConfig::small(3)
        });
        let ais = ais_broadcasts(&cfg, "Broadcast");
        ais.validate().unwrap();
        assert_eq!(ais.cell_count(), 50_000);
        // Paper: ~85% of the data in ~5% of the chunks. Aggregate by
        // geographic chunk (the generator may split across time chunks,
        // but GeoConfig::small has a single time chunk).
        let mut sizes: Vec<usize> = ais.chunk_histogram().values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let hot = ((cfg.geo.geo_chunks() as f64 * 0.05).ceil() as usize).max(1);
        let hot_mass: usize = sizes.iter().take(hot).sum();
        let frac = hot_mass as f64 / ais.cell_count() as f64;
        assert!(
            frac > 0.75,
            "ports hold only {frac:.2} of the data (expected ≈0.85)"
        );
    }

    #[test]
    fn modis_and_ais_schemas_are_join_compatible() {
        let geo = GeoConfig::small(4);
        let band = modis_band(&geo, "Band1", 1);
        let ais = ais_broadcasts(&AisConfig::new(geo), "Broadcast");
        // Same lon/lat dimension definitions.
        assert_eq!(band.schema.dims[1], ais.schema.dims[1]);
        assert_eq!(band.schema.dims[2], ais.schema.dims[2]);
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = GeoConfig::small(9);
        assert_eq!(modis_band(&cfg, "B", 1), modis_band(&cfg, "B", 1));
        let a = AisConfig::new(cfg);
        assert_eq!(ais_broadcasts(&a, "X"), ais_broadcasts(&a, "X"));
    }

    #[test]
    fn distinct_positions_are_distinct() {
        let mut rng = Rng64::seed_from_u64(5);
        let pos = distinct_positions(100, 100, &mut rng);
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert!(distinct_positions(10, 0, &mut rng).is_empty());
        assert_eq!(distinct_positions(10, 50, &mut rng).len(), 10);
    }
}
