//! Zipfian sampling.
//!
//! The paper's synthetic experiments draw join-unit and slice sizes from
//! a Zipfian distribution whose skew is controlled by α: "higher α's
//! denote greater imbalance in the data sizes" (§6.2). α = 0 degenerates
//! to uniform.

use crate::rng::Rng64;

/// A Zipfian distribution over ranks `0..n` with exponent `alpha`.
///
/// `P(rank = r) ∝ 1 / (r + 1)^alpha`. Sampling is O(log n) via binary
/// search over the precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a distribution over `n` ranks with exponent `alpha ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid alpha {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u: f64 = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Split `total` items into per-rank counts proportional to the pmf,
    /// deterministically (largest-remainder rounding so the counts sum
    /// exactly to `total`).
    #[allow(clippy::needless_range_loop)]
    pub fn proportional_counts(&self, total: usize) -> Vec<usize> {
        let n = self.len();
        let mut counts = vec![0usize; n];
        let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut assigned = 0usize;
        for r in 0..n {
            let exact = self.pmf(r) * total as f64;
            let floor = exact.floor() as usize;
            counts[r] = floor;
            assigned += floor;
            remainders.push((exact - floor as f64, r));
        }
        remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        for &(_, r) in remainders.iter().take(total.saturating_sub(assigned)) {
            counts[r] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
        let counts = z.proportional_counts(1000);
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn higher_alpha_concentrates_mass() {
        let z1 = Zipf::new(100, 1.0);
        let z2 = Zipf::new(100, 2.0);
        assert!(z2.pmf(0) > z1.pmf(0));
        assert!(z1.pmf(0) > Zipf::new(100, 0.5).pmf(0));
        // α = 2 over 100 ranks puts the majority of mass on rank 0.
        assert!(z2.pmf(0) > 0.5);
    }

    #[test]
    fn proportional_counts_sum_exactly() {
        for alpha in [0.0, 0.5, 1.0, 1.5, 2.0] {
            for total in [1usize, 7, 1000, 12345] {
                let z = Zipf::new(64, alpha);
                let counts = z.proportional_counts(total);
                assert_eq!(
                    counts.iter().sum::<usize>(),
                    total,
                    "α={alpha} total={total}"
                );
            }
        }
    }

    #[test]
    fn sampling_tracks_pmf() {
        let z = Zipf::new(16, 1.0);
        let mut rng = Rng64::seed_from_u64(7);
        let mut hist = [0usize; 16];
        let trials = 200_000;
        for _ in 0..trials {
            hist[z.sample(&mut rng)] += 1;
        }
        for (r, &h) in hist.iter().enumerate() {
            let expected = z.pmf(r) * trials as f64;
            let got = h as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {r}: expected ≈{expected}, got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
