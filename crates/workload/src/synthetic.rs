//! Synthetic workloads matching the paper's evaluation (§6.1–6.2).

use sj_array::{Array, ArraySchema, Value};

use crate::rng::Rng64;
use crate::zipf::Zipf;

/// Configuration for a skewed 2-D array (the §6.2 physical-planning
/// workload: `A<v1:int, v2:int>[i, j]` on a `grid × grid` chunk grid).
#[derive(Debug, Clone)]
pub struct SkewedArrayConfig {
    /// Array name.
    pub name: String,
    /// Chunks per dimension (the paper uses 32 → 1024 join units).
    pub grid: u64,
    /// Cells per chunk per dimension.
    pub chunk_interval: u64,
    /// Total occupied cells.
    pub cells: usize,
    /// Zipf α over *chunk occupancy* — spatial (location) skew driving
    /// the merge-join experiments.
    pub spatial_alpha: f64,
    /// Zipf α over *attribute values* — value-frequency skew driving the
    /// hash-join experiments (bucket sizes follow value frequencies).
    pub value_alpha: f64,
    /// Domain size of the `v1`/`v2` attributes.
    pub value_domain: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SkewedArrayConfig {
    /// A small default suitable for tests.
    pub fn small(name: &str, seed: u64) -> Self {
        SkewedArrayConfig {
            name: name.to_string(),
            grid: 8,
            chunk_interval: 128,
            cells: 10_000,
            spatial_alpha: 0.0,
            value_alpha: 0.0,
            value_domain: 10_000,
            seed,
        }
    }

    /// The array schema implied by this configuration.
    pub fn schema(&self) -> ArraySchema {
        let extent = self.grid * self.chunk_interval;
        ArraySchema::parse(&format!(
            "{}<v1:int, v2:int>[i=1,{extent},{ci}, j=1,{extent},{ci}]",
            self.name,
            ci = self.chunk_interval
        ))
        .expect("generated schema literal is valid")
    }
}

/// Generate one skewed 2-D array.
///
/// Chunk occupancies follow `Zipf(spatial_alpha)` over the chunk grid
/// (with the rank→chunk mapping shuffled so hotspots land at random grid
/// positions); cell coordinates within a chunk are distinct; attribute
/// values follow `Zipf(value_alpha)` over `value_domain` (with shuffled
/// value mapping).
pub fn skewed_array(cfg: &SkewedArrayConfig) -> Array {
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let n_chunks = (cfg.grid * cfg.grid) as usize;
    let spatial = Zipf::new(n_chunks, cfg.spatial_alpha);
    let mut counts = spatial.proportional_counts(cfg.cells);
    // Shuffle rank→chunk so the heavy chunks are scattered.
    shuffle(&mut counts, &mut rng);

    let per_chunk_capacity = (cfg.chunk_interval * cfg.chunk_interval) as usize;
    let values = Zipf::new(cfg.value_domain as usize, cfg.value_alpha);
    // Permute value ranks so the hot values are arbitrary.
    let value_perm = permutation(cfg.value_domain as usize, &mut rng);

    let mut array = Array::new(cfg.schema());
    for (chunk_idx, &count) in counts.iter().enumerate() {
        let count = count.min(per_chunk_capacity);
        let (ci, cj) = (chunk_idx as u64 / cfg.grid, chunk_idx as u64 % cfg.grid);
        let base_i = 1 + (ci * cfg.chunk_interval) as i64;
        let base_j = 1 + (cj * cfg.chunk_interval) as i64;
        // Distinct in-chunk positions via a full-cycle linear walk.
        let stride = coprime_stride(per_chunk_capacity, &mut rng);
        let start = rng.gen_range(0..per_chunk_capacity);
        for t in 0..count {
            let pos = (start + t * stride) % per_chunk_capacity;
            let (di, dj) = (
                (pos as u64 / cfg.chunk_interval) as i64,
                (pos as u64 % cfg.chunk_interval) as i64,
            );
            let v1 = value_perm[values.sample(&mut rng)] as i64;
            let v2 = value_perm[values.sample(&mut rng)] as i64;
            array
                .insert(
                    &[base_i + di, base_j + dj],
                    &[Value::Int(v1), Value::Int(v2)],
                )
                .expect("generated coordinates are in range");
        }
    }
    array.sort_chunks();
    array
}

/// Generate the §6.2 pair: two skewed arrays with the same schema shape
/// (names `A` and `B`) and independent randomness.
pub fn skewed_pair(cfg: &SkewedArrayConfig) -> (Array, Array) {
    let a = skewed_array(&SkewedArrayConfig {
        name: "A".into(),
        ..cfg.clone()
    });
    let b = skewed_array(&SkewedArrayConfig {
        name: "B".into(),
        seed: cfg.seed.wrapping_add(0x9E3779B9),
        ..cfg.clone()
    });
    (a, b)
}

/// The §6.1 logical-planning workload: two 1-D arrays
/// `A<v:int>[i=1,n,chunk]` and `B<w:int>[j=1,n,chunk]` whose A:A join on
/// `v = w` yields approximately `selectivity · 2n` output cells.
///
/// Values are drawn uniformly from a domain sized `n / (2·selectivity)`,
/// so the expected match count `n²/D = 2n·selectivity`.
pub fn selectivity_pair(
    n: u64,
    chunk_interval: u64,
    selectivity: f64,
    seed: u64,
) -> (Array, Array) {
    assert!(selectivity > 0.0);
    let domain = ((n as f64 / (2.0 * selectivity)).round() as u64).max(1);
    let mut rng = Rng64::seed_from_u64(seed);
    let schema_a = ArraySchema::parse(&format!("A<v:int>[i=1,{n},{chunk_interval}]")).unwrap();
    let schema_b = ArraySchema::parse(&format!("B<w:int>[j=1,{n},{chunk_interval}]")).unwrap();
    let mut a = Array::new(schema_a);
    let mut b = Array::new(schema_b);
    for i in 1..=n as i64 {
        let v = rng.gen_range(0..domain) as i64;
        a.insert(&[i], &[Value::Int(v)]).unwrap();
        let w = rng.gen_range(0..domain) as i64;
        b.insert(&[i], &[Value::Int(w)]).unwrap();
    }
    a.sort_chunks();
    b.sort_chunks();
    (a, b)
}

/// The destination schema the paper declares for the §6.1 query:
/// `SELECT * INTO C<i:int, j:int>[v] FROM A, B WHERE A.v = B.w` — the
/// predicate attribute becomes the output's dimension.
pub fn selectivity_output_schema(n: u64, _chunk_interval: u64, selectivity: f64) -> ArraySchema {
    let domain = ((n as f64 / (2.0 * selectivity)).round() as u64).max(1);
    ArraySchema::parse(&format!(
        "C<i:int, j:int>[v=0,{},{}]",
        domain.max(2) - 1,
        (domain.div_ceil(16)).max(1)
    ))
    .unwrap()
}

fn shuffle<T>(items: &mut [T], rng: &mut Rng64) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

fn permutation(n: usize, rng: &mut Rng64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    shuffle(&mut p, rng);
    p
}

/// A stride coprime with `modulus`, for full-cycle in-chunk walks.
fn coprime_stride(modulus: usize, rng: &mut Rng64) -> usize {
    if modulus <= 2 {
        return 1;
    }
    loop {
        let s = rng.gen_range(1..modulus);
        if gcd(s, modulus) == 1 {
            return s;
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_array_has_exact_cell_count_when_uniform() {
        let cfg = SkewedArrayConfig::small("A", 42);
        let a = skewed_array(&cfg);
        assert_eq!(a.cell_count(), cfg.cells);
        a.validate().unwrap();
    }

    #[test]
    fn alpha_controls_chunk_skew() {
        let mut cfg = SkewedArrayConfig::small("A", 7);
        cfg.spatial_alpha = 0.0;
        let uniform = skewed_array(&cfg);
        cfg.spatial_alpha = 2.0;
        let skewed = skewed_array(&cfg);
        let max_u = uniform.chunk_histogram().values().copied().max().unwrap();
        let max_s = skewed.chunk_histogram().values().copied().max().unwrap();
        assert!(
            max_s > 3 * max_u,
            "α=2 max chunk {max_s} vs uniform {max_u}"
        );
        skewed.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SkewedArrayConfig::small("A", 99);
        assert_eq!(skewed_array(&cfg), skewed_array(&cfg));
    }

    #[test]
    fn pair_members_differ() {
        let cfg = SkewedArrayConfig::small("X", 3);
        let (a, b) = skewed_pair(&cfg);
        assert_eq!(a.schema.name, "A");
        assert_eq!(b.schema.name, "B");
        assert_ne!(a.to_batch(), b.to_batch());
    }

    #[test]
    fn selectivity_pair_hits_target_output() {
        for sel in [0.1, 1.0, 10.0] {
            let n = 20_000u64;
            let (a, b) = selectivity_pair(n, 1_000, sel, 5);
            assert_eq!(a.cell_count() as u64, n);
            // Count true matches via a value-frequency product.
            let mut freq_a = std::collections::HashMap::new();
            for (_, vals) in a.iter_cells() {
                *freq_a.entry(vals[0].as_int().unwrap()).or_insert(0u64) += 1;
            }
            let mut matches = 0u64;
            for (_, vals) in b.iter_cells() {
                matches += freq_a.get(&vals[0].as_int().unwrap()).copied().unwrap_or(0);
            }
            let target = (sel * 2.0 * n as f64) as u64;
            let ratio = matches as f64 / target as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "sel {sel}: got {matches} matches, target {target}"
            );
        }
    }

    #[test]
    fn value_alpha_skews_value_frequencies() {
        let mut cfg = SkewedArrayConfig::small("A", 11);
        cfg.value_domain = 1000;
        cfg.value_alpha = 1.5;
        let a = skewed_array(&cfg);
        let mut freq = std::collections::HashMap::new();
        for (_, vals) in a.iter_cells() {
            *freq.entry(vals[0].as_int().unwrap()).or_insert(0u64) += 1;
        }
        let max = freq.values().copied().max().unwrap();
        // With α=1.5 the hottest value takes a large share.
        assert!(
            max as f64 > 0.2 * cfg.cells as f64,
            "hot value only {max} of {}",
            cfg.cells
        );
    }

    #[test]
    fn output_schema_for_selectivity_query_is_valid() {
        let s = selectivity_output_schema(10_000, 500, 0.1);
        assert_eq!(s.dims[0].name, "v");
        assert_eq!(s.nattrs(), 2);
    }
}
