//! Vendored pseudo-random number generator.
//!
//! The workload generators need reproducible, seedable randomness, but
//! this workspace builds with no external dependencies (the crates-io
//! registry is unreachable in the target environment). This module
//! vendors the standard SplitMix64 + xoshiro256++ combination:
//! a 64-bit seed is expanded into 256 bits of state with SplitMix64
//! (the seeding scheme `rand`'s `SeedableRng::seed_from_u64` uses), and
//! xoshiro256++ generates the stream. Both algorithms are public-domain
//! (Blackman & Vigna, <https://prng.di.unimi.it/>).
//!
//! Seeding behavior matches the previous `StdRng::seed_from_u64` usage:
//! one `u64` fully determines the stream, and every generator in this
//! crate remains deterministic per seed (the exact streams differ from
//! the old `rand`-based ones, which no test or caller depended on).

use std::ops::{Range, RangeInclusive};

/// SplitMix64: expands a 64-bit seed into a sequence of well-mixed
/// 64-bit values. Used only for state initialization.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A SplitMix64 stream starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ seeded via SplitMix64 — the crate's workhorse RNG.
///
/// Small (32 bytes of state), fast, and statistically strong for
/// simulation workloads; not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Deterministically seed the full 256-bit state from one `u64`,
    /// mirroring `SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng64 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `range` (empty ranges panic, like `rand`).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform `u64` below `bound` (> 0), bias-free via rejection on
    /// the widening-multiply method (Lemire 2019).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound && low < bound.wrapping_neg() {
                // Fast accept once the low half can no longer bias.
                return (m >> 64) as u64;
            }
            // Exact threshold check for the rare boundary region.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Ranges the generator can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut Rng64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u64, i64, usize, u32, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) ≈ 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng64::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 drawn");
        for _ in 0..1_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
        // Single-point inclusive range.
        assert_eq!(rng.gen_range(3u64..=3), 3);
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut rng = Rng64::seed_from_u64(13);
        for _ in 0..1_000 {
            let x = rng.gen_range(2.5..30.0);
            assert!((2.5..30.0).contains(&x));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng64::seed_from_u64(17);
        let mut hist = [0usize; 7];
        let trials = 70_000;
        for _ in 0..trials {
            hist[rng.below(7) as usize] += 1;
        }
        for &h in &hist {
            let expected = trials as f64 / 7.0;
            assert!(
                (h as f64 - expected).abs() < 5.0 * expected.sqrt(),
                "bucket count {h} far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(1).gen_range(5u64..5);
    }
}
