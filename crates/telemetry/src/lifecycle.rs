//! Query-lifecycle primitives: cooperative cancellation, deadlines, and
//! the virtual clock that makes deadline tests deterministic.
//!
//! A [`QueryContext`] travels with one query through every execution
//! layer — the batch pipeline, the worker pool, and the shuffle
//! simulation — and is *polled* at safe points (batch boundaries,
//! between work units, per simulated transfer). Nothing is preempted:
//! when `check()` reports an [`Interrupt`], the layer that observed it
//! unwinds through its normal `Result` path, so no locks are poisoned
//! and no partially-written output escapes.
//!
//! Deadlines can run off the real monotonic clock or off a
//! [`VirtualClock`] that execution layers advance explicitly (the
//! shuffle simulation advances it by simulated seconds per event).
//! Virtual time makes "the deadline fires mid-shuffle at event N"
//! reproducible bit-for-bit at any worker-thread count.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a query was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The user (or a test harness) cancelled the query explicitly.
    Cancelled,
    /// The query's deadline elapsed before it finished.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "query cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

/// Shared state behind a [`CancelHandle`].
#[derive(Debug)]
struct CancelState {
    cancelled: AtomicBool,
    /// Cancel-after fuse: when >= 0, each lifecycle check decrements it
    /// and the check that drives it below zero trips the cancel flag.
    /// Negative means "no fuse armed". Used by tests to inject a cancel
    /// at an arbitrary cooperative checkpoint.
    fuse: AtomicI64,
}

/// A cloneable cancellation token for one query.
///
/// Cheap to clone (an `Arc` bump); every clone observes the same flag.
/// Cancellation is cooperative: setting the flag does nothing until an
/// execution layer polls [`QueryContext::check`] at its next safe point.
#[derive(Debug, Clone)]
pub struct CancelHandle {
    inner: Arc<CancelState>,
}

impl Default for CancelHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelHandle {
    /// A fresh, un-cancelled handle.
    pub fn new() -> Self {
        CancelHandle {
            inner: Arc::new(CancelState {
                cancelled: AtomicBool::new(false),
                fuse: AtomicI64::new(-1),
            }),
        }
    }

    /// Request cancellation. Idempotent; takes effect at the query's
    /// next cooperative checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Arm a fuse that trips the cancel flag on the `n`-th subsequent
    /// lifecycle check (0 trips on the very next check). Test harnesses
    /// use this to land a cancellation at an arbitrary cooperative
    /// checkpoint deep inside the pipeline or shuffle.
    pub fn cancel_after(&self, n: u64) {
        self.inner.fuse.store(n as i64, Ordering::SeqCst);
    }

    /// True once [`cancel`](Self::cancel) was called or an armed fuse
    /// tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Clear the cancel flag and disarm any fuse so the same session
    /// can run a follow-up query.
    pub fn reset(&self) {
        self.inner.cancelled.store(false, Ordering::SeqCst);
        self.inner.fuse.store(-1, Ordering::SeqCst);
    }

    /// One checkpoint's worth of fuse bookkeeping: burn one unit off an
    /// armed fuse and trip the flag when it runs out.
    fn burn_fuse(&self) {
        if self.inner.fuse.load(Ordering::SeqCst) < 0 {
            return;
        }
        if self.inner.fuse.fetch_sub(1, Ordering::SeqCst) == 0 {
            self.inner.cancelled.store(true, Ordering::SeqCst);
        }
    }
}

/// A monotonically advancing clock driven explicitly by the execution
/// layers, for deterministic deadline tests.
///
/// Time is an `f64` second count stored as its bit pattern in an atomic
/// word and advanced with a CAS loop, so deltas accumulate with full
/// float precision (no per-delta truncation) and concurrent advancers
/// never lose an update.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    bits: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `seconds` (negative or non-finite deltas
    /// are ignored).
    pub fn advance_seconds(&self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            let _ = self
                .bits
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                    Some((f64::from_bits(cur) + seconds).to_bits())
                });
        }
    }

    /// Current virtual time in seconds since the clock's origin.
    pub fn now_seconds(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

/// Where a [`QueryContext`] reads "now" from when checking deadlines.
#[derive(Debug, Clone, Default)]
pub enum ClockSource {
    /// The process monotonic clock ([`Instant`]); production default.
    #[default]
    Real,
    /// An explicitly advanced [`VirtualClock`]; deterministic tests.
    Virtual(VirtualClock),
}

/// The lifecycle context carried by one running query.
///
/// Cheap to clone; all clones share the same cancellation flag and
/// clock. `check()` is the single cooperative checkpoint primitive:
/// cancellation wins over deadline expiry when both hold, so an
/// explicit cancel always reports as [`Interrupt::Cancelled`].
#[derive(Debug, Clone)]
pub struct QueryContext {
    cancel: CancelHandle,
    /// Deadline in seconds from the context's start instant; `None`
    /// means unbounded.
    deadline_seconds: Option<f64>,
    clock: ClockSource,
    started: Instant,
}

impl Default for QueryContext {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl QueryContext {
    /// A context with no deadline and a fresh cancel handle.
    pub fn unbounded() -> Self {
        QueryContext {
            cancel: CancelHandle::new(),
            deadline_seconds: None,
            clock: ClockSource::Real,
            started: Instant::now(),
        }
    }

    /// A context with an explicit cancel handle, optional deadline (in
    /// seconds from now), and clock source.
    pub fn new(cancel: CancelHandle, deadline_seconds: Option<f64>, clock: ClockSource) -> Self {
        QueryContext {
            cancel,
            deadline_seconds,
            clock,
            started: Instant::now(),
        }
    }

    /// The cancellation handle shared by this context's clones.
    pub fn cancel_handle(&self) -> &CancelHandle {
        &self.cancel
    }

    /// A view of this context with the deadline stripped: same cancel
    /// flag, same clock, same start instant. Degradation policies use it
    /// to run a phase they have committed to finishing under
    /// cancellation-only enforcement, while the original context still
    /// reports [`deadline_exceeded`](Self::deadline_exceeded) truthfully
    /// for flagging.
    pub fn without_deadline(&self) -> QueryContext {
        QueryContext {
            cancel: self.cancel.clone(),
            deadline_seconds: None,
            clock: self.clock.clone(),
            started: self.started,
        }
    }

    /// The configured deadline in seconds, if any.
    pub fn deadline_seconds(&self) -> Option<f64> {
        self.deadline_seconds
    }

    /// Seconds elapsed on this context's clock source.
    pub fn elapsed_seconds(&self) -> f64 {
        match &self.clock {
            ClockSource::Real => self.started.elapsed().as_secs_f64(),
            ClockSource::Virtual(v) => v.now_seconds(),
        }
    }

    /// Advance the context's virtual clock by `seconds` of simulated
    /// time. A no-op under the real clock — the shuffle simulation
    /// calls this unconditionally per event.
    pub fn advance_virtual(&self, seconds: f64) {
        if let ClockSource::Virtual(v) = &self.clock {
            v.advance_seconds(seconds);
        }
    }

    /// True once the deadline (if any) has elapsed. Does not burn the
    /// cancel fuse; policy layers use this to flag degraded completion
    /// without consuming a checkpoint.
    pub fn deadline_exceeded(&self) -> bool {
        match self.deadline_seconds {
            Some(d) => self.elapsed_seconds() >= d,
            None => false,
        }
    }

    /// The cooperative checkpoint: returns `Err(Interrupt)` when the
    /// query should stop. Explicit cancellation wins over deadline
    /// expiry so callers get the cause they asked for.
    pub fn check(&self) -> Result<(), Interrupt> {
        self.cancel.burn_fuse();
        if self.cancel.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if self.deadline_exceeded() {
            return Err(Interrupt::DeadlineExceeded);
        }
        Ok(())
    }

    /// `check()` restricted to explicit cancellation — used by phases
    /// running under `OnDeadline::FinishCurrentUnit`, which ignore the
    /// deadline once committed to finishing the unit in progress.
    pub fn check_cancel_only(&self) -> Result<(), Interrupt> {
        self.cancel.burn_fuse();
        if self.cancel.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_context_never_interrupts() {
        let ctx = QueryContext::unbounded();
        for _ in 0..100 {
            assert_eq!(ctx.check(), Ok(()));
        }
    }

    #[test]
    fn explicit_cancel_trips_next_check() {
        let ctx = QueryContext::unbounded();
        assert_eq!(ctx.check(), Ok(()));
        ctx.cancel_handle().cancel();
        assert_eq!(ctx.check(), Err(Interrupt::Cancelled));
        // Idempotent until reset.
        assert_eq!(ctx.check(), Err(Interrupt::Cancelled));
        ctx.cancel_handle().reset();
        assert_eq!(ctx.check(), Ok(()));
    }

    #[test]
    fn cancel_after_fuse_trips_on_nth_check() {
        let ctx = QueryContext::unbounded();
        ctx.cancel_handle().cancel_after(2);
        assert_eq!(ctx.check(), Ok(())); // burns 2 -> 1
        assert_eq!(ctx.check(), Ok(())); // burns 1 -> 0
        assert_eq!(ctx.check(), Err(Interrupt::Cancelled)); // 0 trips
    }

    #[test]
    fn cancel_after_zero_trips_immediately() {
        let ctx = QueryContext::unbounded();
        ctx.cancel_handle().cancel_after(0);
        assert_eq!(ctx.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn virtual_deadline_fires_exactly_when_advanced_past() {
        let clock = VirtualClock::new();
        let ctx = QueryContext::new(
            CancelHandle::new(),
            Some(1.0),
            ClockSource::Virtual(clock.clone()),
        );
        assert_eq!(ctx.check(), Ok(()));
        clock.advance_seconds(0.5);
        assert_eq!(ctx.check(), Ok(()));
        clock.advance_seconds(0.6);
        assert_eq!(ctx.check(), Err(Interrupt::DeadlineExceeded));
        // Cancel-only checks ignore the deadline.
        assert_eq!(ctx.check_cancel_only(), Ok(()));
    }

    #[test]
    fn cancel_wins_over_expired_deadline() {
        let clock = VirtualClock::new();
        let ctx = QueryContext::new(
            CancelHandle::new(),
            Some(1.0),
            ClockSource::Virtual(clock.clone()),
        );
        clock.advance_seconds(2.0);
        ctx.cancel_handle().cancel();
        assert_eq!(ctx.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn clones_share_cancellation_and_clock() {
        let clock = VirtualClock::new();
        let ctx = QueryContext::new(
            CancelHandle::new(),
            Some(1.0),
            ClockSource::Virtual(clock.clone()),
        );
        let other = ctx.clone();
        other.advance_virtual(2.0);
        assert!(ctx.deadline_exceeded());
        ctx.cancel_handle().cancel();
        assert_eq!(other.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn real_clock_deadline_is_checked_against_elapsed() {
        let ctx = QueryContext::new(CancelHandle::new(), Some(3600.0), ClockSource::Real);
        assert_eq!(ctx.check(), Ok(()));
        // advance_virtual is a no-op under the real clock.
        ctx.advance_virtual(1e9);
        assert_eq!(ctx.check(), Ok(()));
    }
}
