//! # sj-telemetry: query-scoped tracing for the skewjoin engine
//!
//! A std-only, zero-dependency observability layer. One [`Tracer`] lives
//! for the duration of one query; code under execution opens nested
//! [`SpanGuard`]s (monotonic timing, parent/child structure, typed
//! key→value fields) and bumps [`Counter`]s (atomic adds). When the query
//! finishes, [`Tracer::finish`] folds the flat span arena into a
//! [`Telemetry`] report — an in-memory tree plus aggregated counters —
//! which the engine exposes as the single source of truth for *all*
//! metrics. The legacy report structs (`JoinMetrics`, `ExecProfile`,
//! `ShuffleReport`, `PipelineStats`) are views computed from this tree.
//!
//! ## Disabled path
//!
//! `Tracer::new(&TelemetryConfig::Off)` produces a disabled handle: every
//! span operation is a branch on an `Option` that is `None` — no clock
//! reads, no locks, no allocation. The `join_kernels` bench pins that a
//! disabled span open/close costs < 2% of one hash-join probe batch.
//!
//! ## Determinism
//!
//! Spans are only ever recorded from the coordinator thread, in program
//! order; per-worker measurements are carried as *fields* (not as
//! per-worker spans), so the span tree's structure is identical at any
//! `ExecConfig.threads` and with fault injection disabled. Timings vary
//! run to run; structure and field keys do not —
//! [`Telemetry::structure_signature`] and [`Telemetry::schema_signature`]
//! exist so tests can pin exactly that.

#![warn(missing_docs)]

pub mod lifecycle;

pub use lifecycle::{CancelHandle, ClockSource, Interrupt, QueryContext, VirtualClock};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How a query's telemetry is collected and delivered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TelemetryConfig {
    /// Collect nothing. Span and counter operations compile down to a
    /// `None` check — the executor's hot loops pay no clock reads.
    Off,
    /// Collect the in-memory span tree and counters (the default): the
    /// metrics views (`JoinMetrics`, `PipelineStats`, …) need it.
    #[default]
    Tree,
    /// Collect the tree *and* write a JSON-lines export to `path` when
    /// the query finishes (the bench harness / profiling sink).
    Json {
        /// Destination file for the JSON-lines export.
        path: String,
    },
}

impl TelemetryConfig {
    /// True when spans and counters are collected at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, TelemetryConfig::Off)
    }
}

/// A typed span field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, bytes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (seconds, costs). Stored exactly — views that
    /// reconstruct legacy reports from fields are bit-identical.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (names, tokens, encoded lists).
    Str(String),
}

impl FieldValue {
    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }
    /// The value as `f64`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            _ => None,
        }
    }
    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One recorded span in the flat arena.
#[derive(Debug, Clone)]
struct SpanRec {
    name: &'static str,
    parent: Option<usize>,
    start_ns: u64,
    duration_ns: Option<u64>,
    fields: Vec<(&'static str, FieldValue)>,
}

struct Inner {
    origin: Instant,
    spans: Mutex<Vec<SpanRec>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
}

impl Inner {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A cheap-clone handle to one query's telemetry collection. Disabled
/// handles (from [`TelemetryConfig::Off`]) carry no allocation and make
/// every operation a no-op.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A tracer for `config` (disabled for [`TelemetryConfig::Off`]).
    pub fn new(config: &TelemetryConfig) -> Tracer {
        if config.enabled() {
            Tracer {
                inner: Some(Arc::new(Inner {
                    origin: Instant::now(),
                    spans: Mutex::new(Vec::new()),
                    counters: Mutex::new(BTreeMap::new()),
                })),
            }
        } else {
            Tracer::disabled()
        }
    }

    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a root span (no parent).
    pub fn root(&self, name: &'static str) -> SpanGuard {
        self.open(name, None)
    }

    fn open(&self, name: &'static str, parent: Option<usize>) -> SpanGuard {
        let idx = match &self.inner {
            None => usize::MAX,
            Some(inner) => {
                let start_ns = inner.now_ns();
                let mut spans = inner.spans.lock().expect("span arena poisoned");
                spans.push(SpanRec {
                    name,
                    parent,
                    start_ns,
                    duration_ns: None,
                    fields: Vec::new(),
                });
                spans.len() - 1
            }
        };
        SpanGuard {
            tracer: self.clone(),
            idx,
        }
    }

    /// A handle to the named counter, creating it at zero on first use.
    /// The handle's `add` is a single atomic op — acquire once, bump from
    /// hot loops. Disabled tracers return a no-op handle.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            None => Counter { cell: None },
            Some(inner) => {
                let mut counters = inner.counters.lock().expect("counter registry poisoned");
                let cell = counters.entry(name).or_default();
                Counter {
                    cell: Some(Arc::clone(cell)),
                }
            }
        }
    }

    /// Snapshot everything recorded so far into a [`Telemetry`] report.
    /// Spans still open are given their duration as of this call.
    pub fn finish(&self) -> Telemetry {
        let Some(inner) = &self.inner else {
            return Telemetry::disabled();
        };
        let now = inner.now_ns();
        let spans = inner.spans.lock().expect("span arena poisoned").clone();
        let counters: BTreeMap<&'static str, u64> = inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
            .collect();

        // Fold the flat arena into a tree. Children attach in record
        // order, which is program order on the coordinator thread.
        let mut nodes: Vec<Option<SpanNode>> = spans
            .iter()
            .map(|rec| {
                Some(SpanNode {
                    name: rec.name,
                    start_ns: rec.start_ns,
                    duration_ns: rec.duration_ns.unwrap_or_else(|| now - rec.start_ns),
                    fields: rec.fields.clone(),
                    children: Vec::new(),
                })
            })
            .collect();
        let mut roots = Vec::new();
        for idx in (0..spans.len()).rev() {
            let node = nodes[idx].take().expect("span folded twice");
            match spans[idx].parent {
                Some(p) => nodes[p]
                    .as_mut()
                    .expect("parent folded before child")
                    .children
                    .insert(0, node),
                None => roots.insert(0, node),
            }
        }
        Telemetry {
            enabled: true,
            roots,
            counters,
        }
    }
}

/// A registered counter: one atomic cell, or a no-op when telemetry is
/// disabled.
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Gauge semantics: overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }
}

/// An open span. Duration is captured when the guard drops (or at
/// [`Tracer::finish`] for spans still open). All methods are no-ops on a
/// disabled tracer — including the clock read.
pub struct SpanGuard {
    tracer: Tracer,
    idx: usize,
}

impl SpanGuard {
    /// Open a child span under this one.
    pub fn child(&self, name: &'static str) -> SpanGuard {
        let parent = if self.tracer.enabled() {
            Some(self.idx)
        } else {
            None
        };
        self.tracer.open(name, parent)
    }

    /// Attach a typed field. Later writes append; readers see the first
    /// value per key.
    pub fn field(&self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(inner) = &self.tracer.inner {
            let mut spans = inner.spans.lock().expect("span arena poisoned");
            spans[self.idx].fields.push((key, value.into()));
        }
    }

    /// Whether this span records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The tracer this span records into (for counters / nested calls).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Override the duration this span will report, in seconds. Used for
    /// attribution spans that carry *measured* time (per-node compute,
    /// simulated makespan) rather than their own open/close interval.
    pub fn set_duration_seconds(&self, seconds: f64) {
        if let Some(inner) = &self.tracer.inner {
            let ns = (seconds.max(0.0) * 1e9) as u64;
            let mut spans = inner.spans.lock().expect("span arena poisoned");
            spans[self.idx].duration_ns = Some(ns);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.tracer.inner {
            let now = inner.now_ns();
            let mut spans = inner.spans.lock().expect("span arena poisoned");
            let rec = &mut spans[self.idx];
            if rec.duration_ns.is_none() {
                rec.duration_ns = Some(now.saturating_sub(rec.start_ns));
            }
        }
    }
}

/// One node of the finished span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name (a fixed, documented taxonomy — see DESIGN.md §11).
    pub name: &'static str,
    /// Nanoseconds from tracer creation to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds (possibly overridden for
    /// attribution spans).
    pub duration_ns: u64,
    /// Typed key→value fields, in record order.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_ns as f64 / 1e9
    }

    /// First field with `key`.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// First `u64` field with `key`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(FieldValue::as_u64)
    }
    /// First `f64` field with `key`.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(FieldValue::as_f64)
    }
    /// First `bool` field with `key`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.field(key).and_then(FieldValue::as_bool)
    }
    /// First string field with `key`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(FieldValue::as_str)
    }

    /// First direct child named `name`.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All direct children named `name`, in order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Depth-first search for the first descendant (or self) named
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Fraction of this span's wall time attributed to its direct
    /// children: `Σ child durations / own duration` (capped at 1.0; 1.0
    /// when this span has no duration).
    pub fn child_coverage(&self) -> f64 {
        if self.duration_ns == 0 {
            return 1.0;
        }
        let covered: u64 = self.children.iter().map(|c| c.duration_ns).sum();
        (covered as f64 / self.duration_ns as f64).min(1.0)
    }
}

/// The finished report for one query: the span tree plus aggregated
/// counters. This is the *single* metrics type the engine exposes; the
/// legacy reports are views computed from it.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// False when collection was off ([`TelemetryConfig::Off`]): the
    /// tree is empty and every view returns its default/`None`.
    pub enabled: bool,
    /// Root spans, in open order (queries record exactly one).
    pub roots: Vec<SpanNode>,
    /// Final counter values, keyed by registered name.
    pub counters: BTreeMap<&'static str, u64>,
}

impl Telemetry {
    /// The report of a disabled tracer.
    pub fn disabled() -> Telemetry {
        Telemetry {
            enabled: false,
            roots: Vec::new(),
            counters: BTreeMap::new(),
        }
    }

    /// The first root span, if any.
    pub fn root(&self) -> Option<&SpanNode> {
        self.roots.first()
    }

    /// Depth-first search across all roots for the first span named
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// A counter's final value (0 when never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The span tree's structure — names, nesting, and sorted field
    /// keys, *without* timings or values. Identical across thread counts
    /// and fault-free reruns; the determinism suite pins this.
    pub fn structure_signature(&self) -> String {
        let mut out = String::new();
        fn walk(node: &SpanNode, path: &str, out: &mut String) {
            let path = if path.is_empty() {
                node.name.to_string()
            } else {
                format!("{path}/{}", node.name)
            };
            let mut keys: Vec<&str> = node.fields.iter().map(|(k, _)| *k).collect();
            keys.sort_unstable();
            keys.dedup();
            let _ = writeln!(out, "{path} [{}]", keys.join(","));
            for c in &node.children {
                walk(c, &path, out);
            }
        }
        for r in &self.roots {
            walk(r, "", &mut out);
        }
        for name in self.counters.keys() {
            let _ = writeln!(out, "counter {name}");
        }
        out
    }

    /// The deduplicated schema of the tree — each distinct span path once
    /// with the union of its field keys — for golden-file pinning of the
    /// exported JSON schema.
    pub fn schema_signature(&self) -> String {
        let mut acc: BTreeMap<String, Vec<&str>> = BTreeMap::new();
        fn walk<'a>(node: &'a SpanNode, path: &str, acc: &mut BTreeMap<String, Vec<&'a str>>) {
            let path = if path.is_empty() {
                node.name.to_string()
            } else {
                format!("{path}/{}", node.name)
            };
            let keys = acc.entry(path.clone()).or_default();
            for (k, _) in &node.fields {
                if !keys.contains(k) {
                    keys.push(k);
                }
            }
            for c in &node.children {
                walk(c, &path, acc);
            }
        }
        for r in &self.roots {
            walk(r, "", &mut acc);
        }
        let mut out = String::new();
        for (path, mut keys) in acc {
            keys.sort_unstable();
            let _ = writeln!(out, "{path}: [{}]", keys.join(","));
        }
        for name in self.counters.keys() {
            let _ = writeln!(out, "counter: {name}");
        }
        out
    }

    /// Render the report as JSON lines: one object per span (depth-first,
    /// with its path), then one `{"counters": …}` object. The schema —
    /// span names and field keys — is pinned by a golden test.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        fn walk(node: &SpanNode, path: &str, depth: usize, out: &mut String) {
            let path = if path.is_empty() {
                node.name.to_string()
            } else {
                format!("{path}/{}", node.name)
            };
            let _ = write!(
                out,
                "{{\"span\":{},\"path\":{},\"depth\":{},\"start_ns\":{},\"duration_ns\":{},\"fields\":{{",
                json_str(node.name),
                json_str(&path),
                depth,
                node.start_ns,
                node.duration_ns
            );
            for (i, (k, v)) in node.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_value(v));
            }
            out.push_str("}}\n");
            for c in &node.children {
                walk(c, &path, depth + 1, out);
            }
        }
        for r in &self.roots {
            walk(r, "", 0, &mut out);
        }
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(k), v);
        }
        out.push_str("}}\n");
        out
    }

    /// Deliver the report to `config`'s sink: writes the JSON-lines
    /// export for [`TelemetryConfig::Json`], otherwise does nothing.
    pub fn export(&self, config: &TelemetryConfig) -> std::io::Result<()> {
        if let TelemetryConfig::Json { path } = config {
            std::fs::write(path, self.to_json_lines())?;
        }
        Ok(())
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) if x.is_finite() => format!("{x:?}"),
        FieldValue::F64(_) => "null".to_string(),
        FieldValue::Bool(x) => x.to_string(),
        FieldValue::Str(x) => json_str(x),
    }
}

/// Encode a slice of `f64`s as one comma-joined string field value that
/// round-trips exactly (Rust's shortest-repr float formatting). Used for
/// per-worker busy times, which must not become per-worker *spans* (that
/// would make the tree's structure depend on the thread count).
pub fn encode_f64s(values: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v:?}");
    }
    out
}

/// Decode [`encode_f64s`] output.
pub fn decode_f64s(s: &str) -> Vec<f64> {
    if s.is_empty() {
        return Vec::new();
    }
    s.split(',').filter_map(|p| p.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_time() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        {
            let root = tracer.root("query");
            root.field("surface", "aql");
            {
                let child = root.child("parse");
                child.field("tokens", 12u64);
            }
            let ex = root.child("execute");
            ex.set_duration_seconds(1.5);
        }
        let t = tracer.finish();
        assert!(t.enabled);
        let root = t.root().unwrap();
        assert_eq!(root.name, "query");
        assert_eq!(root.str_field("surface"), Some("aql"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "parse");
        assert_eq!(root.children[0].u64_field("tokens"), Some(12));
        assert_eq!(root.child("execute").unwrap().duration_ns, 1_500_000_000);
        assert!(root.duration_ns > 0);
        assert!(root.find("parse").is_some());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(&TelemetryConfig::Off);
        {
            let root = tracer.root("query");
            root.field("x", 1u64);
            let c = root.child("inner");
            c.field("y", 2u64);
            tracer.counter("n").add(5);
        }
        let t = tracer.finish();
        assert!(!t.enabled);
        assert!(t.roots.is_empty());
        assert_eq!(t.counter("n"), 0);
    }

    #[test]
    fn counters_aggregate() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        let c = tracer.counter("bytes");
        c.add(10);
        c.add(32);
        tracer.counter("bytes").incr();
        let t = tracer.finish();
        assert_eq!(t.counter("bytes"), 43);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn json_lines_escape_and_schema() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        {
            let root = tracer.root("query");
            root.field("text", "say \"hi\"\n");
            root.field("cost", 1.5f64);
            root.field("ok", true);
        }
        tracer.counter("cells").add(7);
        let t = tracer.finish();
        let json = t.to_json_lines();
        assert!(json.contains("\"span\":\"query\""));
        assert!(json.contains("\"text\":\"say \\\"hi\\\"\\n\""));
        assert!(json.contains("\"cost\":1.5"));
        assert!(json.contains("\"ok\":true"));
        assert!(json.ends_with("{\"counters\":{\"cells\":7}}\n"));
    }

    #[test]
    fn f64_list_round_trips_exactly() {
        let values = vec![0.1, 1.0 / 3.0, -0.0, 1e-300, f64::MAX];
        let decoded = decode_f64s(&encode_f64s(&values));
        assert_eq!(decoded.len(), values.len());
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64s("").is_empty());
    }

    #[test]
    fn coverage_and_signatures() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        {
            let root = tracer.root("join");
            root.set_duration_seconds(1.0);
            let a = root.child("plan");
            a.set_duration_seconds(0.4);
            drop(a);
            let b = root.child("execute");
            b.field("matches", 3u64);
            b.set_duration_seconds(0.58);
        }
        let t = tracer.finish();
        let root = t.root().unwrap();
        assert!((root.child_coverage() - 0.98).abs() < 1e-9);
        let sig = t.structure_signature();
        assert!(sig.contains("join []"));
        assert!(sig.contains("join/execute [matches]"));
        let schema = t.schema_signature();
        assert!(schema.contains("join/plan: []"));
    }

    #[test]
    fn open_spans_get_duration_at_finish() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        let root = tracer.root("query");
        let _hold = root.child("running");
        let t = tracer.finish();
        assert!(t.root().unwrap().children[0].duration_ns < u64::MAX);
        drop(root);
    }
}
