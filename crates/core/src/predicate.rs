//! Join predicates and their taxonomy (paper §2.2).
//!
//! An equi-join predicate is a conjunction of pairs `(l_i, r_i)` where
//! each `l_i` names a dimension or attribute of the left array and each
//! `r_i` one of the right array. The pair's *kind* — D:D, A:A, or
//! A:D/D:A — drives schema inference and plan selection.

use sj_array::{ArraySchema, DataType};

use crate::error::{JoinError, Result};

/// Which operand of the join a column reference belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinSide {
    /// The left operand (α).
    Left,
    /// The right operand (β).
    Right,
}

impl JoinSide {
    /// The other side.
    pub fn other(&self) -> JoinSide {
        match self {
            JoinSide::Left => JoinSide::Right,
            JoinSide::Right => JoinSide::Left,
        }
    }
}

/// One equi-join pair `(left column, right column)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicatePair {
    /// Column name in the left schema (dimension or attribute).
    pub left: String,
    /// Column name in the right schema (dimension or attribute).
    pub right: String,
}

/// Classification of one predicate pair (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Dimension:Dimension — the merge-join-friendly case.
    DimDim,
    /// Attribute:Attribute — traditionally forced a cross join.
    AttrAttr,
    /// Attribute:Dimension or Dimension:Attribute — unsupported by
    /// current array databases; enabled by this framework (§4).
    Mixed,
}

/// A conjunction of equi-join pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPredicate {
    /// The pairs, conjoined.
    pub pairs: Vec<PredicatePair>,
}

impl JoinPredicate {
    /// Build a predicate from `(left, right)` name pairs.
    pub fn new<L: Into<String>, R: Into<String>>(pairs: Vec<(L, R)>) -> Self {
        JoinPredicate {
            pairs: pairs
                .into_iter()
                .map(|(l, r)| PredicatePair {
                    left: l.into(),
                    right: r.into(),
                })
                .collect(),
        }
    }

    /// Classify each pair against the operand schemas, validating that
    /// every referenced column exists and the value types are comparable.
    pub fn classify(&self, left: &ArraySchema, right: &ArraySchema) -> Result<Vec<PairKind>> {
        if self.pairs.is_empty() {
            return Err(JoinError::InvalidPredicate(
                "join predicate must have at least one pair".into(),
            ));
        }
        self.pairs
            .iter()
            .map(|p| {
                let l_dim = left.has_dim(&p.left);
                let l_attr = left.has_attr(&p.left);
                let r_dim = right.has_dim(&p.right);
                let r_attr = right.has_attr(&p.right);
                if !l_dim && !l_attr {
                    return Err(JoinError::UnknownColumn(format!(
                        "{}.{}",
                        left.name, p.left
                    )));
                }
                if !r_dim && !r_attr {
                    return Err(JoinError::UnknownColumn(format!(
                        "{}.{}",
                        right.name, p.right
                    )));
                }
                let l_type = column_type(left, &p.left);
                let r_type = column_type(right, &p.right);
                if !comparable(l_type, r_type) {
                    return Err(JoinError::InvalidPredicate(format!(
                        "cannot compare {}.{} ({}) with {}.{} ({})",
                        left.name,
                        p.left,
                        l_type.name(),
                        right.name,
                        p.right,
                        r_type.name()
                    )));
                }
                Ok(match (l_dim, r_dim) {
                    (true, true) => PairKind::DimDim,
                    (false, false) => PairKind::AttrAttr,
                    _ => PairKind::Mixed,
                })
            })
            .collect()
    }

    /// The dominant class of the whole predicate: D:D only if *every*
    /// pair is D:D (the merge-join precondition), A:A if no pair touches
    /// a dimension, otherwise mixed.
    pub fn overall_kind(&self, left: &ArraySchema, right: &ArraySchema) -> Result<PairKind> {
        let kinds = self.classify(left, right)?;
        if kinds.iter().all(|k| *k == PairKind::DimDim) {
            Ok(PairKind::DimDim)
        } else if kinds.iter().all(|k| *k == PairKind::AttrAttr) {
            Ok(PairKind::AttrAttr)
        } else {
            Ok(PairKind::Mixed)
        }
    }
}

/// The value type of a named dimension (always int) or attribute.
pub(crate) fn column_type(schema: &ArraySchema, name: &str) -> DataType {
    if schema.has_dim(name) {
        DataType::Int64
    } else {
        schema
            .attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.dtype)
            .unwrap_or(DataType::Int64)
    }
}

fn comparable(l: DataType, r: DataType) -> bool {
    use DataType::*;
    matches!(
        (l, r),
        (Int64, Int64)
            | (Int64, Float64)
            | (Float64, Int64)
            | (Float64, Float64)
            | (Bool, Bool)
            | (Str, Str)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (ArraySchema, ArraySchema) {
        (
            ArraySchema::parse("A<v:int, s:string>[i=1,100,10, j=1,100,10]").unwrap(),
            ArraySchema::parse("B<w:float, t:string>[x=1,100,10, y=1,100,10]").unwrap(),
        )
    }

    #[test]
    fn classify_dd_aa_mixed() {
        let (a, b) = schemas();
        let dd = JoinPredicate::new(vec![("i", "x"), ("j", "y")]);
        assert_eq!(
            dd.classify(&a, &b).unwrap(),
            vec![PairKind::DimDim, PairKind::DimDim]
        );
        assert_eq!(dd.overall_kind(&a, &b).unwrap(), PairKind::DimDim);

        let aa = JoinPredicate::new(vec![("v", "w")]);
        assert_eq!(aa.classify(&a, &b).unwrap(), vec![PairKind::AttrAttr]);
        assert_eq!(aa.overall_kind(&a, &b).unwrap(), PairKind::AttrAttr);

        let ad = JoinPredicate::new(vec![("i", "w")]);
        assert_eq!(ad.classify(&a, &b).unwrap(), vec![PairKind::Mixed]);

        let mixed = JoinPredicate::new(vec![("i", "x"), ("v", "w")]);
        assert_eq!(mixed.overall_kind(&a, &b).unwrap(), PairKind::Mixed);
    }

    #[test]
    fn unknown_columns_rejected() {
        let (a, b) = schemas();
        let p = JoinPredicate::new(vec![("nope", "x")]);
        assert!(matches!(
            p.classify(&a, &b),
            Err(JoinError::UnknownColumn(_))
        ));
        let p = JoinPredicate::new(vec![("i", "nope")]);
        assert!(matches!(
            p.classify(&a, &b),
            Err(JoinError::UnknownColumn(_))
        ));
    }

    #[test]
    fn empty_predicate_rejected() {
        let (a, b) = schemas();
        let p = JoinPredicate { pairs: Vec::new() };
        assert!(p.classify(&a, &b).is_err());
    }

    #[test]
    fn incomparable_types_rejected() {
        let (a, b) = schemas();
        // string vs float
        let p = JoinPredicate::new(vec![("s", "w")]);
        assert!(matches!(
            p.classify(&a, &b),
            Err(JoinError::InvalidPredicate(_))
        ));
        // string vs string is fine
        let p = JoinPredicate::new(vec![("s", "t")]);
        assert!(p.classify(&a, &b).is_ok());
        // int dim vs float attr is fine (numeric)
        let p = JoinPredicate::new(vec![("i", "w")]);
        assert!(p.classify(&a, &b).is_ok());
    }
}
