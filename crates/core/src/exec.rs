//! Shuffle join execution (paper §3.3–3.4).
//!
//! Runs a join end-to-end against a [`sj_cluster::Cluster`]:
//!
//! 1. **Logical planning** — infer the join schema, enumerate and cost
//!    plans (Algorithm 1), pick algorithm + join units.
//! 2. **Slice mapping** — every node applies the slice function to its
//!    local cells, producing per-unit slices, and reports sizes to the
//!    coordinator.
//! 3. **Physical planning** — the chosen shuffle planner assigns join
//!    units to nodes using the analytical cost model.
//! 4. **Data alignment** — slices move to their unit's node; the
//!    discrete-event network simulation (greedy write-lock schedule)
//!    times the shuffle.
//! 5. **Cell comparison** — each node assembles its join units and runs
//!    the join algorithm; per-node compute is measured for real and the
//!    slowest node bounds the phase.
//! 6. **Output organization** — emitted cells are tiled (and sorted or
//!    redimensioned) into the destination array.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use sj_array::keys::{KernelConfig, SortKernel};
use sj_array::ops::kernels;
use sj_array::{Array, ArraySchema, CellBatch, Histogram, Value};
use sj_cluster::{
    simulate_shuffle_guarded_traced, Cluster, FaultPlan, RecoveryOptions, ReplanPolicy,
    ShuffleReport, Transfer,
};
use sj_telemetry::{
    encode_f64s, CancelHandle, ClockSource, QueryContext, SpanGuard, Telemetry, TelemetryConfig,
    Tracer,
};

use crate::algorithms::{run_join_with, Emitter, JoinAlgo, JoinKernelInfo};
use crate::error::{JoinError, Result};
use crate::join_schema::{infer_join_schema, ColumnStats};
use crate::logical::{plan_join, plan_join_with_algo, LogicalPlan, LogicalStats, OutOp};
use crate::parallel::{par_map, par_map_until, par_map_weighted_until, resolve_threads};
use crate::physical::{plan_physical_resilient, CostParams, PlanTier, PlannerKind, SliceStats};
use crate::predicate::{JoinPredicate, JoinSide};
use crate::unit::{map_slices, SliceSet};
use crate::views::solve_status_token;

/// A join query against two arrays loaded in a cluster.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// Name of the left operand array.
    pub left: String,
    /// Name of the right operand array.
    pub right: String,
    /// The equi-join predicate.
    pub predicate: JoinPredicate,
    /// Optional explicit destination schema (`INTO τ<...>[...]`).
    pub output: Option<ArraySchema>,
    /// Join selectivity estimate fed to the logical cost model
    /// (output cells ≈ hint · (n_left + n_right)); 1.0 when unknown.
    pub selectivity_hint: f64,
}

impl JoinQuery {
    /// A query with default options.
    pub fn new(
        left: impl Into<String>,
        right: impl Into<String>,
        predicate: JoinPredicate,
    ) -> Self {
        JoinQuery {
            left: left.into(),
            right: right.into(),
            predicate,
            output: None,
            selectivity_hint: 1.0,
        }
    }

    /// Set the destination schema.
    pub fn into_schema(mut self, output: ArraySchema) -> Self {
        self.output = Some(output);
        self
    }

    /// Set the selectivity hint.
    pub fn with_selectivity(mut self, hint: f64) -> Self {
        self.selectivity_hint = hint;
        self
    }
}

/// What the executor does when the query deadline expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnDeadline {
    /// Unwind with [`JoinError::DeadlineExceeded`] at the next lifecycle
    /// checkpoint (batch boundary, shuffle event, or worker-pool item
    /// boundary). The default.
    #[default]
    Abort,
    /// Enforce the deadline through the planning phases, but once data
    /// alignment begins commit to finishing the work in flight: the
    /// shuffle, cell comparison, and output run under cancellation-only
    /// enforcement, so the query still returns a full (bit-identical)
    /// result — flagged `deadline_degraded` in the `lifecycle` span
    /// when the deadline lapsed along the way. A deadline that expires
    /// before alignment starts still aborts: nothing has moved yet, so
    /// there is nothing worth finishing.
    FinishCurrentUnit,
}

impl OnDeadline {
    /// Stable lowercase token recorded in the `lifecycle` span.
    pub fn name(self) -> &'static str {
        match self {
            OnDeadline::Abort => "abort",
            OnDeadline::FinishCurrentUnit => "finish_current_unit",
        }
    }
}

/// Query-lifecycle guardrails: deadline, cooperative cancellation, and
/// mid-shuffle straggler re-planning.
///
/// The default is fully unbounded: no deadline, a fresh (untripped)
/// cancel handle, the real clock, and re-planning disabled — the exact
/// legacy execution path.
#[derive(Debug, Clone, Default)]
pub struct LifecycleConfig {
    /// Query deadline in seconds (measured on `clock`); `None` = no
    /// deadline.
    pub deadline: Option<f64>,
    /// Degradation policy when the deadline expires.
    pub on_deadline: OnDeadline,
    /// Cooperative cancellation handle. Clone it before starting the
    /// query and call [`CancelHandle::cancel`] from any thread; the
    /// executor unwinds with [`JoinError::Cancelled`] at the next
    /// checkpoint.
    pub cancel: CancelHandle,
    /// Clock the deadline is measured on. `Real` for wall-clock
    /// production deadlines; `Virtual` couples the deadline to the
    /// shuffle simulation's event time, which makes deadline tests
    /// deterministic at every thread count.
    pub clock: ClockSource,
    /// Mid-shuffle straggler re-planning policy (disabled by default).
    pub replan: ReplanPolicy,
}

impl LifecycleConfig {
    /// Build the per-query context threaded through the executor.
    pub fn context(&self) -> QueryContext {
        QueryContext::new(self.cancel.clone(), self.deadline, self.clock.clone())
    }
}

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Which physical planner assigns join units to nodes.
    pub planner: PlannerKind,
    /// Analytical cost-model parameters (m, b, p, t).
    pub cost_params: CostParams,
    /// Override the number of hash buckets for hash-partitioned plans.
    pub hash_buckets: Option<usize>,
    /// Force a specific join algorithm instead of letting the logical
    /// planner choose (used by the evaluation harness, §6.1).
    pub forced_algo: Option<JoinAlgo>,
    /// Worker threads for the compute phases (slice mapping, unit
    /// assembly, hash build, probe): `0` = machine parallelism, `1` = the
    /// exact sequential path. Results are bit-identical for every value.
    pub threads: usize,
    /// Fault schedule injected into the data-alignment shuffle.
    /// `FaultPlan::none()` (the default) takes the exact fault-free code
    /// path — reports are bit-identical to a build without this field.
    pub faults: FaultPlan,
    /// Telemetry collection mode. `Tree` (the default) records spans in
    /// memory; `Json { path }` additionally exports them as JSON lines;
    /// `Off` compiles the instrumentation down to no-ops.
    pub telemetry: TelemetryConfig,
    /// Sort/hash kernel dispatch thresholds for the per-unit join
    /// kernels. The `threads` field is ignored here: the executor sets
    /// each unit's intra-unit budget from the leftover worker threads
    /// (`threads / n_units`). Every setting is bit-identical in output;
    /// the knobs only move the crossover points.
    pub kernels: KernelConfig,
    /// Query-lifecycle guardrails: deadline, cancellation handle, clock
    /// source, and mid-shuffle re-planning. The default is unbounded and
    /// takes the exact legacy execution path.
    pub lifecycle: LifecycleConfig,
    /// Join-order optimization mode for plans with 3+ relations. `Dp`
    /// (the default) runs the Selinger-style dynamic program over the
    /// join graph; `Off` executes the join tree exactly as written
    /// (tests and benches use it to pin a specific order).
    pub optimizer: crate::optimizer::OptimizerMode,
    /// Cached per-column statistics the join-order optimizer costs plans
    /// from, shared by every query running under this configuration.
    /// Entries are validated against the catalog epoch, so loading or
    /// dropping arrays invalidates them automatically. Stale statistics
    /// can only mislead the planner towards a slower order — never
    /// change a result.
    pub stats: std::sync::Arc<crate::optimizer::StatsCache>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            planner: PlannerKind::Tabu,
            cost_params: CostParams::default(),
            hash_buckets: None,
            forced_algo: None,
            threads: 0,
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::default(),
            kernels: KernelConfig::default(),
            lifecycle: LifecycleConfig::default(),
            optimizer: crate::optimizer::OptimizerMode::default(),
            stats: std::sync::Arc::new(crate::optimizer::StatsCache::default()),
        }
    }
}

impl ExecConfig {
    /// Start building a validated configuration.
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder::default()
    }
}

/// Validating builder for [`ExecConfig`]: the only construction path that
/// rejects incoherent knob combinations (a crash-injecting fault plan
/// with retries disabled, zero hash buckets, an empty telemetry sink
/// path, …) instead of failing mysteriously mid-join.
#[derive(Debug, Clone, Default)]
pub struct ExecConfigBuilder {
    config: ExecConfig,
}

impl ExecConfigBuilder {
    /// Choose the physical planner.
    pub fn planner(mut self, planner: PlannerKind) -> Self {
        self.config.planner = planner;
        self
    }

    /// Choose the join-order optimization mode.
    pub fn optimizer(mut self, mode: crate::optimizer::OptimizerMode) -> Self {
        self.config.optimizer = mode;
        self
    }

    /// Override the analytical cost-model parameters.
    pub fn cost_params(mut self, params: CostParams) -> Self {
        self.config.cost_params = params;
        self
    }

    /// Override the hash bucket count for hash-partitioned plans.
    pub fn hash_buckets(mut self, buckets: usize) -> Self {
        self.config.hash_buckets = Some(buckets);
        self
    }

    /// Force a specific join algorithm.
    pub fn forced_algo(mut self, algo: JoinAlgo) -> Self {
        self.config.forced_algo = Some(algo);
        self
    }

    /// Set the worker-thread count (`0` = machine parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Inject a fault schedule into the shuffle.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Set the telemetry collection mode.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Override the sort/hash kernel dispatch thresholds.
    pub fn kernels(mut self, kernels: KernelConfig) -> Self {
        self.config.kernels = kernels;
        self
    }

    /// Set the query deadline in seconds (measured on the configured
    /// clock source).
    pub fn deadline(mut self, seconds: f64) -> Self {
        self.config.lifecycle.deadline = Some(seconds);
        self
    }

    /// Choose what happens when the deadline expires.
    pub fn on_deadline(mut self, policy: OnDeadline) -> Self {
        self.config.lifecycle.on_deadline = policy;
        self
    }

    /// Attach a cancellation handle (clone it to cancel from elsewhere).
    pub fn cancel(mut self, handle: CancelHandle) -> Self {
        self.config.lifecycle.cancel = handle;
        self
    }

    /// Choose the clock the deadline is measured on.
    pub fn clock(mut self, clock: ClockSource) -> Self {
        self.config.lifecycle.clock = clock;
        self
    }

    /// Set the mid-shuffle straggler re-planning policy.
    pub fn replan(mut self, policy: ReplanPolicy) -> Self {
        self.config.lifecycle.replan = policy;
        self
    }

    /// Validate the combination and produce the config.
    ///
    /// Rejections are [`JoinError::Config`] and name the offending knob.
    pub fn build(self) -> Result<ExecConfig> {
        let c = &self.config;
        if c.hash_buckets == Some(0) {
            return Err(JoinError::Config("hash_buckets must be at least 1".into()));
        }
        let f = &c.faults;
        if !(0.0..1.0).contains(&f.drop_rate) {
            return Err(JoinError::Config(format!(
                "fault drop_rate {} outside [0, 1)",
                f.drop_rate
            )));
        }
        if !(0.0..1.0).contains(&f.corrupt_rate) {
            return Err(JoinError::Config(format!(
                "fault corrupt_rate {} outside [0, 1)",
                f.corrupt_rate
            )));
        }
        if f.stragglers.iter().any(|s| s.factor < 1.0) {
            return Err(JoinError::Config(
                "straggler slowdown factor must be >= 1".into(),
            ));
        }
        if matches!(f.transfer_timeout, Some(t) if t <= 0.0) {
            return Err(JoinError::Config(
                "transfer_timeout must be positive".into(),
            ));
        }
        let lc = &c.lifecycle;
        if matches!(lc.deadline, Some(d) if d <= 0.0 || d.is_nan()) {
            return Err(JoinError::Config("deadline must be positive".into()));
        }
        if let (Some(d), Some(t)) = (lc.deadline, f.transfer_timeout) {
            if d < t {
                return Err(JoinError::Config(format!(
                    "deadline {d} is shorter than faults.transfer_timeout {t}: \
                     every retried transfer would outlive the query"
                )));
            }
        }
        if lc.replan.max_replans > 0 {
            let r = &lc.replan;
            if r.slowdown_factor <= 1.0 || r.slowdown_factor.is_nan() {
                return Err(JoinError::Config(format!(
                    "replan slowdown_factor {} must exceed 1.0: at or below parity \
                     every node is a straggler",
                    r.slowdown_factor
                )));
            }
            if r.check_interval <= 0.0 || r.check_interval.is_nan() {
                return Err(JoinError::Config(format!(
                    "replan check_interval {} must be positive when max_replans > 0",
                    r.check_interval
                )));
            }
        }
        let lossy = !f.crashes.is_empty() || f.drop_rate > 0.0 || f.corrupt_rate > 0.0;
        if lossy && f.max_retries == 0 {
            return Err(JoinError::Config(
                "fault plan injects losses (crashes/drops/corruption) but max_retries is 0: \
                 no transfer could ever recover"
                    .into(),
            ));
        }
        if matches!(&c.telemetry, TelemetryConfig::Json { path } if path.is_empty()) {
            return Err(JoinError::Config(
                "telemetry JSON sink requires a non-empty path".into(),
            ));
        }
        if c.kernels.counting_max_bits > 26 {
            return Err(JoinError::Config(format!(
                "kernels.counting_max_bits {} exceeds 26: a counting table that wide \
                 (>64M entries) dwarfs any batch it could sort",
                c.kernels.counting_max_bits
            )));
        }
        Ok(self.config)
    }
}

/// Real-hardware execution profile of one join: resolved worker count,
/// per-phase wall clock, and per-worker busy time (the spread between
/// workers in a phase is measurable straggler time under skew).
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Workers the parallel phases were allowed to use.
    pub threads: usize,
    /// Wall seconds collecting cluster-wide column statistics.
    pub stats_wall_seconds: f64,
    /// Wall seconds of the slice-mapping region (all nodes).
    pub slice_map_wall_seconds: f64,
    /// Per-worker busy seconds inside slice mapping.
    pub slice_map_busy_seconds: Vec<f64>,
    /// Wall seconds of the cell-comparison region (all join units).
    pub comparison_wall_seconds: f64,
    /// Per-worker busy seconds inside cell comparison.
    pub comparison_busy_seconds: Vec<f64>,
    /// Wall seconds assembling the destination array.
    pub output_wall_seconds: f64,
}

/// Timing and volume metrics for one join execution.
///
/// `alignment_seconds` is virtual (DES makespan over the modeled
/// network); the compute phases are measured wall-clock, attributed to
/// the slowest node as the paper's figures do.
#[derive(Debug, Clone)]
pub struct JoinMetrics {
    /// AFL rendering of the chosen logical plan.
    pub afl: String,
    /// The chosen join algorithm.
    pub algo: JoinAlgo,
    /// The logical plan's analytical cost (Table 1 units).
    pub logical_cost: f64,
    /// Wall time of logical planning + schema inference.
    pub logical_planning: Duration,
    /// Max-node wall time of slice mapping.
    pub slice_map_seconds: f64,
    /// Wall time of physical planning (the figures' "Query Plan" bar).
    pub physical_planning: Duration,
    /// Estimated cost of the chosen physical plan (Equation 8).
    pub est_physical_cost: f64,
    /// Simulated data-alignment makespan (the "Data Align" bar).
    pub alignment_seconds: f64,
    /// Bytes crossing the network during alignment.
    pub network_bytes: u64,
    /// Cells that moved between nodes.
    pub cells_moved: u64,
    /// Max-node measured cell-comparison time (the "Cell Comp" bar),
    /// including join-unit assembly/sorting and this node's share of
    /// output organization.
    pub comparison_seconds: f64,
    /// Per-node measured comparison seconds.
    pub per_node_comparison: Vec<f64>,
    /// Matches emitted.
    pub matches: usize,
    /// Physical planner used.
    pub planner: &'static str,
    /// Which tier of the degrade-gracefully chain produced the plan.
    pub plan_tier: PlanTier,
    /// True when the cluster lost a node during this join (results are
    /// still correct — recovered from replicas — but the schedule ran
    /// degraded).
    pub degraded: bool,
    /// ILP solver status, when an ILP planner ran.
    pub solver_status: Option<sj_ilp::SolveStatus>,
    /// Real per-phase wall clock and per-worker busy time.
    pub profile: ExecProfile,
    /// Full shuffle simulation report (per-node sent/recv byte totals).
    pub shuffle: ShuffleReport,
}

impl JoinMetrics {
    /// End-to-end query time: planning + alignment + comparison (the
    /// stacked bars of Figures 7–10).
    pub fn total_seconds(&self) -> f64 {
        self.physical_planning.as_secs_f64()
            + self.alignment_seconds
            + self.slice_map_seconds
            + self.comparison_seconds
    }
}

/// A completed join: the destination array (gathered at the coordinator)
/// plus the run's [`Telemetry`] — the single source of truth for all
/// metrics. [`crate::views::MetricsView`] derives the legacy
/// [`JoinMetrics`] view from it.
#[derive(Debug, Clone)]
pub struct JoinRun {
    /// The joined destination array.
    pub array: Array,
    /// Span tree and counters recorded while the join ran.
    pub telemetry: Telemetry,
}

/// Execute `query` on `cluster` under `config`, returning the destination
/// array and the run's telemetry (exported to `config.telemetry`'s sink,
/// if one is configured).
pub fn execute_join(cluster: &Cluster, query: &JoinQuery, config: &ExecConfig) -> Result<JoinRun> {
    let tracer = Tracer::new(&config.telemetry);
    let root = tracer.root("query");
    let array = execute_join_traced(cluster, query, config, &root)?;
    drop(root);
    let telemetry = tracer.finish();
    telemetry
        .export(&config.telemetry)
        .map_err(|e| JoinError::Storage(format!("telemetry export failed: {e}")))?;
    Ok(JoinRun { array, telemetry })
}

/// Execute `query` inside an existing span tree: records a `join` span
/// (with `logical_plan`, `slice_map`, `physical_plan`, `shuffle`,
/// `execute`, and `output` phase children) under `parent` and returns the
/// destination array.
///
/// All span recording happens on the coordinator thread in program order;
/// per-worker measurements travel as encoded fields, so the span tree's
/// *structure* is identical for every `threads` setting.
pub fn execute_join_traced(
    cluster: &Cluster,
    query: &JoinQuery,
    config: &ExecConfig,
    parent: &SpanGuard,
) -> Result<Array> {
    execute_join_guarded(cluster, query, config, parent, &config.lifecycle.context())
}

/// Classify a worker-pool stop into the typed interrupt that caused it.
/// Cancellation wins over the deadline, matching [`QueryContext::check`].
fn interrupt_error(ctx: &QueryContext) -> JoinError {
    if ctx.deadline_exceeded() && !ctx.cancel_handle().is_cancelled() {
        JoinError::DeadlineExceeded
    } else {
        JoinError::Cancelled
    }
}

/// [`execute_join_traced`] under an explicit [`QueryContext`] — the
/// pipeline executor builds one context per query and threads it through
/// every join so a single cancel (or deadline) covers the whole plan.
///
/// Lifecycle checkpoints: between phases on the coordinator thread, per
/// simulated event inside the shuffle, and between items in the worker
/// pool (slice mapping and cell comparison). Workers never stop
/// mid-item, so an unwind leaves no torn outputs, no poisoned locks, and
/// — the pool being scoped — no leaked threads.
pub fn execute_join_guarded(
    cluster: &Cluster,
    query: &JoinQuery,
    config: &ExecConfig,
    parent: &SpanGuard,
    ctx: &QueryContext,
) -> Result<Array> {
    ctx.check()?;
    let span = parent.child("join");
    let k = cluster.node_count();
    let threads = resolve_threads(config.threads);
    span.field("threads", threads);

    // ---- Logical planning. ------------------------------------------------
    let lp = span.child("logical_plan");
    let catalog = cluster.catalog();
    let left_schema = catalog.schema(&query.left)?.clone();
    let right_schema = catalog.schema(&query.right)?.clone();
    let t0 = Instant::now();
    let cs = lp.child("column_stats");
    let stats = cluster_column_stats(cluster, query, threads)?;
    cs.field("wall_seconds", t0.elapsed().as_secs_f64());
    drop(cs);
    let js = infer_join_schema(
        &left_schema,
        &right_schema,
        &query.predicate,
        query.output.clone(),
        &stats,
    )?;
    let (n_left, c_left) = array_size(cluster, &query.left)?;
    let (n_right, c_right) = array_size(cluster, &query.right)?;
    let mut lstats = LogicalStats {
        n_left,
        c_left: c_left.max(1),
        n_right,
        c_right: c_right.max(1),
        selectivity: query.selectivity_hint,
        nodes: k,
        hash_buckets: ((n_left + n_right) / 65_536).clamp(16 * k as u64, 4096) as usize,
    };
    if let Some(b) = config.hash_buckets {
        lstats.hash_buckets = b;
    }
    let logical: LogicalPlan = match config.forced_algo {
        None => plan_join(&js, &left_schema, &right_schema, &lstats)?,
        Some(algo) => plan_join_with_algo(&js, &left_schema, &right_schema, &lstats, algo)?,
    };
    lp.field("hash_buckets", lstats.hash_buckets);
    lp.field("cost", logical.cost.total());
    drop(lp);
    span.field("algo", logical.algo.name());
    if span.enabled() {
        let afl = logical.render_afl(&query.left, &query.right, &js.output.name);
        span.field("afl", afl);
    }

    // ---- Slice mapping (per node, both sides). ----------------------------
    // Every simulated node's slice function is independent, so nodes map
    // on real worker threads; results are collected in node-id order.
    ctx.check()?;
    let unit_spec = logical.unit_spec.clone();
    let n_units = unit_spec.n_units();
    let sm = span.child("slice_map");
    let t_sm = Instant::now();
    let (mapped, sm_pool) = par_map_until(
        threads,
        k,
        |node_id| -> Result<(SliceSet, SliceSet, f64)> {
            let node = &cluster.nodes()[node_id];
            let t = Instant::now();
            let ls = map_slices(
                node.chunks_of(&query.left).map(|(_, c)| c),
                &js.left_layout,
                &unit_spec,
            )?;
            let rs = map_slices(
                node.chunks_of(&query.right).map(|(_, c)| c),
                &js.right_layout,
                &unit_spec,
            )?;
            Ok((ls, rs, t.elapsed().as_secs_f64()))
        },
        &|| ctx.check().is_err(),
    );
    sm.field("wall_seconds", t_sm.elapsed().as_secs_f64());
    if sm.enabled() {
        sm.field("busy_seconds", encode_f64s(&sm_pool.busy_seconds));
    }
    let mut slice_map_seconds = 0.0f64;
    let mut left_slices: Vec<SliceSet> = Vec::with_capacity(k);
    let mut right_slices: Vec<SliceSet> = Vec::with_capacity(k);
    for (node, result) in mapped.into_iter().enumerate() {
        let Some(result) = result else {
            return Err(interrupt_error(ctx));
        };
        let (ls, rs, secs) = result?;
        slice_map_seconds = slice_map_seconds.max(secs);
        if sm.enabled() {
            let n = sm.child("node");
            n.field("node", node);
            n.field("seconds", secs);
        }
        left_slices.push(ls);
        right_slices.push(rs);
    }
    sm.field("max_node_seconds", slice_map_seconds);

    // ---- Coordinator collects slice statistics. ----------------------------
    let mut sstats = SliceStats::new(n_units, k);
    for j in 0..k {
        for i in 0..n_units {
            sstats.left[i][j] = left_slices[j].slices[i].len() as u64;
            sstats.right[i][j] = right_slices[j].slices[i].len() as u64;
        }
    }
    drop(sm);

    // ---- Physical planning. -------------------------------------------------
    ctx.check()?;
    let larger_side = if n_left >= n_right {
        JoinSide::Left
    } else {
        JoinSide::Right
    };
    // The degrade-gracefully chain: never fail the join because the
    // requested planner (or the cluster) is having a bad day.
    let pp = span.child("physical_plan");
    let pplan = plan_physical_resilient(
        &config.planner,
        &sstats,
        &config.cost_params,
        logical.algo,
        larger_side,
        cluster.degraded(),
    )?;
    pp.field("planner", pplan.planner);
    pp.field("tier", pplan.tier.name());
    pp.field("est_cost", pplan.est_cost);
    pp.field("planning_ns", pplan.planning_time.as_nanos() as u64);
    if let Some(status) = pplan.solver_status {
        pp.field("solver_status", solve_status_token(status));
    }
    if let Some(ilp) = &pplan.ilp {
        let c = pp.child("ilp");
        c.field("status", solve_status_token(ilp.status));
        c.field("nodes_explored", ilp.nodes_explored);
        c.field("objective", ilp.objective);
        c.field("bound", ilp.bound);
        c.field("warm_start_hit", ilp.warm_start_hit);
    }
    drop(pp);

    // ---- Data alignment: simulate the shuffle over the real slice sizes. ---
    let sh = span.child("shuffle");
    let lbytes = js.left_layout.cell_bytes() as u64;
    let rbytes = js.right_layout.cell_bytes() as u64;
    let mut transfers: Vec<Transfer> = Vec::new();
    let mut cells_moved = 0u64;
    for (i, &dst) in pplan.assignment.iter().enumerate() {
        for src in 0..k {
            let cells = sstats.left[i][src] + sstats.right[i][src];
            if cells == 0 {
                continue;
            }
            let bytes = sstats.left[i][src] * lbytes + sstats.right[i][src] * rbytes;
            if src != dst {
                cells_moved += cells;
            }
            transfers.push(Transfer { src, dst, bytes });
        }
    }
    sh.field("cells_moved", cells_moved);
    // The fault-free path routes through the same traced simulation with
    // an empty plan and no-op recovery — that is exactly what the old
    // `simulate_shuffle` delegated to, so reports stay bit-identical.
    // The guardrails ride along in both branches: the simulator checks
    // the context per event (advancing the virtual clock with simulated
    // time) and runs the straggler re-planning barriers when the policy
    // is enabled; the default disabled policy is the exact legacy
    // schedule. Alignment is the `FinishCurrentUnit` commit point: under
    // that policy the shuffle (and everything after it) runs on a
    // deadline-stripped view of the context — same cancel flag, same
    // clock — so expiry degrades the run instead of aborting it.
    let enforce_deadline = config.lifecycle.on_deadline == OnDeadline::Abort;
    let committed_ctx = if enforce_deadline {
        ctx.clone()
    } else {
        ctx.without_deadline()
    };
    let replan = &config.lifecycle.replan;
    let shuffle = if config.faults.is_none() {
        simulate_shuffle_guarded_traced(
            k,
            &cluster.network,
            &transfers,
            &FaultPlan::none(),
            &RecoveryOptions::none(k),
            replan,
            &committed_ctx,
            &sh,
        )?
    } else {
        simulate_shuffle_guarded_traced(
            k,
            &cluster.network,
            &transfers,
            &config.faults,
            &cluster.recovery_options(),
            replan,
            &committed_ctx,
            &sh,
        )?
    };
    drop(sh);

    // ---- Cell comparison: assemble units per node and run the join. --------
    // Past the alignment commit point `committed_ctx` carries the whole
    // policy: under `Abort` it still enforces the deadline, under
    // `FinishCurrentUnit` it is deadline-free and only honours cancel.
    committed_ctx.check()?;
    let ex = span.child("execute");
    // When the shuffle lost nodes, their join units were re-homed onto
    // substitutes; apply the coordinator's reassignments (in crash
    // order, so substitution chains resolve) to get the effective
    // assignment used for comparison attribution.
    let effective_assignment: Vec<usize> = {
        let mut asg = pplan.assignment.clone();
        for &(dead, sub) in &shuffle.reassigned {
            for slot in asg.iter_mut() {
                if *slot == dead {
                    *slot = sub;
                }
            }
        }
        asg
    };

    // Transpose node-major slices into per-unit inputs (moves, no copies),
    // preserving node order j = 0..k inside each unit so the assembled
    // batches are byte-identical to the sequential append order.
    let mut per_unit_parts: Vec<(Vec<CellBatch>, Vec<CellBatch>)> = (0..n_units)
        .map(|_| (Vec::with_capacity(k), Vec::with_capacity(k)))
        .collect();
    for j in 0..k {
        for (i, batch) in left_slices[j].slices.drain(..).enumerate() {
            per_unit_parts[i].0.push(batch);
        }
        for (i, batch) in right_slices[j].slices.drain(..).enumerate() {
            per_unit_parts[i].1.push(batch);
        }
    }
    // Join units are independent; each runs on a worker with its own
    // emitter. Heavier units (by total cells, the skew signal the
    // physical planner already collected) dispatch first so one hot unit
    // never lands last and serializes the tail.
    let unit_weights: Vec<u64> = (0..n_units)
        .map(|i| (0..k).map(|j| sstats.left[i][j] + sstats.right[i][j]).sum())
        .collect();
    type UnitInput = Mutex<Option<(Vec<CellBatch>, Vec<CellBatch>)>>;
    let unit_inputs: Vec<UnitInput> = per_unit_parts
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    // Leftover worker budget for intra-unit parallelism: when there are
    // fewer units than threads, the spare workers split one unit's sort
    // or probe instead of idling. Bit-identical at every value.
    let mut unit_kernels = config.kernels.clone();
    unit_kernels.threads = (threads / n_units.max(1)).max(1);
    let t_cmp = Instant::now();
    let (unit_results, cmp_pool) = par_map_weighted_until(
        threads,
        &unit_weights,
        |i| -> Result<(CellBatch, usize, f64, JoinKernelInfo)> {
            let (lparts, rparts) = unit_inputs[i]
                .lock()
                .expect("unit input poisoned")
                .take()
                .expect("each unit is consumed exactly once");
            let t = Instant::now();
            let mut left_unit = js.left_layout.empty_batch();
            let mut right_unit = js.right_layout.empty_batch();
            for ls in lparts {
                left_unit.append(ls)?;
            }
            for rs in rparts {
                right_unit.append(rs)?;
            }
            let mut emitter = Emitter::new(&js);
            let mut matches = 0usize;
            let mut info = JoinKernelInfo::default();
            if !left_unit.is_empty() && !right_unit.is_empty() {
                (matches, info) = run_join_with(
                    logical.algo,
                    &mut left_unit,
                    &js.left_layout.key_cols,
                    &mut right_unit,
                    &js.right_layout.key_cols,
                    &mut emitter,
                    &unit_kernels,
                )?;
            }
            Ok((emitter.out, matches, t.elapsed().as_secs_f64(), info))
        },
        &|| committed_ctx.check().is_err(),
    );
    ex.field("wall_seconds", t_cmp.elapsed().as_secs_f64());
    if ex.enabled() {
        ex.field("busy_seconds", encode_f64s(&cmp_pool.busy_seconds));
    }

    // Merge per-unit outputs in unit-id order — identical to the
    // sequential single-emitter concatenation, whatever the thread count.
    let mut per_node_comparison = vec![0.0f64; k];
    let mut matches = 0usize;
    let mut out_cells = Emitter::new(&js).out;
    let mut unit_info: Vec<(usize, f64)> = Vec::with_capacity(n_units);
    let mut kernel_infos: Vec<JoinKernelInfo> = Vec::with_capacity(n_units);
    for (i, result) in unit_results.into_iter().enumerate() {
        let Some(result) = result else {
            return Err(interrupt_error(ctx));
        };
        let (cells, unit_matches, secs, kinfo) = result?;
        per_node_comparison[effective_assignment[i]] += secs;
        matches += unit_matches;
        unit_info.push((unit_matches, secs));
        kernel_infos.push(kinfo);
        out_cells.append(cells)?;
    }
    // Aggregate per-unit dispatch decisions (in unit-id order, so the
    // span is identical at every thread count) into one child span.
    {
        let kd = ex.child("kernel_dispatch");
        kd.field("intra_threads", unit_kernels.threads);
        for k in SortKernel::ALL {
            let count = kernel_infos
                .iter()
                .flat_map(|info| [info.left_sort, info.right_sort])
                .filter(|&s| s == Some(k))
                .count();
            if count > 0 {
                kd.field(k.name(), count as u64);
            }
        }
        let probe_chunks: usize = kernel_infos.iter().map(|info| info.probe_chunks).sum();
        kd.field("probe_chunks", probe_chunks as u64);
    }
    if ex.enabled() {
        // Attribution children: one `node` per cluster node (in id order,
        // even when idle — the view reads per-node comparison time back
        // from this), with its assigned `unit`s nested in unit-id order.
        for (node, &node_seconds) in per_node_comparison.iter().enumerate() {
            let n = ex.child("node");
            n.field("node", node);
            n.field("seconds", node_seconds);
            for (i, &(unit_matches, secs)) in unit_info.iter().enumerate() {
                if effective_assignment[i] == node {
                    let u = n.child("unit");
                    u.field("unit", i);
                    u.field("cells", unit_weights[i]);
                    u.field("matches", unit_matches);
                    u.field("seconds", secs);
                }
            }
        }
    }
    drop(ex);

    // ---- Output organization. -----------------------------------------------
    // Tile (and order) the emitted cells into the destination schema via the
    // shared output-organization kernel (also the pipeline's sink).
    // Past the comparison phase, `FinishCurrentUnit` commits to emitting
    // the (complete) result even when the deadline has lapsed.
    committed_ctx.check()?;
    let out_span = span.child("output");
    let t_out = Instant::now();
    let ordered = matches!(logical.out, OutOp::Sort | OutOp::Redim);
    let (output, out_sorts) =
        kernels::organize_with(js.output.clone(), &out_cells, ordered, &config.kernels)?;
    let out_wall = t_out.elapsed().as_secs_f64();
    out_span.field("wall_seconds", out_wall);
    out_span.field("ordered", ordered);
    out_span.field("cells", output.cell_count());
    for (kernel, chunk_count) in out_sorts {
        out_span.field(kernel.name(), chunk_count as u64);
    }
    drop(out_span);
    // Output tiling parallelizes across the cluster; attribute 1/k of the
    // measured wall time to the slowest node's comparison phase.
    let out_seconds = out_wall / k as f64;
    let comparison_seconds = per_node_comparison.iter().copied().fold(0.0, f64::max) + out_seconds;
    span.field("matches", matches);
    span.field("comparison_seconds", comparison_seconds);
    span.field("degraded", shuffle.degraded || cluster.degraded());
    // Lifecycle record: always present on a run that produced output, so
    // the span schema is stable. `deadline_degraded` can only appear
    // under `FinishCurrentUnit` — the `Abort` policy unwinds instead.
    {
        let lc = span.child("lifecycle");
        let deadline_hit = ctx.deadline_exceeded();
        lc.field(
            "state",
            if deadline_hit {
                "deadline_degraded"
            } else {
                "complete"
            },
        );
        lc.field("on_deadline", config.lifecycle.on_deadline.name());
        lc.field("deadline_exceeded", deadline_hit);
        lc.field("replans", shuffle.replans);
    }
    Ok(output)
}

/// Derive the cost-model parameters `(m, b, p, t)` empirically, as the
/// paper does (§5.1: "we derive the cost model's parameters … empirically
/// using the database's performance").
///
/// Runs a micro merge join and hash join over synthetic batches to time
/// this engine's per-cell merge, hash-build, and probe costs; `t` comes
/// from the network model and the cell width.
pub fn calibrate_cost_params(network: &sj_cluster::NetworkModel, cell_bytes: usize) -> CostParams {
    use crate::algorithms::{hash_join, merge_join};
    use crate::join_schema::ColumnStats;

    let n = 40_000usize;
    let a_schema = ArraySchema::parse("CalA<v:int>[i=1,1000000,1000000]").unwrap();
    let b_schema = ArraySchema::parse("CalB<w:int>[j=1,1000000,1000000]").unwrap();
    let pred = JoinPredicate::new(vec![("v", "w")]);
    let mut stats = ColumnStats::new();
    stats.insert(
        JoinSide::Left,
        "v",
        Histogram::build((0..100).map(Value::Int), 8).unwrap(),
    );
    let js = infer_join_schema(&a_schema, &b_schema, &pred, None, &stats)
        .expect("calibration fixture is valid");
    // Each key appears twice per side, in scrambled order, yielding ≈2
    // matches per input cell. The timing therefore covers what a node
    // really does per unit — assembly, sort (for merge), build, probe,
    // and *match emission* — the same work `per_node_comparison`
    // measures. Calibrating with a realistic match density is what makes
    // the planners trade comparison balance against network time the way
    // the paper's empirically-derived parameters do.
    let mut left = js.left_layout.empty_batch();
    let mut right = js.right_layout.empty_batch();
    for i in 0..n as i64 {
        let scrambled = ((i * 48271) % n as i64) / 2;
        left.push(&[], &[Value::Int(scrambled), Value::Int(2 * i)])
            .unwrap();
        right
            .push(&[], &[Value::Int(scrambled), Value::Int(2 * i + 1)])
            .unwrap();
    }
    let lk = js.left_layout.key_cols.clone();
    let rk = js.right_layout.key_cols.clone();

    // Merge: unit assembly (slice append) + sort + two-cursor merge +
    // emit — the full per-unit pipeline a node executes.
    let mut emitter = Emitter::new(&js);
    let t0 = Instant::now();
    let mut l = js.left_layout.empty_batch();
    l.append(left.clone()).unwrap();
    let mut r = js.right_layout.empty_batch();
    r.append(right.clone()).unwrap();
    l.sort_by_attr_columns(&lk);
    r.sort_by_attr_columns(&rk);
    let _ = merge_join(&l, &lk, &r, &rk, &mut emitter);
    let m = t0.elapsed().as_secs_f64() / (2 * n) as f64;

    // Hash: time a probe-heavy pass (tiny build side) and a balanced pass
    // to separate the build cost from the probe cost.
    let tiny = left.take(&[0]);
    let mut emitter = Emitter::new(&js);
    let t0 = Instant::now();
    let _ = hash_join(&left, &lk, &tiny, &rk, &mut emitter); // builds tiny, probes n
    let probe_heavy = t0.elapsed().as_secs_f64();
    let p = (probe_heavy / n as f64).max(1e-9);
    let t0 = Instant::now();
    let _ = hash_join(&left, &lk, &right, &rk, &mut emitter); // builds n, probes n
    let both = t0.elapsed().as_secs_f64();
    let b = ((both - probe_heavy) / n as f64).max(p);

    CostParams {
        m: m.max(1e-9),
        b,
        p,
        t: cell_bytes as f64 / network.bandwidth_bytes_per_sec,
    }
}

/// Collect histograms for predicate attributes by walking every node's
/// chunks (the engine statistics of §4, computed cluster-wide).
///
/// Nodes scan on worker threads; per-node value vectors are concatenated
/// in node-id order, so the histogram input order (and thus every bucket
/// boundary) is independent of the thread count.
fn cluster_column_stats(
    cluster: &Cluster,
    query: &JoinQuery,
    threads: usize,
) -> Result<ColumnStats> {
    let mut stats = ColumnStats::new();
    let catalog = cluster.catalog();
    for pair in &query.predicate.pairs {
        for (side, array_name, col) in [
            (JoinSide::Left, &query.left, &pair.left),
            (JoinSide::Right, &query.right, &pair.right),
        ] {
            let schema = catalog.schema(array_name)?;
            if !schema.has_attr(col) || stats.get(side, col).is_some() {
                continue;
            }
            let idx = schema.attr_index(col).map_err(JoinError::from)?;
            let (per_node, _) = par_map(threads, cluster.node_count(), |node_id| {
                let node = &cluster.nodes()[node_id];
                let mut values: Vec<Value> = Vec::new();
                for (_, chunk) in node.chunks_of(array_name) {
                    for row in 0..chunk.cells.len() {
                        values.push(chunk.cells.value(row, idx));
                    }
                }
                values
            });
            let values: Vec<Value> = per_node.into_iter().flatten().collect();
            if !values.is_empty() {
                if let Ok(hist) = Histogram::build(values, 64) {
                    stats.insert(side, col.clone(), hist);
                }
            }
        }
    }
    Ok(stats)
}

fn array_size(cluster: &Cluster, name: &str) -> Result<(u64, u64)> {
    let mut cells = 0u64;
    let mut chunks = 0u64;
    for node_id in 0..cluster.node_count() {
        let node = cluster.node(node_id)?;
        for (_, chunk) in node.chunks_of(name) {
            cells += chunk.cell_count() as u64;
            chunks += 1;
        }
    }
    // Validate the array exists even if empty.
    cluster.catalog().schema(name)?;
    Ok((cells, chunks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::MetricsView;
    use sj_cluster::{NetworkModel, Placement};

    /// Run a join and read back the legacy metrics view from telemetry.
    fn run_with_metrics(
        cluster: &Cluster,
        query: &JoinQuery,
        config: &ExecConfig,
    ) -> Result<(Array, JoinMetrics)> {
        let run = execute_join(cluster, query, config)?;
        let metrics = run
            .telemetry
            .join_metrics()
            .expect("telemetry is enabled in tests");
        Ok((run.array, metrics))
    }

    fn cluster_with(k: usize, arrays: Vec<Array>) -> Cluster {
        let mut cluster = Cluster::new(k, NetworkModel::gigabit());
        for a in arrays {
            cluster.load_array(a, &Placement::RoundRobin).unwrap();
        }
        cluster
    }

    fn dd_arrays(n: i64) -> (Array, Array) {
        let a = Array::from_cells(
            ArraySchema::parse("A<v1:int>[i=1,64,8, j=1,64,8]").unwrap(),
            (1..=n).map(|c| {
                let (i, j) = (((c - 1) / 64) % 64 + 1, (c - 1) % 64 + 1);
                (vec![i, j], vec![Value::Int(c)])
            }),
        )
        .unwrap();
        let b = Array::from_cells(
            ArraySchema::parse("B<w1:int>[i=1,64,8, j=1,64,8]").unwrap(),
            (1..=n).map(|c| {
                let (i, j) = (((c - 1) / 64) % 64 + 1, (c - 1) % 64 + 1);
                (vec![i, j], vec![Value::Int(c * 10)])
            }),
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn dd_merge_join_end_to_end() {
        let (a, b) = dd_arrays(512);
        let expect = a.cell_count();
        let cluster = cluster_with(4, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let (out, metrics) = run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        // Every cell matches its counterpart exactly once.
        assert_eq!(metrics.matches, expect);
        assert_eq!(out.cell_count(), expect);
        assert_eq!(metrics.algo, JoinAlgo::Merge);
        assert_eq!(metrics.afl, "mergeJoin(A, B)");
        out.validate().unwrap();
        // Spot-check one joined cell: A(1,1)=1 with B(1,1)=10.
        let cell = out.get(&[1, 1]).unwrap().unwrap();
        assert_eq!(cell, vec![Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn aa_hash_join_end_to_end() {
        // A<v>[i] ⋈ B<w>[j] ON v = w with a verifiable match pattern.
        let a = Array::from_cells(
            ArraySchema::parse("A<v:int>[i=1,200,25]").unwrap(),
            (1..=200).map(|i| (vec![i], vec![Value::Int(i % 50)])),
        )
        .unwrap();
        let b = Array::from_cells(
            ArraySchema::parse("B<w:int>[j=1,100,25]").unwrap(),
            (1..=100).map(|j| (vec![j], vec![Value::Int(j % 50)])),
        )
        .unwrap();
        let cluster = cluster_with(4, vec![a, b]);
        let query =
            JoinQuery::new("A", "B", JoinPredicate::new(vec![("v", "w")])).with_selectivity(1.0);
        let config = ExecConfig::builder()
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(16)
            .build()
            .unwrap();
        let (out, metrics) = run_with_metrics(&cluster, &query, &config).unwrap();
        // Each v in 0..50 appears 4x in A and 2x in B → 50 * 8 = 400.
        assert_eq!(metrics.matches, 400);
        assert_eq!(metrics.algo, JoinAlgo::Hash);
        assert!(metrics.afl.contains("hashJoin"));
        assert!(out.cell_count() <= 400); // coordinate collisions merge
        let _ = out;
    }

    #[test]
    fn all_planners_produce_identical_results() {
        let (a, b) = dd_arrays(256);
        let cluster = cluster_with(3, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let mut reference: Option<Vec<(Vec<i64>, Vec<Value>)>> = None;
        for planner in [
            PlannerKind::Baseline,
            PlannerKind::MinBandwidth,
            PlannerKind::Tabu,
            PlannerKind::Ilp {
                budget: Duration::from_secs(2),
            },
            PlannerKind::IlpCoarse {
                budget: Duration::from_secs(2),
                bins: 8,
            },
        ] {
            let config = ExecConfig::builder().planner(planner).build().unwrap();
            let (out, metrics) = run_with_metrics(&cluster, &query, &config).unwrap();
            let mut cells: Vec<_> = out.iter_cells().collect();
            cells.sort();
            match &reference {
                None => reference = Some(cells),
                Some(r) => assert_eq!(
                    r, &cells,
                    "planner {} changed the join result",
                    metrics.planner
                ),
            }
        }
    }

    #[test]
    fn skew_aware_planner_moves_less_data_than_baseline() {
        // Beneficial skew: left array dense on one node, right spread out.
        let (a, b) = dd_arrays(2048);
        let mut cluster = Cluster::new(4, NetworkModel::gigabit());
        // All of A's chunks on node 0 (hotspot); B round-robin.
        let all_on_zero: std::collections::HashMap<u64, usize> =
            (0..64u64).map(|c| (c, 0usize)).collect();
        cluster
            .load_array(a, &Placement::Explicit(all_on_zero))
            .unwrap();
        cluster.load_array(b, &Placement::RoundRobin).unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let run = |planner: PlannerKind| {
            let config = ExecConfig::builder().planner(planner).build().unwrap();
            run_with_metrics(&cluster, &query, &config).unwrap().1
        };
        let mbh = run(PlannerKind::MinBandwidth);
        let base = run(PlannerKind::Baseline);
        assert!(
            mbh.network_bytes <= base.network_bytes,
            "MBH moved {} bytes, baseline {}",
            mbh.network_bytes,
            base.network_bytes
        );
    }

    #[test]
    fn explicit_none_faults_are_bit_identical_to_default() {
        // Zero-overhead acceptance: threading FaultPlan::none() through
        // the executor must not perturb a single bit of the report or
        // the joined array.
        let (a, b) = dd_arrays(512);
        let cluster = cluster_with(4, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let (out_plain, m_plain) =
            run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        let config = ExecConfig::builder()
            .faults(FaultPlan::none())
            .build()
            .unwrap();
        let (out_faultless, m_faultless) = run_with_metrics(&cluster, &query, &config).unwrap();
        assert_eq!(m_plain.shuffle, m_faultless.shuffle);
        assert!(!m_faultless.degraded);
        assert_eq!(m_faultless.plan_tier, PlanTier::Primary);
        let cells_a: Vec<_> = out_plain.iter_cells().collect();
        let cells_b: Vec<_> = out_faultless.iter_cells().collect();
        assert_eq!(cells_a, cells_b);
    }

    #[test]
    fn join_survives_node_failure_and_lossy_links() {
        // Replicated load, then a node crash mid-shuffle plus 5% drops:
        // the join must complete with results cell-for-cell equal to the
        // fault-free run, flagged degraded, with nonzero recovery work.
        let (a, b) = dd_arrays(512);
        let mut cluster = Cluster::new(4, NetworkModel::gigabit());
        cluster
            .load_array_replicated(a, &Placement::RoundRobin, 2)
            .unwrap();
        cluster
            .load_array_replicated(b, &Placement::RoundRobin, 2)
            .unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let (clean_out, clean) =
            run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        let config = ExecConfig::builder()
            .faults(
                FaultPlan::seeded(17)
                    .with_drop_rate(0.05)
                    .with_crash(1, clean.shuffle.makespan / 2.0),
            )
            .build()
            .unwrap();
        let (out, metrics) = run_with_metrics(&cluster, &query, &config).unwrap();
        assert!(metrics.degraded);
        assert_eq!(metrics.shuffle.failed_nodes, vec![1]);
        assert!(metrics.shuffle.reroutes > 0, "dead node's slices must move");
        assert!(metrics.shuffle.recovery_bytes > 0);
        assert_eq!(metrics.matches, clean.matches);
        // The failure changes the schedule, never the answer.
        let mut clean_cells: Vec<_> = clean_out.iter_cells().collect();
        let mut cells: Vec<_> = out.iter_cells().collect();
        clean_cells.sort();
        cells.sort();
        assert_eq!(clean_cells, cells);
        // Nothing lands on (or is attributed to) the dead node.
        assert_eq!(metrics.per_node_comparison[1], 0.0);
    }

    #[test]
    fn zero_budget_ilp_degrades_to_greedy_tier_not_error() {
        // Hotspot placement (everything on node 0) makes the greedy warm
        // start suboptimal, so a zero ILP budget cannot prove it optimal:
        // the join must still run, recording the greedy tier — never an
        // executor error.
        let (a, b) = dd_arrays(256);
        let all_on_zero: std::collections::HashMap<u64, usize> =
            (0..64u64).map(|c| (c, 0usize)).collect();
        let mut cluster = Cluster::new(4, NetworkModel::gigabit());
        cluster
            .load_array(a, &Placement::Explicit(all_on_zero.clone()))
            .unwrap();
        cluster
            .load_array(b, &Placement::Explicit(all_on_zero))
            .unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let config = ExecConfig::builder()
            .planner(PlannerKind::Ilp {
                budget: Duration::ZERO,
            })
            .forced_algo(JoinAlgo::Hash)
            .hash_buckets(32)
            // Comparison-dominant costs: spreading beats hoarding, so
            // the MBH warm start (everything on node 0) is suboptimal.
            .cost_params(CostParams {
                m: 1.0,
                b: 2.0,
                p: 1.0,
                t: 1e-9,
            })
            .build()
            .unwrap();
        let (_, metrics) = run_with_metrics(&cluster, &query, &config).unwrap();
        assert_eq!(metrics.plan_tier, PlanTier::Greedy);
        assert_eq!(metrics.matches, 256);
    }

    #[test]
    fn missing_array_is_an_error() {
        let (a, _) = dd_arrays(64);
        let cluster = cluster_with(2, vec![a]);
        let query = JoinQuery::new("A", "NOPE", JoinPredicate::new(vec![("i", "i")]));
        assert!(execute_join(&cluster, &query, &ExecConfig::default()).is_err());
    }

    #[test]
    fn single_node_cluster_runs_without_network() {
        let (a, b) = dd_arrays(128);
        let cluster = cluster_with(1, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let (_, metrics) = run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        assert_eq!(metrics.network_bytes, 0);
        assert_eq!(metrics.alignment_seconds, 0.0);
        assert_eq!(metrics.matches, 128);
    }

    #[test]
    fn explicit_output_schema_is_respected() {
        let (a, b) = dd_arrays(128);
        let cluster = cluster_with(2, vec![a, b]);
        let out_schema = ArraySchema::parse("C<A.v1:int, B.w1:int>[i=1,64,8, j=1,64,8]").unwrap();
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]))
            .into_schema(out_schema);
        let (out, _) = run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        assert_eq!(out.schema.name, "C");
        assert_eq!(out.schema.attrs[0].name, "A.v1");
        let cell = out.get(&[1, 2]).unwrap().unwrap();
        assert_eq!(cell.len(), 2);
    }

    #[test]
    fn mixed_ad_join_executes() {
        // A.i (dimension) = B.w (attribute) — the join type current
        // array databases do not support (§2.3).
        let a = Array::from_cells(
            ArraySchema::parse("A<v:int>[i=1,50,10]").unwrap(),
            (1..=50).map(|i| (vec![i], vec![Value::Int(100 + i)])),
        )
        .unwrap();
        let b = Array::from_cells(
            ArraySchema::parse("B<w:int>[j=1,20,5]").unwrap(),
            (1..=20).map(|j| (vec![j], vec![Value::Int(j * 2)])),
        )
        .unwrap();
        let cluster = cluster_with(2, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "w")]));
        let (_, metrics) = run_with_metrics(&cluster, &query, &ExecConfig::default()).unwrap();
        // B.w takes even values 2..=40, all within A.i's range 1..=50
        // → 20 matches.
        assert_eq!(metrics.matches, 20);
    }

    #[test]
    fn builder_rejects_incoherent_configs() {
        assert!(matches!(
            ExecConfig::builder().hash_buckets(0).build(),
            Err(JoinError::Config(_))
        ));
        // Lossy fault plan with retries disabled could never recover.
        let lossy = FaultPlan::seeded(1).with_drop_rate(0.1).with_max_retries(0);
        assert!(matches!(
            ExecConfig::builder().faults(lossy).build(),
            Err(JoinError::Config(_))
        ));
        // The rate setters assert; a hand-built plan can still smuggle a
        // bad rate in through the public field — the builder catches it.
        let mut bad_rate = FaultPlan::seeded(1);
        bad_rate.drop_rate = 1.5;
        assert!(ExecConfig::builder().faults(bad_rate).build().is_err());
        assert!(matches!(
            ExecConfig::builder()
                .telemetry(TelemetryConfig::Json {
                    path: String::new()
                })
                .build(),
            Err(JoinError::Config(_))
        ));
        // Coherent combos pass through unchanged.
        let ok = ExecConfig::builder()
            .threads(2)
            .planner(PlannerKind::MinBandwidth)
            .telemetry(TelemetryConfig::Off)
            .build()
            .unwrap();
        assert_eq!(ok.threads, 2);
        assert_eq!(ok.telemetry, TelemetryConfig::Off);
    }

    #[test]
    fn telemetry_off_disables_views_but_not_results() {
        let (a, b) = dd_arrays(128);
        let cluster = cluster_with(2, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let config = ExecConfig::builder()
            .telemetry(TelemetryConfig::Off)
            .build()
            .unwrap();
        let run = execute_join(&cluster, &query, &config).unwrap();
        assert!(!run.telemetry.enabled);
        assert!(run.telemetry.roots.is_empty());
        assert!(run.telemetry.join_metrics().is_none());
        assert_eq!(run.array.cell_count(), 128);
    }

    #[test]
    fn join_span_covers_the_phases() {
        let (a, b) = dd_arrays(4096);
        let cluster = cluster_with(3, vec![a, b]);
        let query = JoinQuery::new("A", "B", JoinPredicate::new(vec![("i", "i"), ("j", "j")]));
        let run = execute_join(&cluster, &query, &ExecConfig::default()).unwrap();
        let join = run.telemetry.find("join").expect("join span recorded");
        for phase in [
            "logical_plan",
            "slice_map",
            "physical_plan",
            "shuffle",
            "execute",
            "output",
        ] {
            assert!(join.child(phase).is_some(), "missing phase span {phase}");
        }
        assert_eq!(join.children_named("node").count(), 0);
        let execute = join.child("execute").unwrap();
        assert_eq!(execute.children_named("node").count(), 3);
        let units: usize = execute
            .children_named("node")
            .map(|n| n.children_named("unit").count())
            .sum();
        assert!(units > 0, "assigned units must appear under their nodes");
        // The named phases account for (nearly) all of the join's wall
        // time. The strict 95% acceptance bar is enforced on the
        // release-build fig8 run (`examples/profile_query.rs`, wired
        // into verify.sh); this debug-build unit test allows a margin
        // for the unamortized fixed overhead of a small workload.
        assert!(
            join.child_coverage() >= 0.90,
            "phase coverage {} < 0.90",
            join.child_coverage()
        );
    }
}

#[cfg(test)]
mod calibration_tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_magnitudes() {
        let net = sj_cluster::NetworkModel::gigabit();
        let p = calibrate_cost_params(&net, 32);
        // Per-cell compute for this interpreted engine: between 10ns and
        // 1ms (very loose sanity bounds; debug builds are slow).
        assert!(p.m > 1e-8 && p.m < 1e-3, "m = {}", p.m);
        assert!(
            p.b >= p.p,
            "build ({}) should cost at least probe ({})",
            p.b,
            p.p
        );
        assert!((p.t - 32.0 / 117.0e6).abs() < 1e-12);
    }
}
