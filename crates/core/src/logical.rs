//! Logical join optimization (paper §4).
//!
//! The logical planner enumerates plans of the form
//! `out-align( joinAlgo( α-align(α), β-align(β) ) )` via the dynamic
//! programming loop of Algorithm 1, validates each combination, costs it
//! with the analytical model of Table 1, and returns the cheapest.

use std::fmt;

use crate::algorithms::JoinAlgo;
use crate::error::{JoinError, Result};
use crate::join_schema::JoinSchema;
use crate::predicate::JoinSide;
use crate::unit::JoinUnitSpec;

use sj_array::ArraySchema;

/// Schema-alignment operator applied to a join input (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignOp {
    /// Pass-through; valid only when the source already matches `J`.
    Scan,
    /// Re-tile to `J` and sort each chunk → ordered chunks.
    Redim,
    /// Re-tile to `J` without sorting → unordered chunks.
    Rechunk,
    /// Hash cells into buckets → unordered, dimension-less buckets.
    Hash,
}

impl AlignOp {
    fn name(&self) -> &'static str {
        match self {
            AlignOp::Scan => "scan",
            AlignOp::Redim => "redim",
            AlignOp::Rechunk => "rechunk",
            AlignOp::Hash => "hash",
        }
    }

    /// Whether the operator's output is ordered chunks.
    pub fn ordered_output(&self) -> bool {
        matches!(self, AlignOp::Scan | AlignOp::Redim)
    }
}

/// Output-organization operator applied after cell comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutOp {
    /// Results are already tiled and ordered for τ.
    Scan,
    /// Results share τ's tiling but need a per-chunk sort.
    Sort,
    /// Re-tile and sort results into τ.
    Redim,
}

impl OutOp {
    fn name(&self) -> &'static str {
        match self {
            OutOp::Scan => "scan",
            OutOp::Sort => "sort",
            OutOp::Redim => "redim",
        }
    }
}

/// Inputs to the logical cost model.
#[derive(Debug, Clone, Copy)]
pub struct LogicalStats {
    /// Cell count of the left input.
    pub n_left: u64,
    /// Stored chunk count of the left input.
    pub c_left: u64,
    /// Cell count of the right input.
    pub n_right: u64,
    /// Stored chunk count of the right input.
    pub c_right: u64,
    /// Estimated join selectivity: output cells ≈ `sel · (n_left + n_right)`
    /// (the paper's definition, §6.1).
    pub selectivity: f64,
    /// Number of cluster nodes (the distributed model divides work by k).
    pub nodes: usize,
    /// Bucket count to use for hash-partitioned plans.
    pub hash_buckets: usize,
}

impl LogicalStats {
    /// Stats for two arrays on a `nodes`-node cluster with a selectivity
    /// estimate. Bucket count defaults to a moderate-size heuristic
    /// (paper §3.3: units of "tens of megabytes").
    pub fn for_arrays(
        left: &sj_array::Array,
        right: &sj_array::Array,
        selectivity: f64,
        nodes: usize,
    ) -> Self {
        let n_left = left.cell_count() as u64;
        let n_right = right.cell_count() as u64;
        let buckets = ((n_left + n_right) / 65_536).clamp(16 * nodes as u64, 4096) as usize;
        LogicalStats {
            n_left,
            c_left: left.chunk_count().max(1) as u64,
            n_right,
            c_right: right.chunk_count().max(1) as u64,
            selectivity,
            nodes: nodes.max(1),
            hash_buckets: buckets,
        }
    }

    fn n_out(&self) -> f64 {
        self.selectivity * (self.n_left + self.n_right) as f64
    }
}

/// Cost breakdown of a logical plan, in per-cell work units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Cost of aligning the left input.
    pub left_align: f64,
    /// Cost of aligning the right input.
    pub right_align: f64,
    /// Cell-comparison cost.
    pub compare: f64,
    /// Output-organization cost.
    pub output: f64,
}

impl PlanCost {
    /// Total plan cost.
    pub fn total(&self) -> f64 {
        self.left_align + self.right_align + self.compare + self.output
    }
}

/// One logical join plan.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    /// Alignment of the left input.
    pub left_align: AlignOp,
    /// Alignment of the right input.
    pub right_align: AlignOp,
    /// The join algorithm.
    pub algo: JoinAlgo,
    /// Output organization.
    pub out: OutOp,
    /// How cells group into join units under this plan.
    pub unit_spec: JoinUnitSpec,
    /// The analytical cost.
    pub cost: PlanCost,
}

impl LogicalPlan {
    /// Render the plan as an AFL operator workflow, e.g.
    /// `redim(hashJoin(hash(A), hash(B)), C)`.
    pub fn render_afl(&self, left: &str, right: &str, out: &str) -> String {
        let a = match self.left_align {
            AlignOp::Scan => left.to_string(),
            op => format!("{}({left}, J)", op.name()),
        };
        let b = match self.right_align {
            AlignOp::Scan => right.to_string(),
            op => format!("{}({right}, J)", op.name()),
        };
        let join = format!("{}({a}, {b})", self.algo.name());
        match self.out {
            OutOp::Scan => join,
            OutOp::Sort => format!("sort({join})"),
            OutOp::Redim => format!("redim({join}, {out})"),
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} ⋈ {}] → {} (cost {:.3e})",
            self.algo.name(),
            self.left_align.name(),
            self.right_align.name(),
            self.out.name(),
            self.cost.total()
        )
    }
}

fn nlog(n: f64, chunks: f64) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    let per_chunk = (n / chunks.max(1.0)).max(2.0);
    n * per_chunk.log2()
}

/// Cost of one alignment operator (Table 1), divided by `k` nodes.
fn align_cost(op: AlignOp, n: f64, target_chunks: f64, k: f64) -> f64 {
    match op {
        AlignOp::Scan => 0.0,
        AlignOp::Redim => (n + nlog(n, target_chunks)) / k,
        AlignOp::Rechunk => n / k,
        AlignOp::Hash => n / k,
    }
}

/// Cell-comparison cost (§4): linear for hash/merge, quadratic for
/// nested loop; divided by `k` nodes.
fn compare_cost(algo: JoinAlgo, n_a: f64, n_b: f64, k: f64) -> f64 {
    match algo {
        JoinAlgo::Hash | JoinAlgo::Merge => (n_a + n_b) / k,
        JoinAlgo::NestedLoop => {
            // Per join unit the loop is |a_u|·|b_u|; summed over units it
            // is ~ (n_a·n_b)/units when cells spread evenly. Model the
            // partitioned quadratic cost, not the full cross product.
            n_a * n_b / k
        }
    }
}

fn out_cost(op: OutOp, n_out: f64, out_chunks: f64, k: f64) -> f64 {
    match op {
        OutOp::Scan => 0.0,
        OutOp::Sort => nlog(n_out, out_chunks) / k,
        OutOp::Redim => (n_out + nlog(n_out, out_chunks)) / k,
    }
}

/// Enumerate every *valid* logical plan for the query, costed
/// (Algorithm 1's plan list before the `min`).
pub fn enumerate_plans(
    js: &JoinSchema,
    left_schema: &ArraySchema,
    right_schema: &ArraySchema,
    stats: &LogicalStats,
) -> Vec<LogicalPlan> {
    let aligns = [
        AlignOp::Scan,
        AlignOp::Redim,
        AlignOp::Rechunk,
        AlignOp::Hash,
    ];
    let algos = [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop];
    let outs = [OutOp::Scan, OutOp::Sort, OutOp::Redim];
    let k = stats.nodes as f64;
    let left_matches = js.side_matches_j(JoinSide::Left, left_schema);
    let right_matches = js.side_matches_j(JoinSide::Right, right_schema);
    let out_matches_j = js.output_matches_j();
    let chunk_units = JoinUnitSpec::Chunks {
        dims: js.dims.clone(),
    };
    let j_chunks = chunk_units.n_units() as f64;
    let out_chunks = js.output.total_chunks() as f64;

    let mut plans = Vec::new();
    for &a in &aligns {
        for &b in &aligns {
            for &algo in &algos {
                for &out in &outs {
                    if !validate(a, b, algo, out, left_matches, right_matches, out_matches_j) {
                        continue;
                    }
                    let unit_spec = if a == AlignOp::Hash {
                        JoinUnitSpec::HashBuckets {
                            n: stats.hash_buckets,
                        }
                    } else {
                        chunk_units.clone()
                    };
                    let target_chunks = match unit_spec {
                        JoinUnitSpec::HashBuckets { n } => n as f64,
                        JoinUnitSpec::Chunks { .. } => j_chunks,
                    };
                    let cost = PlanCost {
                        left_align: align_cost(a, stats.n_left as f64, target_chunks, k),
                        right_align: align_cost(b, stats.n_right as f64, target_chunks, k),
                        compare: compare_cost(algo, stats.n_left as f64, stats.n_right as f64, k),
                        output: out_cost(out, stats.n_out(), out_chunks, k),
                    };
                    plans.push(LogicalPlan {
                        left_align: a,
                        right_align: b,
                        algo,
                        out,
                        unit_spec,
                        cost,
                    });
                }
            }
        }
    }
    plans
}

/// `validatePlan` from Algorithm 1.
fn validate(
    a: AlignOp,
    b: AlignOp,
    algo: JoinAlgo,
    out: OutOp,
    left_matches: bool,
    right_matches: bool,
    out_matches_j: bool,
) -> bool {
    // Scan is only access, not reorganization: the source must already
    // be in J-space.
    if a == AlignOp::Scan && !left_matches {
        return false;
    }
    if b == AlignOp::Scan && !right_matches {
        return false;
    }
    // Join units must be built the same way on both sides.
    if (a == AlignOp::Hash) != (b == AlignOp::Hash) {
        return false;
    }
    // §3.3 pairs unit kinds with algorithms: "ordered chunks are used as
    // join units to merge joins, hash buckets to hash joins". Without
    // this, an equal-cost rechunk plan always ties the hash alignment and
    // wins by enumeration order, so hash-bucket units never materialize.
    if (algo == JoinAlgo::Hash) != (a == AlignOp::Hash) {
        return false;
    }
    // Merge join requires ordered chunks on both inputs.
    if algo == JoinAlgo::Merge && !(a.ordered_output() && b.ordered_output()) {
        return false;
    }
    // Output validation: a scan after the join requires results already
    // tiled AND ordered for τ — only a merge join over J = τ delivers
    // that ("precluding a scan after a hash or nested loop join for
    // destination schemas that have dimensions"). A bare sort suffices
    // only when results are already tiled for τ, i.e. the join units were
    // chunks of J = τ (hash buckets are not tiles).
    let hash_units = a == AlignOp::Hash;
    match out {
        OutOp::Scan => out_matches_j && algo == JoinAlgo::Merge && !hash_units,
        OutOp::Sort => out_matches_j && !hash_units,
        OutOp::Redim => true,
    }
}

/// Pick the cheapest valid plan (Algorithm 1's `min(planList)`).
pub fn plan_join(
    js: &JoinSchema,
    left_schema: &ArraySchema,
    right_schema: &ArraySchema,
    stats: &LogicalStats,
) -> Result<LogicalPlan> {
    enumerate_plans(js, left_schema, right_schema, stats)
        .into_iter()
        .min_by(|p, q| p.cost.total().total_cmp(&q.cost.total()))
        .ok_or_else(|| JoinError::NoValidPlan("empty plan list".into()))
}

/// The cheapest valid plan that uses a specific join algorithm — used by
/// the evaluation harness to compare Merge / Hash / NestedLoop plans as
/// in paper §6.1.
pub fn plan_join_with_algo(
    js: &JoinSchema,
    left_schema: &ArraySchema,
    right_schema: &ArraySchema,
    stats: &LogicalStats,
    algo: JoinAlgo,
) -> Result<LogicalPlan> {
    enumerate_plans(js, left_schema, right_schema, stats)
        .into_iter()
        .filter(|p| p.algo == algo)
        .min_by(|p, q| p.cost.total().total_cmp(&q.cost.total()))
        .ok_or_else(|| JoinError::NoValidPlan(format!("no valid plan uses {}", algo.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_schema::{infer_join_schema, ColumnStats};
    use crate::predicate::JoinPredicate;
    use sj_array::{Histogram, Value};

    /// D:D fixture: same-shaped 2-D arrays (the §6.2.1 merge query).
    fn dd() -> (ArraySchema, ArraySchema, JoinSchema) {
        let a = ArraySchema::parse("A<v1:int, v2:int>[i=1,64,8, j=1,64,8]").unwrap();
        let b = ArraySchema::parse("B<v1:int, v2:int>[i=1,64,8, j=1,64,8]").unwrap();
        let p = JoinPredicate::new(vec![("i", "i"), ("j", "j")]);
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        (a, b, js)
    }

    /// A:A fixture: the §6.1 logical-planning query, with the paper's
    /// explicit destination `SELECT * INTO C<i,j>[v] FROM A, B WHERE
    /// A.v = B.w` — the predicate attribute is the output's dimension.
    fn aa() -> (ArraySchema, ArraySchema, JoinSchema) {
        let a = ArraySchema::parse("A<v:int>[i=1,1024,64]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,1024,64]").unwrap();
        let out = ArraySchema::parse("C<i:int, j:int>[v=1,1024,64]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let mut stats = ColumnStats::new();
        for (side, col) in [(JoinSide::Left, "v"), (JoinSide::Right, "w")] {
            stats.insert(
                side,
                col,
                Histogram::build((1..=1024).map(Value::Int), 16).unwrap(),
            );
        }
        let js = infer_join_schema(&a, &b, &p, Some(out), &stats).unwrap();
        (a, b, js)
    }

    fn stats(n: u64, sel: f64) -> LogicalStats {
        LogicalStats {
            n_left: n,
            c_left: 64,
            n_right: n,
            c_right: 64,
            selectivity: sel,
            nodes: 1,
            hash_buckets: 64,
        }
    }

    #[test]
    fn dd_join_prefers_plain_merge_scan() {
        // Identical shapes: the no-reorganization plan must win
        // ("plans that do not call for reorganization … will be favored").
        let (a, b, js) = dd();
        let plan = plan_join(&js, &a, &b, &stats(100_000, 1.0)).unwrap();
        assert_eq!(plan.algo, JoinAlgo::Merge);
        assert_eq!(plan.left_align, AlignOp::Scan);
        assert_eq!(plan.right_align, AlignOp::Scan);
        assert_eq!(plan.out, OutOp::Scan);
        assert_eq!(plan.cost.left_align, 0.0);
        assert_eq!(plan.render_afl("A", "B", "C"), "mergeJoin(A, B)");
    }

    #[test]
    fn aa_join_cannot_scan_align() {
        let (a, b, js) = aa();
        for plan in enumerate_plans(&js, &a, &b, &stats(100_000, 0.1)) {
            assert_ne!(plan.left_align, AlignOp::Scan);
            assert_ne!(plan.right_align, AlignOp::Scan);
        }
    }

    #[test]
    fn hash_aligns_must_pair() {
        let (a, b, js) = aa();
        for plan in enumerate_plans(&js, &a, &b, &stats(100_000, 0.1)) {
            assert_eq!(
                plan.left_align == AlignOp::Hash,
                plan.right_align == AlignOp::Hash,
                "mismatched units in {plan}"
            );
            if plan.algo == JoinAlgo::Merge {
                assert!(plan.left_align.ordered_output());
                assert!(plan.right_align.ordered_output());
            }
        }
    }

    #[test]
    fn low_selectivity_prefers_hash_high_prefers_merge() {
        // Paper Figure 6: hash wins at selectivity < 1 (defer the sort to
        // the small output); merge wins at selectivity ≥ 1 (front-load
        // sorting on the smaller inputs).
        let (a, b, js) = aa();
        let low = plan_join(&js, &a, &b, &stats(1_000_000, 0.01)).unwrap();
        assert_eq!(low.algo, JoinAlgo::Hash, "low selectivity: {low}");
        let high = plan_join(&js, &a, &b, &stats(1_000_000, 100.0)).unwrap();
        assert_eq!(high.algo, JoinAlgo::Merge, "high selectivity: {high}");
    }

    #[test]
    fn nested_loop_is_never_chosen() {
        // Paper §6.1: "the nested loop join is never a profitable plan".
        let (a, b, js) = aa();
        for sel in [0.01, 0.1, 1.0, 10.0, 100.0] {
            let plan = plan_join(&js, &a, &b, &stats(1_000_000, sel)).unwrap();
            assert_ne!(plan.algo, JoinAlgo::NestedLoop, "sel {sel}: {plan}");
        }
    }

    #[test]
    fn nested_loop_cost_dominates() {
        let (a, b, js) = aa();
        let st = stats(1_000_000, 1.0);
        let nl = plan_join_with_algo(&js, &a, &b, &st, JoinAlgo::NestedLoop).unwrap();
        let h = plan_join_with_algo(&js, &a, &b, &st, JoinAlgo::Hash).unwrap();
        assert!(nl.cost.total() > 100.0 * h.cost.total());
    }

    #[test]
    fn distributed_cost_divides_by_k() {
        let (a, b, js) = aa();
        let mut s1 = stats(1_000_000, 1.0);
        let mut s4 = s1;
        s1.nodes = 1;
        s4.nodes = 4;
        let p1 = plan_join_with_algo(&js, &a, &b, &s1, JoinAlgo::Hash).unwrap();
        let p4 = plan_join_with_algo(&js, &a, &b, &s4, JoinAlgo::Hash).unwrap();
        assert!((p1.cost.total() / p4.cost.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn afl_rendering() {
        let (a, b, js) = aa();
        let st = stats(1_000_000, 0.01);
        let h = plan_join_with_algo(&js, &a, &b, &st, JoinAlgo::Hash).unwrap();
        let afl = h.render_afl("A", "B", "C");
        assert!(afl.contains("hashJoin"), "{afl}");
        let m = plan_join_with_algo(&js, &a, &b, &st, JoinAlgo::Merge).unwrap();
        // With τ = J (the paper's INTO C[v]), the merge plan front-loads
        // all reordering: no output step is needed.
        assert_eq!(
            m.render_afl("A", "B", "C"),
            "mergeJoin(redim(A, J), redim(B, J))"
        );
    }

    #[test]
    fn every_enumerated_plan_is_valid() {
        let (a, b, js) = aa();
        let plans = enumerate_plans(&js, &a, &b, &stats(10_000, 1.0));
        assert!(!plans.is_empty());
        for p in &plans {
            // Merge never consumes hash buckets.
            if p.algo == JoinAlgo::Merge {
                assert!(matches!(p.unit_spec, JoinUnitSpec::Chunks { .. }));
            }
            // Scan-out only after merge (outputs of hash/NL are unsorted).
            if p.out == OutOp::Scan {
                assert_eq!(p.algo, JoinAlgo::Merge);
            }
            assert!(p.cost.total().is_finite());
        }
    }

    #[test]
    fn dd_with_mismatched_chunking_requires_reorg() {
        let a = ArraySchema::parse("A<v:int>[i=1,64,8]").unwrap();
        let b = ArraySchema::parse("B<w:int>[i=1,64,16]").unwrap();
        let p = JoinPredicate::new(vec![("i", "i")]);
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        let plan = plan_join(&js, &a, &b, &stats(10_000, 1.0)).unwrap();
        // At least one side must reorganize (J interval is 16: B matches,
        // A does not).
        assert_ne!(plan.left_align, AlignOp::Scan);
    }
}
