//! Join units and slices (paper §3.1).
//!
//! A *join unit* is a non-overlapping collection of cells grouped by the
//! join predicate — the granularity at which work is assigned to nodes. A
//! *slice* is the portion of one join unit stored on one node — the
//! granularity of network transfer. Cells map to units either by range
//! partitioning over the join schema's chunk grid (merge-join plans) or
//! by a hash function (hash-join plans).
//!
//! Inside units, cells of both sides are held in a uniform dimension-less
//! columnar layout ([`UnitLayout`]): the source array's dimensions are
//! materialized as leading integer columns followed by its attributes, so
//! any column can be emitted into the output regardless of how the source
//! was tiled.

use sj_array::keys;
use sj_array::ops::{hash_key, kernels};
use sj_array::{ArraySchema, CellBatch, Chunk, DataType, DimensionDef, Value};

use crate::error::{JoinError, Result};

/// The column layout of one side's cells inside join units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitLayout {
    /// Column names: source dimensions first, then source attributes.
    pub names: Vec<String>,
    /// Column types (dimensions are `Int64`).
    pub types: Vec<DataType>,
    /// Number of leading columns that were source dimensions.
    pub ndims: usize,
    /// Indices of the predicate key columns, in predicate-pair order.
    pub key_cols: Vec<usize>,
}

impl UnitLayout {
    /// Build the layout for `schema` with the given key column names.
    pub fn of_schema(schema: &ArraySchema, keys: &[String]) -> Result<Self> {
        let mut names: Vec<String> = Vec::with_capacity(schema.ndims() + schema.nattrs());
        let mut types: Vec<DataType> = Vec::with_capacity(names.capacity());
        for d in &schema.dims {
            names.push(d.name.clone());
            types.push(DataType::Int64);
        }
        for a in &schema.attrs {
            names.push(a.name.clone());
            types.push(a.dtype);
        }
        let key_cols = keys
            .iter()
            .map(|k| {
                names
                    .iter()
                    .position(|n| n == k)
                    .ok_or_else(|| JoinError::UnknownColumn(k.clone()))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(UnitLayout {
            names,
            types,
            ndims: schema.ndims(),
            key_cols,
        })
    }

    /// Index of the named column, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// An empty cell batch in this layout (dimension-less).
    pub fn empty_batch(&self) -> CellBatch {
        CellBatch::new(0, &self.types)
    }

    /// Bytes per cell in this layout (for transfer costing).
    pub fn cell_bytes(&self) -> usize {
        self.types.iter().map(|t| t.byte_width()).sum()
    }

    /// Convert one chunk of the source array into this layout, appending
    /// onto `out`. Column-at-a-time: coordinates and attributes are bulk
    /// copied without materializing per-cell `Value`s (shared
    /// [`kernels::flatten_into`] kernel, also used by hash partitioning).
    pub fn flatten_chunk(&self, chunk: &Chunk, out: &mut CellBatch) -> Result<()> {
        debug_assert_eq!(self.ndims, chunk.cells.ndims());
        kernels::flatten_into(&chunk.cells, out)?;
        Ok(())
    }

    /// Extract the key values of row `row` in a flattened batch.
    pub fn key_of(&self, batch: &CellBatch, row: usize) -> Vec<Value> {
        self.key_cols
            .iter()
            .map(|&c| batch.attrs[c].get(row))
            .collect()
    }

    /// [`UnitLayout::key_of`] into a caller-owned buffer (no allocation on
    /// the per-row path).
    pub fn key_into(&self, batch: &CellBatch, row: usize, buf: &mut Vec<Value>) {
        buf.clear();
        for &c in &self.key_cols {
            buf.push(batch.attrs[c].get(row));
        }
    }
}

/// How cells are grouped into join units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinUnitSpec {
    /// Range partitioning by the join schema's chunk grid: unit = the
    /// linear chunk id of the cell's key coordinates under `dims`.
    /// Used by merge-join plans ("ordered chunks are used as join units
    /// to merge joins", §3.3).
    Chunks {
        /// The join schema's dimensions.
        dims: Vec<DimensionDef>,
    },
    /// Hash partitioning of the key tuple into `n` buckets ("hash
    /// buckets to hash joins").
    HashBuckets {
        /// Number of buckets (= number of join units).
        n: usize,
    },
}

impl JoinUnitSpec {
    /// Total number of join units this spec produces.
    pub fn n_units(&self) -> usize {
        match self {
            JoinUnitSpec::Chunks { dims } => {
                dims.iter().map(|d| d.chunk_count()).product::<u64>().max(1) as usize
            }
            JoinUnitSpec::HashBuckets { n } => (*n).max(1),
        }
    }

    /// The join unit of a cell with the given predicate key values.
    ///
    /// Range partitioning clamps out-of-range coordinates into the edge
    /// chunks — a monotone map, so equal keys always share a unit and no
    /// matches are lost.
    pub fn unit_of(&self, key: &[Value]) -> Result<usize> {
        match self {
            JoinUnitSpec::Chunks { dims } => {
                debug_assert_eq!(key.len(), dims.len());
                let mut unit = 0u64;
                for (d, v) in dims.iter().zip(key) {
                    let coord = v.to_coord().map_err(|e| {
                        JoinError::InvalidPredicate(format!(
                            "non-integral key value for join dimension `{}`: {e}",
                            d.name
                        ))
                    })?;
                    let clamped = coord.clamp(d.start, d.end);
                    let idx = (clamped - d.start) as u64 / d.chunk_interval;
                    unit = unit * d.chunk_count() + idx;
                }
                Ok(unit as usize)
            }
            JoinUnitSpec::HashBuckets { n } => Ok((hash_key(key) % (*n).max(1) as u64) as usize),
        }
    }

    /// [`JoinUnitSpec::unit_of`] reading the key columns of one row
    /// directly — no per-row `Value` materialization. [`keys::hash_row`]
    /// is bit-identical to [`hash_key`] over the materialized key, so
    /// both entry points route cells identically.
    pub fn unit_of_row(&self, batch: &CellBatch, key_cols: &[usize], row: usize) -> Result<usize> {
        match self {
            JoinUnitSpec::Chunks { dims } => {
                debug_assert_eq!(key_cols.len(), dims.len());
                let mut unit = 0u64;
                for (d, &c) in dims.iter().zip(key_cols) {
                    let coord = batch.attrs[c].coord_at(row).map_err(|e| {
                        JoinError::InvalidPredicate(format!(
                            "non-integral key value for join dimension `{}`: {e}",
                            d.name
                        ))
                    })?;
                    let clamped = coord.clamp(d.start, d.end);
                    let idx = (clamped - d.start) as u64 / d.chunk_interval;
                    unit = unit * d.chunk_count() + idx;
                }
                Ok(unit as usize)
            }
            JoinUnitSpec::HashBuckets { n } => {
                Ok((keys::hash_row(batch, key_cols, row) % (*n).max(1) as u64) as usize)
            }
        }
    }

    /// Whether units of this spec carry a dimension-space sort order
    /// (chunks are ordered; hash buckets are not).
    pub fn ordered(&self) -> bool {
        matches!(self, JoinUnitSpec::Chunks { .. })
    }
}

/// All slices of one side produced by one node's slice mapping:
/// `slices[u]` holds the node's local cells of join unit `u`.
#[derive(Debug, Clone)]
pub struct SliceSet {
    /// Per-unit cell batches (dimension-less, in the side's layout).
    pub slices: Vec<CellBatch>,
}

impl SliceSet {
    /// Empty slice set for `n_units` units in `layout`.
    pub fn new(n_units: usize, layout: &UnitLayout) -> Self {
        SliceSet {
            slices: (0..n_units).map(|_| layout.empty_batch()).collect(),
        }
    }

    /// Cell counts per unit.
    pub fn sizes(&self) -> Vec<usize> {
        self.slices.iter().map(CellBatch::len).collect()
    }

    /// Total cells across all slices.
    pub fn cell_count(&self) -> usize {
        self.slices.iter().map(CellBatch::len).sum()
    }
}

/// Map one node's local chunks of an array into per-unit slices — the
/// "slice function … applied in parallel to their local cells" (§3.3).
pub fn map_slices<'a>(
    chunks: impl Iterator<Item = &'a Chunk>,
    layout: &UnitLayout,
    spec: &JoinUnitSpec,
) -> Result<SliceSet> {
    let mut set = SliceSet::new(spec.n_units(), layout);
    // One flattening buffer reused across chunks (capacity persists);
    // rows route columnar-ly — no per-chunk/per-row allocation.
    let mut flat = layout.empty_batch();
    // Hash buffer for the batched bucket-routing path, likewise reused.
    let mut hashes: Vec<u64> = Vec::new();
    for chunk in chunks {
        flat.clear();
        layout.flatten_chunk(chunk, &mut flat)?;
        match spec {
            // Hash routing: one batched columnar hash pass per chunk
            // ([`keys::hash_rows_into`], bit-identical per row to
            // [`keys::hash_row`]) instead of a per-row hash call.
            JoinUnitSpec::HashBuckets { n } => {
                let m = (*n).max(1) as u64;
                keys::hash_rows_into(&flat, &layout.key_cols, &mut hashes);
                kernels::scatter_into::<JoinError>(&flat, &mut set.slices, |_, row| {
                    Ok((hashes[row] % m) as usize)
                })?;
            }
            JoinUnitSpec::Chunks { .. } => {
                kernels::scatter_into::<JoinError>(&flat, &mut set.slices, |f, row| {
                    spec.unit_of_row(f, &layout.key_cols, row)
                })?;
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::Array;

    fn schema() -> ArraySchema {
        ArraySchema::parse("A<v:int, f:float>[i=1,40,10]").unwrap()
    }

    fn array() -> Array {
        Array::from_cells(
            schema(),
            (1..=40).map(|i| (vec![i], vec![Value::Int(i % 5), Value::Float(i as f64)])),
        )
        .unwrap()
    }

    #[test]
    fn layout_materializes_dims_first() {
        let l = UnitLayout::of_schema(&schema(), &["v".to_string()]).unwrap();
        assert_eq!(l.names, vec!["i", "v", "f"]);
        assert_eq!(l.ndims, 1);
        assert_eq!(l.key_cols, vec![1]);
        assert_eq!(l.column_index("f"), Some(2));
        assert_eq!(l.cell_bytes(), 24);
        assert!(UnitLayout::of_schema(&schema(), &["zzz".to_string()]).is_err());
    }

    #[test]
    fn flatten_chunk_round_trips_cells() {
        let a = array();
        let l = UnitLayout::of_schema(&schema(), &["i".to_string()]).unwrap();
        let mut out = l.empty_batch();
        let (_, chunk) = a.chunks().next().unwrap();
        l.flatten_chunk(chunk, &mut out).unwrap();
        assert_eq!(out.len(), 10);
        // Row 0: i=1, v=1, f=1.0
        assert_eq!(out.attrs[0].get(0), Value::Int(1));
        assert_eq!(out.attrs[1].get(0), Value::Int(1));
        assert_eq!(out.attrs[2].get(0), Value::Float(1.0));
    }

    #[test]
    fn chunk_spec_units_by_range() {
        let dims = vec![DimensionDef::new("i", 1, 40, 10).unwrap()];
        let spec = JoinUnitSpec::Chunks { dims };
        assert_eq!(spec.n_units(), 4);
        assert!(spec.ordered());
        assert_eq!(spec.unit_of(&[Value::Int(1)]).unwrap(), 0);
        assert_eq!(spec.unit_of(&[Value::Int(10)]).unwrap(), 0);
        assert_eq!(spec.unit_of(&[Value::Int(11)]).unwrap(), 1);
        assert_eq!(spec.unit_of(&[Value::Int(40)]).unwrap(), 3);
        // Out-of-range keys clamp into edge units.
        assert_eq!(spec.unit_of(&[Value::Int(-5)]).unwrap(), 0);
        assert_eq!(spec.unit_of(&[Value::Int(99)]).unwrap(), 3);
        // Non-integral keys rejected.
        assert!(spec.unit_of(&[Value::Float(1.5)]).is_err());
    }

    #[test]
    fn multidim_chunk_spec_linearizes() {
        let dims = vec![
            DimensionDef::new("i", 1, 20, 10).unwrap(),
            DimensionDef::new("j", 1, 20, 10).unwrap(),
        ];
        let spec = JoinUnitSpec::Chunks { dims };
        assert_eq!(spec.n_units(), 4);
        assert_eq!(spec.unit_of(&[Value::Int(1), Value::Int(1)]).unwrap(), 0);
        assert_eq!(spec.unit_of(&[Value::Int(1), Value::Int(11)]).unwrap(), 1);
        assert_eq!(spec.unit_of(&[Value::Int(11), Value::Int(1)]).unwrap(), 2);
        assert_eq!(spec.unit_of(&[Value::Int(20), Value::Int(20)]).unwrap(), 3);
    }

    #[test]
    fn hash_spec_collocates_equal_keys() {
        let spec = JoinUnitSpec::HashBuckets { n: 8 };
        assert_eq!(spec.n_units(), 8);
        assert!(!spec.ordered());
        let u1 = spec.unit_of(&[Value::Int(42)]).unwrap();
        let u2 = spec.unit_of(&[Value::Float(42.0)]).unwrap();
        assert_eq!(u1, u2);
    }

    #[test]
    fn map_slices_partitions_all_cells() {
        let a = array();
        let l = UnitLayout::of_schema(&schema(), &["v".to_string()]).unwrap();
        let spec = JoinUnitSpec::HashBuckets { n: 4 };
        let set = map_slices(a.chunks().map(|(_, c)| c), &l, &spec).unwrap();
        assert_eq!(set.cell_count(), 40);
        assert_eq!(set.sizes().len(), 4);
        // All cells with v == 3 share one slice (equal keys collocate).
        let mut home = None;
        for (u, slice) in set.slices.iter().enumerate() {
            for row in 0..slice.len() {
                if slice.attrs[1].get(row) == Value::Int(3) {
                    match home {
                        None => home = Some(u),
                        Some(h) => assert_eq!(h, u),
                    }
                }
            }
        }
        assert!(home.is_some());
    }

    #[test]
    fn map_slices_by_chunk_ranges_follows_tiling() {
        let a = array();
        let l = UnitLayout::of_schema(&schema(), &["i".to_string()]).unwrap();
        let dims = vec![DimensionDef::new("i", 1, 40, 10).unwrap()];
        let spec = JoinUnitSpec::Chunks { dims };
        let set = map_slices(a.chunks().map(|(_, c)| c), &l, &spec).unwrap();
        assert_eq!(set.sizes(), vec![10, 10, 10, 10]);
        // Slice 2 holds exactly i in 21..=30.
        let s = &set.slices[2];
        for row in 0..s.len() {
            let i = s.attrs[0].get(row).as_int().unwrap();
            assert!((21..=30).contains(&i));
        }
    }
}
