//! Join schema inference (paper §4).
//!
//! Every join runs through an intermediate *join schema* `J = {D_J, A_J}`:
//! its dimensions are derived from the predicate pairs (so cells that can
//! match always land in the same join unit), and its attributes carry
//! everything needed to evaluate the predicate and build the destination
//! array. This module infers `J`, the default destination schema
//! (Equation 3), and the emit mapping from the two sides' columns to the
//! output's columns.

use std::collections::HashMap;

use sj_array::{ArraySchema, AttributeDef, DimensionDef, Histogram};

use crate::error::{JoinError, Result};
use crate::predicate::{JoinPredicate, JoinSide, PairKind};
use crate::unit::UnitLayout;

/// Value-distribution statistics for attribute columns, used to infer
/// dimension shapes when a predicate attribute becomes a join dimension
/// ("translating a histogram of the source data's value distribution into
/// a set of ranges and chunking intervals", §4).
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    histograms: HashMap<(JoinSide, String), Histogram>,
}

impl ColumnStats {
    /// An empty statistics set.
    pub fn new() -> Self {
        ColumnStats::default()
    }

    /// Record the histogram for one side's column.
    pub fn insert(&mut self, side: JoinSide, column: impl Into<String>, hist: Histogram) {
        self.histograms.insert((side, column.into()), hist);
    }

    /// Look up a histogram.
    pub fn get(&self, side: JoinSide, column: &str) -> Option<&Histogram> {
        self.histograms.get(&(side, column.to_string()))
    }
}

/// Where an output column's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitSource {
    /// Which operand supplies the value.
    pub side: JoinSide,
    /// Column index into that side's [`UnitLayout`].
    pub column: usize,
}

/// The mapping from matched cell pairs to output cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitSpec {
    /// One source per output dimension.
    pub dims: Vec<EmitSource>,
    /// One source per output attribute.
    pub attrs: Vec<EmitSource>,
}

/// The inferred join schema plus everything the planner and executor
/// need to group, compare, and emit cells.
#[derive(Debug, Clone)]
pub struct JoinSchema {
    /// The grouping dimensions of `J` — one per predicate pair, with
    /// inferred ranges and chunk intervals.
    pub dims: Vec<DimensionDef>,
    /// Column layout of left-side cells inside join units.
    pub left_layout: UnitLayout,
    /// Column layout of right-side cells inside join units.
    pub right_layout: UnitLayout,
    /// The destination schema τ.
    pub output: ArraySchema,
    /// How matched pairs map to output cells.
    pub emit: EmitSpec,
    /// The predicate's overall kind.
    pub kind: PairKind,
}

impl JoinSchema {
    /// Whether `side`'s source schema already has exactly `J`'s dimension
    /// space as its own dimensions (same order, ranges, chunk intervals,
    /// and the predicate columns are those dimensions) — the precondition
    /// for `scan` alignment (no reorganization).
    pub fn side_matches_j(&self, side: JoinSide, schema: &ArraySchema) -> bool {
        let layout = match side {
            JoinSide::Left => &self.left_layout,
            JoinSide::Right => &self.right_layout,
        };
        if schema.ndims() != self.dims.len() || layout.key_cols.len() != self.dims.len() {
            return false;
        }
        // Key column k must be source dimension k, with the same shape as
        // J dimension k.
        for (k, jd) in self.dims.iter().enumerate() {
            if layout.key_cols[k] != k {
                return false;
            }
            let sd = &schema.dims[k];
            if sd.start != jd.start || sd.end != jd.end || sd.chunk_interval != jd.chunk_interval {
                return false;
            }
        }
        true
    }

    /// Whether the output schema's dimension space equals `J`'s (same
    /// count, ranges, intervals, in order). When true, join results are
    /// already tiled for τ and only (at most) a sort is needed.
    pub fn output_matches_j(&self) -> bool {
        self.output.ndims() == self.dims.len()
            && self.output.dims.iter().zip(&self.dims).all(|(o, j)| {
                o.start == j.start && o.end == j.end && o.chunk_interval == j.chunk_interval
            })
    }
}

/// Target cells per inferred chunk when a histogram defines a dimension.
/// Chosen so join units stay "of moderate size" (paper §3.3).
const TARGET_CELLS_PER_CHUNK: u64 = 65_536;

/// Infer the join schema for `left ⋈ right` under `predicate`.
///
/// `output` is the user-declared destination schema (`INTO τ<...>[...]`),
/// or `None` for the default natural-join schema of Equation 3. `stats`
/// supplies histograms for predicate attributes (required for A:A and
/// A:D pairs where neither side contributes a dimension shape).
pub fn infer_join_schema(
    left: &ArraySchema,
    right: &ArraySchema,
    predicate: &JoinPredicate,
    output: Option<ArraySchema>,
    stats: &ColumnStats,
) -> Result<JoinSchema> {
    let kinds = predicate.classify(left, right)?;
    let kind = predicate.overall_kind(left, right)?;

    // --- Destination schema τ (needed as a dimension-shape candidate). ---
    let output = match output {
        Some(schema) => schema,
        None => default_output_schema(left, right, predicate)?,
    };

    // --- J's dimensions: one per predicate pair. --------------------------
    // "If d_j is a dimension in α, β, or τ, then the optimizer copies its
    // chunk intervals from the largest one and takes the dimension range
    // from the union" (§4); otherwise the shape comes from histograms.
    let mut dims: Vec<DimensionDef> = Vec::with_capacity(predicate.pairs.len());
    for (pair, pk) in predicate.pairs.iter().zip(&kinds) {
        let mut candidates: Vec<&DimensionDef> = Vec::new();
        if let Some(d) = left.dims.iter().find(|d| d.name == pair.left) {
            candidates.push(d);
        }
        if let Some(d) = right.dims.iter().find(|d| d.name == pair.right) {
            candidates.push(d);
        }
        if let Some(d) = output
            .dims
            .iter()
            .find(|d| d.name == pair.left || d.name == pair.right)
        {
            candidates.push(d);
        }
        let def = if candidates.is_empty() {
            debug_assert_eq!(*pk, PairKind::AttrAttr);
            // Infer shape from value histograms of both attributes.
            let lh = stats.get(JoinSide::Left, &pair.left);
            let rh = stats.get(JoinSide::Right, &pair.right);
            let (start, end, interval) = match (lh, rh) {
                (Some(lh), Some(rh)) => {
                    let (ls, le, li) = lh.infer_dimension(TARGET_CELLS_PER_CHUNK);
                    let (rs, re, ri) = rh.infer_dimension(TARGET_CELLS_PER_CHUNK);
                    (ls.min(rs), le.max(re), li.max(ri))
                }
                (Some(h), None) | (None, Some(h)) => h.infer_dimension(TARGET_CELLS_PER_CHUNK),
                (None, None) => {
                    return Err(JoinError::InvalidPredicate(format!(
                        "predicate pair ({}, {}) joins two attributes but no \
                         histogram statistics were provided",
                        pair.left, pair.right
                    )))
                }
            };
            DimensionDef::new(pair.left.clone(), start, end, interval)?
        } else {
            let name = candidates[0].name.clone();
            let start = candidates.iter().map(|d| d.start).min().unwrap();
            let end = candidates.iter().map(|d| d.end).max().unwrap();
            let interval = candidates.iter().map(|d| d.chunk_interval).max().unwrap();
            DimensionDef::new(name, start, end, interval)?
        };
        dims.push(def);
    }

    // --- Per-side unit layouts. ------------------------------------------
    let left_layout = UnitLayout::of_schema(left, &key_names(predicate, JoinSide::Left))?;
    let right_layout = UnitLayout::of_schema(right, &key_names(predicate, JoinSide::Right))?;

    // --- Emit mapping. -----------------------------------------------------
    let emit = build_emit_spec(&output, left, right, &left_layout, &right_layout)?;

    Ok(JoinSchema {
        dims,
        left_layout,
        right_layout,
        output,
        emit,
        kind,
    })
}

fn key_names(predicate: &JoinPredicate, side: JoinSide) -> Vec<String> {
    predicate
        .pairs
        .iter()
        .map(|p| match side {
            JoinSide::Left => p.left.clone(),
            JoinSide::Right => p.right.clone(),
        })
        .collect()
}

/// The default (natural-join) destination schema for `left ⋈ right` on
/// equality `pairs` — Equation 3 without running full join-schema
/// inference. Used by AFL lowering (nested `join(join(A,B),C)` needs the
/// inner join's schema to derive the outer pairs) and by the plan
/// rewriter when it re-derives a join's output after pushing a
/// projection into its inputs.
pub fn natural_join_schema(
    left: &ArraySchema,
    right: &ArraySchema,
    pairs: &[(String, String)],
) -> Result<ArraySchema> {
    default_output_schema(left, right, &JoinPredicate::new(pairs.to_vec()))
}

/// The default destination schema of Equation 3:
/// `D_τ = D_α ∪ D_β − (D_β ∩ D_P)`, `A_τ = A_α ∪ A_β − (A_β ∩ A_P)` —
/// the right side's predicate columns are merged away, everything else
/// survives. Colliding names from the right are qualified `B.name`.
fn default_output_schema(
    left: &ArraySchema,
    right: &ArraySchema,
    predicate: &JoinPredicate,
) -> Result<ArraySchema> {
    let right_pred: Vec<&str> = predicate.pairs.iter().map(|p| p.right.as_str()).collect();
    let mut dims: Vec<DimensionDef> = left.dims.clone();
    let mut attrs: Vec<AttributeDef> = left.attrs.clone();
    let taken = |name: &str, dims: &[DimensionDef], attrs: &[AttributeDef]| {
        dims.iter().any(|d| d.name == name) || attrs.iter().any(|a| a.name == name)
    };
    for d in &right.dims {
        if right_pred.contains(&d.name.as_str()) {
            continue;
        }
        let mut def = d.clone();
        if taken(&def.name, &dims, &attrs) {
            def.name = format!("{}.{}", right.name, def.name);
        }
        dims.push(def);
    }
    for a in &right.attrs {
        if right_pred.contains(&a.name.as_str()) {
            continue;
        }
        let mut def = a.clone();
        if taken(&def.name, &dims, &attrs) {
            def.name = format!("{}.{}", right.name, def.name);
        }
        attrs.push(def);
    }
    ArraySchema::new(format!("{}_{}", left.name, right.name), dims, attrs)
        .map_err(|e| JoinError::InvalidOutputSchema(e.to_string()))
}

/// Resolve each output column to a `(side, column)` source. An exact
/// full-name match wins first (canonical multi-join intermediates carry
/// already-qualified column names like `A.v1` *as* column names); then
/// qualified names (`A.v1`) bind to the named array; bare names search
/// the left layout first, then the right.
fn build_emit_spec(
    output: &ArraySchema,
    left: &ArraySchema,
    right: &ArraySchema,
    left_layout: &UnitLayout,
    right_layout: &UnitLayout,
) -> Result<EmitSpec> {
    let resolve = |name: &str| -> Result<EmitSource> {
        if name.contains('.') {
            if let Some(column) = left_layout.column_index(name) {
                return Ok(EmitSource {
                    side: JoinSide::Left,
                    column,
                });
            }
            if let Some(column) = right_layout.column_index(name) {
                return Ok(EmitSource {
                    side: JoinSide::Right,
                    column,
                });
            }
        }
        if let Some((array, col)) = name.split_once('.') {
            let (side, layout) = if array == left.name {
                (JoinSide::Left, left_layout)
            } else if array == right.name {
                (JoinSide::Right, right_layout)
            } else {
                return Err(JoinError::UnknownColumn(name.to_string()));
            };
            let column = layout
                .column_index(col)
                .ok_or_else(|| JoinError::UnknownColumn(name.to_string()))?;
            return Ok(EmitSource { side, column });
        }
        if let Some(column) = left_layout.column_index(name) {
            return Ok(EmitSource {
                side: JoinSide::Left,
                column,
            });
        }
        if let Some(column) = right_layout.column_index(name) {
            return Ok(EmitSource {
                side: JoinSide::Right,
                column,
            });
        }
        // Canonical multi-join intermediates carry every surviving column
        // fully qualified (`A.v`); a bare name in the user-facing output
        // schema then binds to its qualified survivor. Join-key classes
        // may expose several (equal-valued) qualified members — side then
        // layout order picks one deterministically.
        if !name.contains('.') {
            let suffix = format!(".{name}");
            for (side, layout) in [
                (JoinSide::Left, left_layout),
                (JoinSide::Right, right_layout),
            ] {
                if let Some(column) = layout.names.iter().position(|n| n.ends_with(&suffix)) {
                    return Ok(EmitSource { side, column });
                }
            }
        }
        Err(JoinError::UnknownColumn(name.to_string()))
    };
    Ok(EmitSpec {
        dims: output
            .dims
            .iter()
            .map(|d| resolve(&d.name))
            .collect::<Result<_>>()?,
        attrs: output
            .attrs
            .iter()
            .map(|a| resolve(&a.name))
            .collect::<Result<_>>()?,
    })
}

/// Compute histograms for the predicate's attribute columns from live
/// arrays — the "statistics in the database engine" of §4.
pub fn stats_for_predicate(
    left: &sj_array::Array,
    right: &sj_array::Array,
    predicate: &JoinPredicate,
) -> Result<ColumnStats> {
    let mut stats = ColumnStats::new();
    for pair in &predicate.pairs {
        for (side, array, col) in [
            (JoinSide::Left, left, &pair.left),
            (JoinSide::Right, right, &pair.right),
        ] {
            if array.schema.has_attr(col) && stats.get(side, col).is_none() {
                let idx = array.schema.attr_index(col)?;
                let values: Vec<sj_array::Value> = array
                    .chunks()
                    .flat_map(|(_, c)| (0..c.cells.len()).map(move |i| c.cells.value(i, idx)))
                    .collect();
                if !values.is_empty() {
                    // Only numeric columns get histograms; strings join
                    // via hash buckets which need no dimension shape.
                    if let Ok(hist) = Histogram::build(values, 64) {
                        stats.insert(side, col.clone(), hist);
                    }
                }
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::Value;

    fn dd_case() -> (ArraySchema, ArraySchema, JoinPredicate) {
        (
            ArraySchema::parse("A<v1:int, v2:int>[i=1,64,8, j=1,64,8]").unwrap(),
            ArraySchema::parse("B<w1:int, w2:int>[i=1,64,8, j=1,64,8]").unwrap(),
            JoinPredicate::new(vec![("i", "i"), ("j", "j")]),
        )
    }

    #[test]
    fn dd_join_schema_copies_dimension_space() {
        let (a, b, p) = dd_case();
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        assert_eq!(js.kind, PairKind::DimDim);
        assert_eq!(js.dims.len(), 2);
        assert_eq!(js.dims[0].chunk_interval, 8);
        assert!(js.side_matches_j(JoinSide::Left, &a));
        assert!(js.side_matches_j(JoinSide::Right, &b));
        // Default τ: A's dims + A's attrs + B's non-predicate attrs.
        assert_eq!(js.output.ndims(), 2);
        assert_eq!(js.output.nattrs(), 4);
    }

    #[test]
    fn dd_union_of_mismatched_ranges() {
        let a = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[i=51,200,20]").unwrap();
        let p = JoinPredicate::new(vec![("i", "i")]);
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        assert_eq!(js.dims[0].start, 1);
        assert_eq!(js.dims[0].end, 200);
        assert_eq!(js.dims[0].chunk_interval, 20); // max of candidates
                                                   // Neither side matches J exactly now.
        assert!(!js.side_matches_j(JoinSide::Left, &a));
        assert!(!js.side_matches_j(JoinSide::Right, &b));
    }

    #[test]
    fn aa_join_infers_dimension_from_histograms() {
        // Paper §6.1's A:A query shape.
        let a = ArraySchema::parse("A<v:int>[i=1,1000,100]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,1000,100]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let mut stats = ColumnStats::new();
        stats.insert(
            JoinSide::Left,
            "v",
            Histogram::build((1..=500).map(Value::Int), 16).unwrap(),
        );
        stats.insert(
            JoinSide::Right,
            "w",
            Histogram::build((200..=900).map(Value::Int), 16).unwrap(),
        );
        let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
        assert_eq!(js.kind, PairKind::AttrAttr);
        assert_eq!(js.dims.len(), 1);
        assert_eq!(js.dims[0].name, "v");
        assert_eq!(js.dims[0].start, 1);
        assert_eq!(js.dims[0].end, 900);
        assert!(!js.side_matches_j(JoinSide::Left, &a));
    }

    #[test]
    fn aa_without_stats_fails() {
        let a = ArraySchema::parse("A<v:int>[i=1,10,5]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,10,5]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        assert!(infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).is_err());
    }

    #[test]
    fn mixed_pair_takes_dimension_shape_from_dim_side() {
        // A.i (dim) = B.w (attr): J's dim copies A.i's shape (§4, A:D).
        let a = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,50,5]").unwrap();
        let p = JoinPredicate::new(vec![("i", "w")]);
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        assert_eq!(js.kind, PairKind::Mixed);
        assert_eq!(js.dims[0].name, "i");
        assert_eq!(js.dims[0].chunk_interval, 10);
        assert!(js.side_matches_j(JoinSide::Left, &a));
        assert!(!js.side_matches_j(JoinSide::Right, &b));
    }

    #[test]
    fn explicit_output_schema_with_qualified_names() {
        // Paper §6.2.2: SELECT A.i, A.j, B.i, B.j INTO <...>[] — but an
        // array needs ≥1 dimension, so bind i/j via qualified attrs.
        let a = ArraySchema::parse("A<v1:int>[i=1,64,8, j=1,64,8]").unwrap();
        let b = ArraySchema::parse("B<v1:int>[i=1,64,8, j=1,64,8]").unwrap();
        let p = JoinPredicate::new(vec![("v1", "v1")]);
        let out = ArraySchema::parse("C<A.j:int, B.i:int, B.j:int>[A.i=1,64,8]").unwrap();
        let mut stats = ColumnStats::new();
        stats.insert(
            JoinSide::Left,
            "v1",
            Histogram::build((1..=64).map(Value::Int), 8).unwrap(),
        );
        stats.insert(
            JoinSide::Right,
            "v1",
            Histogram::build((1..=64).map(Value::Int), 8).unwrap(),
        );
        let js = infer_join_schema(&a, &b, &p, Some(out), &stats).unwrap();
        // Output dim A.i resolves to the left layout's `i` column (index 0).
        assert_eq!(js.emit.dims[0].side, JoinSide::Left);
        assert_eq!(js.emit.dims[0].column, 0);
        // B.i → right side column 0; B.j → right column 1.
        assert_eq!(js.emit.attrs[1].side, JoinSide::Right);
        assert_eq!(js.emit.attrs[1].column, 0);
        assert_eq!(js.emit.attrs[2].column, 1);
    }

    #[test]
    fn emit_spec_for_default_schema() {
        let (a, b, p) = dd_case();
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        // dims i, j from the left.
        assert!(js.emit.dims.iter().all(|e| e.side == JoinSide::Left));
        // attrs: v1, v2 (left), w1, w2 (right).
        assert_eq!(js.emit.attrs[0].side, JoinSide::Left);
        assert_eq!(js.emit.attrs[2].side, JoinSide::Right);
    }

    #[test]
    fn default_schema_qualifies_collisions() {
        let a = ArraySchema::parse("A<v:int>[i=1,10,5]").unwrap();
        let b = ArraySchema::parse("B<v:int>[j=1,10,5]").unwrap();
        let p = JoinPredicate::new(vec![("i", "j")]);
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        // B.v collides with A's v → qualified.
        let names: Vec<&str> = js.output.attrs.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["v", "B.v"]);
    }

    #[test]
    fn unknown_output_column_rejected() {
        let (a, b, p) = dd_case();
        let out = ArraySchema::parse("C<zzz:int>[i=1,64,8]").unwrap();
        assert!(infer_join_schema(&a, &b, &p, Some(out), &ColumnStats::new()).is_err());
        let out2 = ArraySchema::parse("C<Z.v1:int>[i=1,64,8]").unwrap();
        assert!(infer_join_schema(&a, &b, &p, Some(out2), &ColumnStats::new()).is_err());
    }

    #[test]
    fn output_matches_j_detection() {
        let (a, b, p) = dd_case();
        let js = infer_join_schema(&a, &b, &p, None, &ColumnStats::new()).unwrap();
        assert!(js.output_matches_j());
        let out = ArraySchema::parse("C<v1:int>[i=1,64,4]").unwrap(); // interval differs
        let js2 = infer_join_schema(&a, &b, &p, Some(out), &ColumnStats::new()).unwrap();
        assert!(!js2.output_matches_j());
    }

    #[test]
    fn stats_for_predicate_builds_attr_histograms() {
        let a = sj_array::Array::from_cells(
            ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap(),
            (1..=100).map(|i| (vec![i], vec![Value::Int(i * 2)])),
        )
        .unwrap();
        let b = sj_array::Array::from_cells(
            ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap(),
            (1..=100).map(|j| (vec![j], vec![Value::Int(j)])),
        )
        .unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let stats = stats_for_predicate(&a, &b, &p).unwrap();
        let lh = stats.get(JoinSide::Left, "v").unwrap();
        assert_eq!(lh.min, 2.0);
        assert_eq!(lh.max, 200.0);
        assert!(stats.get(JoinSide::Right, "w").is_some());
        // Dimensions don't get histograms.
        let p2 = JoinPredicate::new(vec![("i", "j")]);
        let s2 = stats_for_predicate(&a, &b, &p2).unwrap();
        assert!(s2.get(JoinSide::Left, "i").is_none());
    }
}
