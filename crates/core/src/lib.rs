//! # sj-core: the skew-aware shuffle-join optimization framework
//!
//! The primary contribution of *Skew-Aware Join Optimization for Array
//! Databases* (SIGMOD 2015): a two-phase join optimizer for chunked array
//! databases.
//!
//! Observability is unified behind [`telemetry`] (re-exported
//! `sj-telemetry`): executors record query-scoped spans and counters, and
//! the legacy report structs are [`views`] computed from that tree.

#![warn(missing_docs)]

pub mod algorithms;
mod error;
pub mod join_schema;
pub mod logical;
pub mod predicate;
pub mod unit;

pub use algorithms::JoinAlgo;
pub use error::{JoinError, Result};
pub use join_schema::{infer_join_schema, ColumnStats, JoinSchema};
pub use logical::{plan_join, plan_join_with_algo, LogicalPlan, LogicalStats};
pub use predicate::{JoinPredicate, JoinSide, PairKind};
pub use sj_array::parallel;
pub use sj_array::parallel::{
    par_map, par_map_until, par_map_weighted, par_map_weighted_until, resolve_threads, PoolMetrics,
};
pub use unit::JoinUnitSpec;

pub mod physical;
pub use physical::{CostParams, IlpStats, PhysicalPlan, PlanTier, PlannerKind, SliceStats};

pub mod exec;
pub use exec::{
    execute_join, execute_join_guarded, execute_join_traced, ExecConfig, ExecConfigBuilder,
    ExecProfile, JoinMetrics, JoinQuery, JoinRun, LifecycleConfig, OnDeadline,
};
pub use sj_cluster::ReplanPolicy;
pub use telemetry::{CancelHandle, ClockSource, Interrupt, QueryContext, VirtualClock};

pub mod optimizer;
pub use optimizer::{JoinGraph, OptimizerMode};

pub mod plan;
pub use plan::{rewrite, rewrite_with, PlanNode};

pub mod pipeline;
pub use pipeline::{run_plan, run_plan_traced, BatchOperator, PipelineStats, PlanOutput};

pub use sj_telemetry as telemetry;
pub use telemetry::{Telemetry, TelemetryConfig, Tracer};

pub mod views;
pub use views::MetricsView;
