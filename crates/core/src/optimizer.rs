//! Selinger-style join-order optimization over an n-way join graph.
//!
//! The IR's [`PlanNode::Join`] holds plan subtrees, so `A ⋈ B ⋈ C` is a
//! tree of binary joins — and the tree *shape* the front end happens to
//! emit is rarely the cheapest one. This module flattens a join tree
//! into a [`JoinGraph`] (relations, equality edges, per-relation
//! filters), saturates the edge set with transitively-implied equalities,
//! estimates per-subset cardinalities from per-column [`Histogram`]s
//! (row counts, distinct-value sketches, filter selectivities), and runs
//! the classic bottom-up dynamic program over connected subsets
//! (bitset-keyed memo, bushy trees allowed, cross products never
//! considered). The chosen order and every memoized subset estimate are
//! recorded in an `optimizer` telemetry span.
//!
//! Canonical intermediate schemas: every join node the optimizer emits
//! carries an explicit output schema whose dimensions are the union of
//! all base relations' dimensions (qualified `Rel.dim`) and whose
//! attributes are the surviving qualified columns, one representative
//! per join-key equivalence class. Since a row's coordinates concatenate
//! the coordinates of every base cell it came from, rows keep distinct
//! coordinates under any join order — which is what makes results
//! bit-identical across every tree shape (and thread count).

use std::collections::HashMap;

use sj_array::{ArraySchema, BinOp, Expr, Histogram, Value};
use sj_cluster::Cluster;
use sj_telemetry::SpanGuard;

use crate::exec::ExecConfig;
use crate::join_schema::natural_join_schema;
use crate::plan::PlanNode;

/// Join-order optimization mode (see [`ExecConfig::optimizer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptimizerMode {
    /// Execute join trees exactly as written.
    Off,
    /// Selinger bottom-up DP over connected subsets (the default).
    #[default]
    Dp,
}

/// One relation of the join graph: a stored array, the plan subtree that
/// scans (and possibly filters) it, and the conjunction of filters
/// attached to it.
#[derive(Debug, Clone)]
pub struct JoinRelation {
    /// Stored-array name.
    pub name: String,
    /// The relation's leaf subtree (`Scan`, possibly under `Filter`s).
    pub plan: PlanNode,
    /// Base schema of the stored array.
    pub schema: ArraySchema,
    /// Conjunction of single-relation filters, in base column names.
    pub filter: Option<Expr>,
}

/// One equality edge: `relations[left].pairs[i].0 = relations[right].pairs[i].1`.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// Left relation index.
    pub left: usize,
    /// Right relation index.
    pub right: usize,
    /// Base-column equality pairs.
    pub pairs: Vec<(String, String)>,
}

/// The flattened join graph of one join tree.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// Relations, in the order they appear left-to-right in the tree.
    pub relations: Vec<JoinRelation>,
    /// Explicit equality edges recovered from the tree's join predicates.
    pub edges: Vec<JoinEdge>,
    /// The user's `INTO τ<…>[…]` on the root join, if any.
    pub output: Option<ArraySchema>,
    /// Saturated join-key equivalence classes over `(relation, column)`,
    /// each sorted; the list is sorted by first member. Includes
    /// transitively-implied equalities (`A.x = B.x ∧ B.x = C.x ⇒
    /// A.x = C.x`), which is what lets the DP join `A` to `C` directly.
    classes: Vec<Vec<(usize, String)>>,
}

/// Per-relation statistics the cost model runs on.
#[derive(Debug, Clone)]
pub struct RelEstimate {
    /// Estimated rows after the relation's filter.
    pub rows: f64,
    /// Distinct-value estimates for the relation's join columns
    /// (post-filter, from the histogram's mergeable sketch).
    pub ndv: HashMap<String, f64>,
    /// Estimated selectivity of the relation's filter (1.0 if none).
    pub selectivity: f64,
}

/// One memoized DP subset.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Sum of estimated intermediate cardinalities beneath (and
    /// including) this subset.
    cost: f64,
    /// Estimated cardinality of the subset's join result.
    rows: f64,
    /// The chosen `(left, right)` partition, `None` for singletons.
    split: Option<(u64, u64)>,
}

/// The DP's output: the memo plus the full-set mask.
#[derive(Debug, Clone)]
pub struct DpPlan {
    memo: HashMap<u64, Entry>,
    full: u64,
}

impl DpPlan {
    /// Estimated result cardinality of the whole join.
    pub fn root_rows(&self) -> f64 {
        self.memo[&self.full].rows
    }

    /// Total cost (sum of intermediate cardinalities) of the chosen plan.
    pub fn root_cost(&self) -> f64 {
        self.memo[&self.full].cost
    }
}

impl JoinGraph {
    /// Flatten a `Join`-rooted plan subtree into a graph. Returns `None`
    /// for shapes the optimizer cannot reason about (unknown arrays,
    /// duplicate relations, unresolvable pair columns, non-leaf inputs
    /// it doesn't recognize) — the caller then executes the tree as
    /// written.
    pub fn from_plan(
        plan: &PlanNode,
        catalog: &dyn Fn(&str) -> Option<ArraySchema>,
    ) -> Option<JoinGraph> {
        let mut graph = JoinGraph {
            relations: Vec::new(),
            edges: Vec::new(),
            output: None,
            classes: Vec::new(),
        };
        let root_output = match plan {
            PlanNode::Join { output, .. } => output.clone(),
            _ => return None,
        };
        let root = collect(plan, catalog, &mut graph, true)?;
        // The user-facing output schema: the explicit `INTO` when given,
        // the natural schema of the tree as written otherwise — so
        // reordering never changes what the query returns.
        graph.output = root_output.or(Some(root.schema));
        graph.classes = saturate(&graph.edges);
        Some(graph)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the graph has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The saturated join-key equivalence classes.
    pub fn classes(&self) -> &[Vec<(usize, String)>] {
        &self.classes
    }

    /// Whether every relation is reachable from relation 0 through the
    /// (saturated) equality edges.
    pub fn is_connected(&self) -> bool {
        let n = self.relations.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut frontier = vec![0usize];
        while let Some(r) = frontier.pop() {
            for class in &self.classes {
                if class.iter().any(|(m, _)| *m == r) {
                    for (m, _) in class {
                        if !seen[*m] {
                            seen[*m] = true;
                            frontier.push(*m);
                        }
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Whether a saturated equality links the two (disjoint) subsets —
    /// the cross-product-avoidance test.
    fn crossing(&self, a: u64, b: u64) -> bool {
        self.classes.iter().any(|class| {
            class.iter().any(|(r, _)| a & (1 << r) != 0)
                && class.iter().any(|(r, _)| b & (1 << r) != 0)
        })
    }

    /// All left-deep join orders whose every prefix is connected (the
    /// enumeration the golden-equivalence tests and the `multi_join`
    /// bench execute exhaustively).
    pub fn enumerate_left_deep(&self) -> Vec<Vec<usize>> {
        let n = self.relations.len();
        let mut orders = Vec::new();
        let mut current = Vec::with_capacity(n);
        self.left_deep_rec(&mut current, 0, &mut orders);
        orders
    }

    fn left_deep_rec(&self, current: &mut Vec<usize>, mask: u64, out: &mut Vec<Vec<usize>>) {
        let n = self.relations.len();
        if current.len() == n {
            out.push(current.clone());
            return;
        }
        for r in 0..n {
            let bit = 1u64 << r;
            if mask & bit != 0 {
                continue;
            }
            if mask != 0 && !self.crossing(mask, bit) {
                continue;
            }
            current.push(r);
            self.left_deep_rec(current, mask | bit, out);
            current.pop();
        }
    }

    /// The canonical output schema of a relation subset: dimensions are
    /// the union of the members' dimensions (qualified `Rel.dim`, same
    /// shapes), attributes are the members' attributes (qualified
    /// `Rel.attr`) minus non-representative join-key duplicates.
    pub fn subset_schema(&self, mask: u64) -> Option<ArraySchema> {
        let rels: Vec<usize> = (0..self.relations.len())
            .filter(|r| mask & (1 << r) != 0)
            .collect();
        if rels.len() < 2 {
            return Some(self.relations[*rels.first()?].schema.clone());
        }
        let name = rels
            .iter()
            .map(|&r| self.relations[r].name.as_str())
            .collect::<Vec<_>>()
            .join("_");
        let mut dims = Vec::new();
        let mut attrs = Vec::new();
        for &r in &rels {
            let rel = &self.relations[r];
            for d in &rel.schema.dims {
                let mut def = d.clone();
                def.name = format!("{}.{}", rel.name, d.name);
                dims.push(def);
            }
        }
        for &r in &rels {
            let rel = &self.relations[r];
            for a in &rel.schema.attrs {
                if !self.keeps_attr(mask, r, &a.name) {
                    continue;
                }
                let mut def = a.clone();
                def.name = format!("{}.{}", rel.name, a.name);
                attrs.push(def);
            }
        }
        ArraySchema::new(name, dims, attrs).ok()
    }

    /// Whether attribute `(rel, col)` survives into the subset's
    /// canonical schema: it does unless it is a non-representative
    /// member of a join-key equivalence class (another member of the
    /// class in the subset is a dimension, or a lower-ordered attribute).
    fn keeps_attr(&self, mask: u64, rel: usize, col: &str) -> bool {
        for class in &self.classes {
            if !class.iter().any(|(r, c)| *r == rel && c == col) {
                continue;
            }
            let members: Vec<&(usize, String)> =
                class.iter().filter(|(r, _)| mask & (1 << r) != 0).collect();
            if members.len() < 2 {
                return true;
            }
            // Any dimension member representing the class means every
            // attribute member is redundant.
            if members
                .iter()
                .any(|(r, c)| self.relations[*r].schema.dims.iter().any(|d| &d.name == c))
            {
                return false;
            }
            // Otherwise the first attribute member represents the class.
            return members[0] == &(rel, col.to_string());
        }
        true
    }

    /// The name column `(rel, col)` goes by in the canonical schema of
    /// `mask` — its own qualified name, or its class representative's.
    fn canonical_key_name(&self, mask: u64, class: &[(usize, String)]) -> Option<String> {
        let members: Vec<&(usize, String)> =
            class.iter().filter(|(r, _)| mask & (1 << r) != 0).collect();
        let single = mask.count_ones() == 1;
        // Prefer a dimension member (always present in the schema).
        let repr = members
            .iter()
            .find(|(r, c)| self.relations[*r].schema.dims.iter().any(|d| &d.name == c))
            .or_else(|| members.first())?;
        if single {
            Some(repr.1.clone())
        } else {
            Some(format!("{}.{}", self.relations[repr.0].name, repr.1))
        }
    }

    /// The equality pairs joining two subsets, one per crossing
    /// equivalence class, named in each side's canonical namespace.
    fn pairs_between(&self, left: u64, right: u64) -> Vec<(String, String)> {
        let mut pairs = Vec::new();
        for class in &self.classes {
            let crosses = class.iter().any(|(r, _)| left & (1 << r) != 0)
                && class.iter().any(|(r, _)| right & (1 << r) != 0);
            if !crosses {
                continue;
            }
            if let (Some(l), Some(r)) = (
                self.canonical_key_name(left, class),
                self.canonical_key_name(right, class),
            ) {
                pairs.push((l, r));
            }
        }
        pairs
    }

    /// Build the join tree for one left-deep order, every node carrying
    /// its canonical subset schema. All orders over the same graph share
    /// the root schema, so their results are directly comparable (and,
    /// for workloads with unique row coordinates, bit-identical).
    pub fn tree_for_order(&self, order: &[usize]) -> Option<PlanNode> {
        let mut mask = 1u64 << order[0];
        let mut tree = self.relations[order[0]].plan.clone();
        for &r in &order[1..] {
            let bit = 1u64 << r;
            let pairs = self.pairs_between(mask, bit);
            if pairs.is_empty() {
                return None;
            }
            let new_mask = mask | bit;
            tree = PlanNode::Join {
                left: Box::new(tree),
                right: Box::new(self.relations[r].plan.clone()),
                pairs,
                output: Some(self.root_schema_for(new_mask, order.len())?),
            };
            mask = new_mask;
        }
        Some(tree)
    }

    /// The schema a subset-rooted join emits: the user's `INTO` for the
    /// full set (when declared), the canonical subset schema otherwise.
    fn root_schema_for(&self, mask: u64, n: usize) -> Option<ArraySchema> {
        if mask.count_ones() as usize == n {
            if let Some(out) = &self.output {
                return Some(out.clone());
            }
        }
        self.subset_schema(mask)
    }

    /// Emit the DP-chosen join tree (bushy in general), every node
    /// carrying its canonical subset schema.
    pub fn tree_for_plan(&self, plan: &DpPlan) -> Option<PlanNode> {
        self.emit(plan, plan.full)
    }

    /// Order a memoized split for emission: the executor runs
    /// measurably faster with the smaller input as the left (build)
    /// side, so put the half with fewer estimated rows first.
    /// Deterministic — estimates are a pure function of stored data.
    fn sides(&self, plan: &DpPlan, lm: u64, rm: u64) -> (u64, u64) {
        let rows = |m: u64| plan.memo.get(&m).map_or(f64::INFINITY, |e| e.rows);
        if rows(rm) < rows(lm) {
            (rm, lm)
        } else {
            (lm, rm)
        }
    }

    fn emit(&self, plan: &DpPlan, mask: u64) -> Option<PlanNode> {
        let entry = plan.memo.get(&mask)?;
        let Some((lm, rm)) = entry.split else {
            let r = mask.trailing_zeros() as usize;
            return Some(self.relations[r].plan.clone());
        };
        let (lm, rm) = self.sides(plan, lm, rm);
        let left = self.emit(plan, lm)?;
        let right = self.emit(plan, rm)?;
        let pairs = self.pairs_between(lm, rm);
        if pairs.is_empty() {
            return None;
        }
        Some(PlanNode::Join {
            left: Box::new(left),
            right: Box::new(right),
            pairs,
            output: Some(self.root_schema_for(mask, self.relations.len())?),
        })
    }

    /// Human-readable description of a memoized subset's tree shape,
    /// e.g. `((A ⋈ B) ⋈ C)`.
    pub fn describe(&self, plan: &DpPlan, mask: u64) -> String {
        match plan.memo.get(&mask).and_then(|e| e.split) {
            None => {
                let r = mask.trailing_zeros() as usize;
                self.relations[r].name.clone()
            }
            Some((lm, rm)) => {
                let (lm, rm) = self.sides(plan, lm, rm);
                format!(
                    "({} ⋈ {})",
                    self.describe(plan, lm),
                    self.describe(plan, rm)
                )
            }
        }
    }

    /// Comma-joined relation names of a subset mask.
    pub fn subset_names(&self, mask: u64) -> String {
        (0..self.relations.len())
            .filter(|r| mask & (1 << r) != 0)
            .map(|r| self.relations[r].name.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Estimated cardinality of a subset's join result: the product of
    /// member row counts, divided once per extra relation sharing each
    /// crossing equivalence class by the class's largest distinct count
    /// (the textbook containment assumption).
    pub fn subset_rows(&self, mask: u64, ests: &[RelEstimate]) -> f64 {
        let mut rows: f64 = (0..self.relations.len())
            .filter(|r| mask & (1 << r) != 0)
            .map(|r| ests[r].rows.max(1.0))
            .product();
        for class in &self.classes {
            let mut member_rels: Vec<usize> = class
                .iter()
                .filter(|(r, _)| mask & (1 << r) != 0)
                .map(|(r, _)| *r)
                .collect();
            member_rels.sort_unstable();
            member_rels.dedup();
            if member_rels.len() < 2 {
                continue;
            }
            let max_ndv = class
                .iter()
                .filter(|(r, _)| mask & (1 << r) != 0)
                .map(|(r, c)| ests[*r].ndv.get(c).copied().unwrap_or(1.0))
                .fold(1.0f64, f64::max);
            rows /= max_ndv.powi(member_rels.len() as i32 - 1);
        }
        rows.max(1e-6)
    }

    /// Run the bottom-up DP: bitset-keyed memo over connected subsets,
    /// bushy partitions, cross products never enumerated. Deterministic:
    /// masks ascend, submask enumeration order is fixed, and only a
    /// strictly cheaper partition replaces the incumbent.
    pub fn optimize(&self, ests: &[RelEstimate]) -> Option<DpPlan> {
        let n = self.relations.len();
        if n == 0 || n > 63 {
            return None;
        }
        let full = (1u64 << n) - 1;
        let mut memo: HashMap<u64, Entry> = HashMap::new();
        for (r, est) in ests.iter().enumerate().take(n) {
            memo.insert(
                1 << r,
                Entry {
                    cost: 0.0,
                    rows: est.rows.max(1.0),
                    split: None,
                },
            );
        }
        for mask in 3..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            let lowest = mask & mask.wrapping_neg();
            let mut best: Option<Entry> = None;
            let mut rows_cache: Option<f64> = None;
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                // Canonical partition: the half holding the lowest set
                // bit is the left input, so each split is seen once.
                if sub & lowest != 0 {
                    let other = mask ^ sub;
                    if let (Some(l), Some(r)) = (memo.get(&sub), memo.get(&other)) {
                        if self.crossing(sub, other) {
                            let rows =
                                *rows_cache.get_or_insert_with(|| self.subset_rows(mask, ests));
                            let cost = l.cost + r.cost + rows;
                            if best.is_none_or(|b| cost < b.cost) {
                                best = Some(Entry {
                                    cost,
                                    rows,
                                    split: Some((sub, other)),
                                });
                            }
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            if let Some(b) = best {
                memo.insert(mask, b);
            }
        }
        memo.contains_key(&full).then_some(DpPlan { memo, full })
    }
}

/// Recursive flattening of a join tree. Returns the side's output
/// schema plus a map from its output column names to `(relation, base
/// column)` sources; pushes relations and edges into `graph`.
struct Side {
    schema: ArraySchema,
    colmap: HashMap<String, (usize, String)>,
}

fn collect(
    node: &PlanNode,
    catalog: &dyn Fn(&str) -> Option<ArraySchema>,
    graph: &mut JoinGraph,
    _root: bool,
) -> Option<Side> {
    match node {
        PlanNode::Scan { array } => {
            if graph.relations.iter().any(|r| &r.name == array) {
                return None; // self-joins need aliases the language lacks
            }
            let schema = catalog(array)?;
            let rel = graph.relations.len();
            let mut colmap = HashMap::new();
            for d in &schema.dims {
                colmap.insert(d.name.clone(), (rel, d.name.clone()));
            }
            for a in &schema.attrs {
                colmap.insert(a.name.clone(), (rel, a.name.clone()));
            }
            graph.relations.push(JoinRelation {
                name: array.clone(),
                plan: node.clone(),
                schema: schema.clone(),
                filter: None,
            });
            Some(Side { schema, colmap })
        }
        PlanNode::Filter { input, predicate } => {
            let before = graph.relations.len();
            let side = collect(input, catalog, graph, false)?;
            // Only single-relation filters attach to a relation; a
            // filter over a nested join is a shape the rewriter should
            // have pushed down — bail and execute as written.
            if graph.relations.len() != before + 1 {
                return None;
            }
            let rel = &mut graph.relations[before];
            if !predicate
                .referenced_columns()
                .iter()
                .all(|c| side.colmap.contains_key(c))
            {
                return None;
            }
            rel.filter = Some(match rel.filter.take() {
                None => predicate.clone(),
                Some(f) => Expr::binary(BinOp::And, f, predicate.clone()),
            });
            rel.plan = node.clone();
            Some(side)
        }
        PlanNode::Join {
            left,
            right,
            pairs,
            output,
        } => {
            let l = collect(left, catalog, graph, false)?;
            let r = collect(right, catalog, graph, false)?;
            let mut edge_pairs = Vec::with_capacity(pairs.len());
            for (lp, rp) in pairs {
                let (lrel, lcol) = l.colmap.get(lp)?.clone();
                let (rrel, rcol) = r.colmap.get(rp)?.clone();
                graph.edges.push(JoinEdge {
                    left: lrel,
                    right: rrel,
                    pairs: vec![(lcol.clone(), rcol.clone())],
                });
                edge_pairs.push((lp.clone(), rp.clone()));
            }
            let schema = match output {
                Some(s) => s.clone(),
                None => natural_join_schema(&l.schema, &r.schema, pairs).ok()?,
            };
            // Map the join's output columns back to base sources: exact
            // name in either side first, then the Equation-3 collision
            // qualification `{right_name}.{col}`.
            let mut colmap = HashMap::new();
            for name in schema
                .dims
                .iter()
                .map(|d| &d.name)
                .chain(schema.attrs.iter().map(|a| &a.name))
            {
                let src = l
                    .colmap
                    .get(name)
                    .or_else(|| r.colmap.get(name))
                    .cloned()
                    .or_else(|| {
                        let (prefix, col) = name.split_once('.')?;
                        if prefix == r.schema.name {
                            r.colmap.get(col).cloned()
                        } else if prefix == l.schema.name {
                            l.colmap.get(col).cloned()
                        } else {
                            None
                        }
                    })?;
                colmap.insert(name.clone(), src);
            }
            Some(Side { schema, colmap })
        }
        _ => None,
    }
}

/// Union-find saturation of the edge pairs into equivalence classes over
/// `(relation, column)` — the transitive-equality inference.
fn saturate(edges: &[JoinEdge]) -> Vec<Vec<(usize, String)>> {
    let mut nodes: Vec<(usize, String)> = Vec::new();
    let mut index = HashMap::new();
    let id_of = |nodes: &mut Vec<(usize, String)>,
                 index: &mut HashMap<(usize, String), usize>,
                 key: (usize, String)| {
        *index.entry(key.clone()).or_insert_with(|| {
            nodes.push(key);
            nodes.len() - 1
        })
    };
    let mut links: Vec<(usize, usize)> = Vec::new();
    for e in edges {
        for (lc, rc) in &e.pairs {
            let a = id_of(&mut nodes, &mut index, (e.left, lc.clone()));
            let b = id_of(&mut nodes, &mut index, (e.right, rc.clone()));
            links.push((a, b));
        }
    }
    let mut parent: Vec<usize> = (0..nodes.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (a, b) in links {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    let mut groups: HashMap<usize, Vec<(usize, String)>> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(node.clone());
    }
    let mut classes: Vec<Vec<(usize, String)>> = groups
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|mut g| {
            g.sort();
            g
        })
        .collect();
    classes.sort();
    classes
}

/// Estimated selectivity of a filter predicate against per-column
/// histograms: range predicates interpolate bucket mass, equalities use
/// the distinct sketch, conjunction/disjunction combine independently,
/// and anything else falls back to the classic 1/4 guess.
pub fn estimate_selectivity(expr: &Expr, hists: &HashMap<String, Histogram>) -> f64 {
    let sel = selectivity_rec(expr, hists);
    sel.clamp(1e-4, 1.0)
}

fn selectivity_rec(expr: &Expr, hists: &HashMap<String, Histogram>) -> f64 {
    match expr {
        Expr::Binary { op, left, right } => match op {
            BinOp::And => selectivity_rec(left, hists) * selectivity_rec(right, hists),
            BinOp::Or => {
                let (a, b) = (selectivity_rec(left, hists), selectivity_rec(right, hists));
                (a + b - a * b).min(1.0)
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => {
                match comparison_parts(left, right) {
                    Some((col, v, flipped)) => match hists.get(col) {
                        Some(h) => comparison_selectivity(h, *op, v, flipped),
                        None => 0.25,
                    },
                    None => 0.25,
                }
            }
            _ => 0.25,
        },
        Expr::Not(inner) => 1.0 - selectivity_rec(inner, hists),
        _ => 0.25,
    }
}

/// Extract `(column, literal, flipped)` from a comparison's operands.
fn comparison_parts<'a>(left: &'a Expr, right: &'a Expr) -> Option<(&'a str, f64, bool)> {
    match (left, right) {
        (Expr::Column(c), Expr::Literal(v)) => Some((c.as_str(), v.as_float()?, false)),
        (Expr::Literal(v), Expr::Column(c)) => Some((c.as_str(), v.as_float()?, true)),
        _ => None,
    }
}

fn comparison_selectivity(h: &Histogram, op: BinOp, v: f64, flipped: bool) -> f64 {
    // `5 < col` is `col > 5`.
    let op = if flipped {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    } else {
        op
    };
    let below = cdf(h, v);
    match op {
        BinOp::Lt | BinOp::Le => below,
        BinOp::Gt | BinOp::Ge => 1.0 - below,
        BinOp::Eq => 1.0 / h.distinct(),
        BinOp::Ne => 1.0 - 1.0 / h.distinct(),
        _ => 0.25,
    }
}

/// Fraction of observed values below `v`, interpolating linearly within
/// the covering bucket.
fn cdf(h: &Histogram, v: f64) -> f64 {
    if v <= h.min {
        return 0.0;
    }
    if v >= h.max {
        return 1.0;
    }
    let width = (h.max - h.min) / h.buckets.len() as f64;
    if width == 0.0 {
        return 0.5;
    }
    let pos = (v - h.min) / width;
    let idx = (pos as usize).min(h.buckets.len() - 1);
    let frac_in_bucket = pos - idx as f64;
    let below: u64 = h.buckets[..idx].iter().sum();
    (below as f64 + h.buckets[idx] as f64 * frac_in_bucket) / h.count as f64
}

/// Epoch-validated per-column statistics for one stored array.
#[derive(Debug, Clone)]
struct CachedStats {
    /// Catalog epoch the statistics were computed under.
    epoch: u64,
    /// Stored cells (pre-filter).
    rows: f64,
    /// Per-column histograms (with distinct sketches), built lazily for
    /// the columns queries have actually asked about.
    hists: HashMap<String, Histogram>,
}

/// Per-column statistics cache shared by every query of one
/// [`ExecConfig`] — the engine-resident "statistics in the database
/// engine" of §4, so each query pays DP bookkeeping, not a full
/// statistics rescan. Entries are keyed by array name and validated
/// against the catalog epoch: loading or dropping any array bumps the
/// epoch and invalidates every cached entry on its next use. A stale
/// entry (e.g. on a diverged `Cluster` clone) can only steer the DP to
/// a slower order — plan choice never changes results.
#[derive(Debug, Default)]
pub struct StatsCache {
    inner: std::sync::Mutex<HashMap<String, CachedStats>>,
}

impl StatsCache {
    /// Row count and histograms for `cols` of stored array `name`,
    /// computed on first use (or after a catalog change) by streaming
    /// the array's chunks — no coordinator gather, no materialization.
    fn relation_stats(
        &self,
        cluster: &Cluster,
        schema: &ArraySchema,
        name: &str,
        cols: &[String],
    ) -> Option<(f64, HashMap<String, Histogram>)> {
        let epoch = cluster.catalog().epoch();
        let mut cache = self.inner.lock().ok()?;
        let entry = match cache.get_mut(name) {
            Some(e) if e.epoch == epoch => e,
            _ => {
                let rows: usize = cluster
                    .catalog()
                    .chunk_homes(name)
                    .ok()?
                    .keys()
                    .map(|&id| cluster.chunk(name, id).map_or(0, |c| c.cell_count()))
                    .sum();
                cache.insert(
                    name.to_string(),
                    CachedStats {
                        epoch,
                        rows: rows as f64,
                        hists: HashMap::new(),
                    },
                );
                cache.get_mut(name)?
            }
        };
        for col in cols {
            if entry.hists.contains_key(col) {
                continue;
            }
            let chunk_ids: Vec<u64> = cluster
                .catalog()
                .chunk_homes(name)
                .ok()?
                .keys()
                .copied()
                .collect();
            let chunks = chunk_ids
                .iter()
                .filter_map(|&id| cluster.chunk(name, id).ok());
            let hist = if let Some(d) = schema.dims.iter().position(|d| &d.name == col) {
                Histogram::build(
                    chunks.flat_map(|c| c.cells.coords[d].iter().map(|&v| Value::Int(v))),
                    64,
                )
                .ok()
            } else if let Some(a) = schema.attrs.iter().position(|a| &a.name == col) {
                Histogram::build(
                    chunks.flat_map(|c| (0..c.cells.len()).map(move |i| c.cells.value(i, a))),
                    64,
                )
                .ok()
            } else {
                None
            };
            if let Some(h) = hist {
                entry.hists.insert(col.clone(), h);
            }
        }
        Some((entry.rows, entry.hists.clone()))
    }
}

/// Gather per-relation statistics for the cost model: row counts,
/// histograms (with distinct sketches) for every join and filter column,
/// and filter selectivities. Column statistics come from `cache`
/// (computed by streaming stored chunks on first use, reused until the
/// catalog changes).
pub fn gather_stats(
    cluster: &Cluster,
    graph: &JoinGraph,
    cache: &StatsCache,
) -> Option<Vec<RelEstimate>> {
    let mut out = Vec::with_capacity(graph.relations.len());
    for (r, rel) in graph.relations.iter().enumerate() {
        // Columns the cost model needs: this relation's members of every
        // equivalence class, plus anything its filter references.
        let mut cols: Vec<String> = graph
            .classes
            .iter()
            .flat_map(|class| class.iter())
            .filter(|(cr, _)| *cr == r)
            .map(|(_, c)| c.clone())
            .collect();
        if let Some(f) = &rel.filter {
            cols.extend(f.referenced_columns());
        }
        cols.sort();
        cols.dedup();
        let (rows, hists) = cache.relation_stats(cluster, &rel.schema, &rel.name, &cols)?;
        let selectivity = match &rel.filter {
            Some(f) => estimate_selectivity(f, &hists),
            None => 1.0,
        };
        let est_rows = (rows * selectivity).max(1.0);
        let mut ndv = HashMap::new();
        for col in &cols {
            let base = match hists.get(col) {
                Some(h) => h.distinct(),
                None => rows.max(1.0),
            };
            ndv.insert(col.clone(), base.min(est_rows).max(1.0));
        }
        out.push(RelEstimate {
            rows: est_rows,
            ndv,
            selectivity,
        });
    }
    Some(out)
}

/// Optimize every join subtree of `plan`: flatten to a [`JoinGraph`],
/// estimate, run the DP, record the `optimizer` span (chosen order plus
/// per-subset cardinality estimates), and — for three or more relations
/// — replace the subtree with the DP-chosen tree carrying canonical
/// schemas. Two-relation joins keep their original tree (and output
/// schema) so existing binary-join behavior is untouched. Returns `None`
/// when the plan is unchanged.
pub fn optimize_plan(
    cluster: &Cluster,
    plan: &PlanNode,
    config: &ExecConfig,
    parent: &SpanGuard,
) -> Option<PlanNode> {
    if config.optimizer == OptimizerMode::Off {
        return None;
    }
    let changed = std::cell::Cell::new(false);
    let rewritten = optimize_rec(cluster, plan, config, parent, &changed);
    changed.get().then_some(rewritten)
}

fn optimize_rec(
    cluster: &Cluster,
    plan: &PlanNode,
    config: &ExecConfig,
    parent: &SpanGuard,
    changed: &std::cell::Cell<bool>,
) -> PlanNode {
    if let PlanNode::Join { .. } = plan {
        if let Some(opt) = optimize_join(cluster, plan, config, parent) {
            changed.set(true);
            return opt;
        }
        return plan.clone();
    }
    crate::plan::map_children(plan.clone(), &|child| {
        optimize_rec(cluster, &child, config, parent, changed)
    })
}

fn optimize_join(
    cluster: &Cluster,
    plan: &PlanNode,
    config: &ExecConfig,
    parent: &SpanGuard,
) -> Option<PlanNode> {
    let catalog = |name: &str| cluster.catalog().schema(name).ok().cloned();
    let graph = JoinGraph::from_plan(plan, &catalog)?;
    if !graph.is_connected() {
        return None;
    }
    let ests = gather_stats(cluster, &graph, &config.stats)?;
    let dp = graph.optimize(&ests)?;
    let span = parent.child("optimizer");
    span.field("relations", graph.len() as u64);
    span.field("edges", graph.edges.len() as u64);
    span.field("chosen", graph.describe(&dp, dp.full));
    span.field("est_rows", dp.root_rows());
    span.field("cost", dp.root_cost());
    // Per-subset estimates, smallest subsets first, masks ascending.
    let mut masks: Vec<u64> = dp.memo.keys().copied().collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));
    for mask in masks {
        let entry = dp.memo[&mask];
        let sub = span.child("subset");
        sub.field("rels", graph.subset_names(mask));
        sub.field("rows", entry.rows);
        sub.field("cost", entry.cost);
    }
    if graph.len() < 3 {
        // Binary joins keep their tree and default output schema; the
        // span above still surfaces the estimates.
        span.field("reordered", false);
        return None;
    }
    let tree = graph.tree_for_plan(&dp)?;
    let reordered = &tree != plan;
    span.field("reordered", reordered);
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(name: &str) -> PlanNode {
        PlanNode::Scan {
            array: name.to_string(),
        }
    }

    fn join(l: PlanNode, r: PlanNode, pairs: &[(&str, &str)]) -> PlanNode {
        PlanNode::Join {
            left: Box::new(l),
            right: Box::new(r),
            pairs: pairs
                .iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            output: None,
        }
    }

    fn star_catalog() -> impl Fn(&str) -> Option<ArraySchema> {
        |name: &str| {
            let text = match name {
                "F" => "F<d1:int, d2:int, m:int>[i=0,9999,1000]",
                "D1" => "D1<x:int>[j=0,99,100]",
                "D2" => "D2<y:int>[k=0,99,100]",
                _ => return None,
            };
            Some(ArraySchema::parse(text).unwrap())
        }
    }

    fn star_graph() -> JoinGraph {
        let plan = join(
            join(scan("F"), scan("D1"), &[("d1", "j")]),
            scan("D2"),
            &[("d2", "k")],
        );
        JoinGraph::from_plan(&plan, &star_catalog()).unwrap()
    }

    fn star_ests(graph: &JoinGraph) -> Vec<RelEstimate> {
        graph
            .relations
            .iter()
            .map(|rel| {
                let (rows, ndv): (f64, Vec<(&str, f64)>) = match rel.name.as_str() {
                    "F" => (10_000.0, vec![("d1", 100.0), ("d2", 100.0)]),
                    "D1" => (100.0, vec![("j", 100.0)]),
                    "D2" => (4.0, vec![("k", 4.0)]),
                    _ => unreachable!(),
                };
                RelEstimate {
                    rows,
                    ndv: ndv.into_iter().map(|(c, v)| (c.to_string(), v)).collect(),
                    selectivity: 1.0,
                }
            })
            .collect()
    }

    #[test]
    fn from_plan_flattens_relations_and_edges() {
        let g = star_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edges.len(), 2);
        assert!(g.is_connected());
        let names: Vec<&str> = g.relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["F", "D1", "D2"]);
    }

    #[test]
    fn transitive_edges_saturate() {
        // A.x = B.x, B.x = C.x ⇒ one class {A.x, B.x, C.x}; A and C are
        // directly joinable even though no explicit edge links them.
        let catalog = |name: &str| {
            ArraySchema::parse(&format!("{name}<x:int>[i=0,9,10]"))
                .ok()
                .map(|mut s| {
                    s.name = name.to_string();
                    s
                })
        };
        let plan = join(
            join(scan("A"), scan("B"), &[("x", "x")]),
            scan("C"),
            &[("x", "x")],
        );
        let g = JoinGraph::from_plan(&plan, &catalog).unwrap();
        assert_eq!(g.classes().len(), 1);
        assert_eq!(g.classes()[0].len(), 3);
        assert!(g.crossing(0b001, 0b100)); // A—C via transitivity
    }

    #[test]
    fn dp_prefers_small_dimension_first() {
        // D2 shrinks F 25x (ndv 4 vs rows 4 ⇒ N:1, but the class divisor
        // 100 on d2... rows(F⋈D2) = 10_000*4/100 = 400, rows(F⋈D1) =
        // 10_000*100/100 = 10_000 — joining D2 first is much cheaper.
        let g = star_graph();
        let ests = star_ests(&g);
        let dp = g.optimize(&ests).unwrap();
        let chosen = g.describe(&dp, dp.full);
        // Emission puts the smaller estimated side on the left, so the
        // 4-row D2 leads its join with the 10k-row F.
        assert!(
            chosen.contains("(D2 ⋈ F)"),
            "expected D2 joined first, got {chosen}"
        );
        assert!(dp.root_cost() < 10_000.0 + 400.0 + 1.0);
    }

    #[test]
    fn no_cross_products_ever() {
        let g = star_graph();
        let ests = star_ests(&g);
        let dp = g.optimize(&ests).unwrap();
        // D1 and D2 share no class: the memo must not contain their pair.
        assert!(!dp.memo.contains_key(&0b110));
    }

    #[test]
    fn left_deep_enumeration_respects_connectivity() {
        let g = star_graph();
        let orders = g.enumerate_left_deep();
        // Star: F first (2 orders), or a dimension first then F then the
        // other (D1,F,D2 and D2,F,D1) — 4 connected orders of 6 total.
        assert_eq!(orders.len(), 4);
        for o in &orders {
            // Every prefix connected: F (index 0) within first two.
            assert!(o[0] == 0 || o[1] == 0);
        }
    }

    #[test]
    fn canonical_schema_unions_dims_and_qualifies() {
        let g = star_graph();
        let s = g.subset_schema(0b111).unwrap();
        let dim_names: Vec<&str> = s.dims.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(dim_names, vec!["F.i", "D1.j", "D2.k"]);
        let attr_names: Vec<&str> = s.attrs.iter().map(|a| a.name.as_str()).collect();
        // Non-key attributes survive, qualified.
        assert!(attr_names.contains(&"F.m"));
        assert!(attr_names.contains(&"D1.x"));
        assert!(attr_names.contains(&"D2.y"));
        // The join-key attrs F.d1/F.d2 drop: their equivalence classes
        // are represented by the dimensions D1.j / D2.k.
        assert!(!attr_names.contains(&"F.d1"));
        assert!(!attr_names.contains(&"F.d2"));
    }

    #[test]
    fn all_orders_share_root_schema() {
        let g = star_graph();
        let mut roots = Vec::new();
        for order in g.enumerate_left_deep() {
            let tree = g.tree_for_order(&order).unwrap();
            let PlanNode::Join { output, .. } = &tree else {
                panic!("root must be a join");
            };
            roots.push(output.clone().unwrap());
        }
        for r in &roots[1..] {
            assert_eq!(r, &roots[0]);
        }
    }

    #[test]
    fn selectivity_estimates_ranges_and_equalities() {
        let mut hists = HashMap::new();
        hists.insert(
            "v".to_string(),
            Histogram::build((0..1000).map(Value::Int), 64).unwrap(),
        );
        let lt = Expr::binary(BinOp::Lt, Expr::col("v"), Expr::int(100));
        let s = estimate_selectivity(&lt, &hists);
        assert!((s - 0.1).abs() < 0.05, "lt selectivity {s}");
        let eq = Expr::binary(BinOp::Eq, Expr::col("v"), Expr::int(7));
        let s = estimate_selectivity(&eq, &hists);
        assert!(s < 0.01, "eq selectivity {s}");
        let unknown = Expr::binary(BinOp::Lt, Expr::col("zzz"), Expr::int(1));
        assert_eq!(estimate_selectivity(&unknown, &hists), 0.25);
    }
}
