//! The logical plan IR shared by AQL and AFL.
//!
//! Both front ends (`bind_select` output and parsed AFL call trees) lower
//! into [`PlanNode`]s; the engine then runs [`rewrite`] and hands the plan
//! to the streaming pipeline (`crate::pipeline::run_plan`). The node set
//! mirrors the paper's operator framework (§4, Table 1): `scan`, `redim`,
//! `rechunk`, `sort`, `hash` plus the everyday `filter`/`apply`/`project`/
//! `between`/`aggregate`, the shuffle `join`, and an explicit `gather`
//! marking the coordinator boundary.
//!
//! `gather` is what makes the rewriter useful: operators *below* it run
//! node-local on cluster partitions, operators *above* it run on the
//! coordinator's materialized copy. Pushing filters and projections below
//! `gather` shrinks the bytes that cross the boundary.

use sj_array::{ArraySchema, Expr};

/// One node of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Stream a stored array's chunks from the nodes that hold them.
    Scan {
        /// Catalog name of the array.
        array: String,
    },
    /// The coordinator boundary: everything below streams from storage
    /// nodes; bytes crossing this node are accounted as gathered.
    Gather {
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Keep rows whose predicate evaluates to `true`.
    Filter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Compute one output attribute per `(name, expr)` pair, keeping the
    /// dimension space.
    Apply {
        /// Input plan.
        input: Box<PlanNode>,
        /// Output attribute list.
        outputs: Vec<(String, Expr)>,
        /// Resolve qualified column names (`A.v`) against the input
        /// schema leniently (exact name first, bare suffix fallback) —
        /// needed for AQL projection lists over join outputs.
        lenient: bool,
    },
    /// Keep only the named attributes (vertical projection).
    Project {
        /// Input plan.
        input: Box<PlanNode>,
        /// Attribute names to keep.
        attrs: Vec<String>,
    },
    /// Re-dimension into `target` (ordered chunks).
    Redim {
        /// Input plan.
        input: Box<PlanNode>,
        /// Target schema.
        target: ArraySchema,
    },
    /// Re-tile into `target` without sorting (unordered chunks).
    Rechunk {
        /// Input plan.
        input: Box<PlanNode>,
        /// Target schema.
        target: ArraySchema,
    },
    /// Sort chunk cells into C-order.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Inclusive hyper-rectangle window: `bounds` holds the low corner
    /// followed by the high corner (validated against the input's
    /// dimensionality at build time).
    Between {
        /// Input plan.
        input: Box<PlanNode>,
        /// `ndims` low coordinates then `ndims` high coordinates.
        bounds: Vec<i64>,
    },
    /// Whole-array aggregate producing a single cell.
    Aggregate {
        /// Input plan.
        input: Box<PlanNode>,
        /// Aggregate function name (`count`, `sum`, `avg`, `min`, `max`);
        /// kept verbatim because it doubles as the output attribute name.
        func: String,
        /// Attribute to aggregate; defaults to the input's first.
        attr: Option<String>,
    },
    /// Hash-partition cells into dimension-less buckets keyed by the
    /// source dimensions (paper §4: "hash buckets … unordered and
    /// dimension-less").
    Hash {
        /// Input plan.
        input: Box<PlanNode>,
        /// Bucket count.
        buckets: usize,
    },
    /// Skew-aware shuffle join of two plan subtrees. When both inputs are
    /// bare `Scan`s the six-phase executor runs directly against the live
    /// cluster (gathering its own inputs node-side); derived inputs are
    /// materialized and registered as temp arrays on a scratch cluster
    /// first, which is what makes joins composable (`A ⋈ B ⋈ C`).
    Join {
        /// Left input plan.
        left: Box<PlanNode>,
        /// Right input plan.
        right: Box<PlanNode>,
        /// Equality pairs `(left_col, right_col)`, named in each side's
        /// output-column namespace.
        pairs: Vec<(String, String)>,
        /// Optional explicit destination schema (`INTO τ<…>[…]`).
        output: Option<ArraySchema>,
    },
    /// Rename the output array (`INTO name`).
    Rename {
        /// Input plan.
        input: Box<PlanNode>,
        /// New array name.
        name: String,
    },
}

impl PlanNode {
    /// Wrap in a [`PlanNode::Gather`] — the coordinator boundary every
    /// scan gets at lowering time.
    pub fn gathered(self) -> PlanNode {
        PlanNode::Gather {
            input: Box::new(self),
        }
    }

    /// Compact one-line rendering for logs and rewrite tests, e.g.
    /// `gather(filter(scan(A), (v1 > 5)))`.
    pub fn render(&self) -> String {
        match self {
            PlanNode::Scan { array } => format!("scan({array})"),
            PlanNode::Gather { input } => format!("gather({})", input.render()),
            PlanNode::Filter { input, predicate } => {
                format!("filter({}, {predicate})", input.render())
            }
            PlanNode::Apply { input, outputs, .. } => {
                let outs: Vec<String> =
                    outputs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                format!("apply({}, {})", input.render(), outs.join(", "))
            }
            PlanNode::Project { input, attrs } => {
                format!("project({}, {})", input.render(), attrs.join(", "))
            }
            PlanNode::Redim { input, target } => {
                format!("redim({}, {})", input.render(), target.name)
            }
            PlanNode::Rechunk { input, target } => {
                format!("rechunk({}, {})", input.render(), target.name)
            }
            PlanNode::Sort { input } => format!("sort({})", input.render()),
            PlanNode::Between { input, bounds } => {
                let b: Vec<String> = bounds.iter().map(i64::to_string).collect();
                format!("between({}, {})", input.render(), b.join(", "))
            }
            PlanNode::Aggregate { input, func, attr } => match attr {
                Some(a) => format!("aggregate({}, {func}, {a})", input.render()),
                None => format!("aggregate({}, {func})", input.render()),
            },
            PlanNode::Hash { input, buckets } => {
                format!("hash({}, {buckets})", input.render())
            }
            PlanNode::Join {
                left,
                right,
                pairs,
                output,
            } => {
                let ps: Vec<String> = pairs.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                let base = format!(
                    "join({}, {}, {})",
                    left.render(),
                    right.render(),
                    ps.join(", ")
                );
                match output {
                    Some(schema) => format!("{base} into {schema}"),
                    None => base,
                }
            }
            PlanNode::Rename { input, name } => {
                format!("rename({}, {name})", input.render())
            }
        }
    }
}

/// Rewrite a plan: push filters, windows, and projections below `gather`
/// (so they run node-local and shrink the gathered bytes), push
/// relation-qualified filters and projections *into* join inputs (so
/// they run before the shuffle), and fold constant expression subtrees
/// with the runtime evaluator.
///
/// Schema-free form: projection-into-join pushdown needs base-array
/// schemas and is skipped; use [`rewrite_with`] with a catalog lookup to
/// enable it.
pub fn rewrite(plan: PlanNode) -> PlanNode {
    rewrite_with(plan, &|_| None)
}

/// [`rewrite`] with a catalog lookup for stored-array schemas, enabling
/// the schema-dependent rules (projection pushdown into join inputs).
pub fn rewrite_with(plan: PlanNode, catalog: &dyn Fn(&str) -> Option<ArraySchema>) -> PlanNode {
    push_down(fold(plan), catalog)
}

/// Constant folding over every expression the plan carries.
fn fold(plan: PlanNode) -> PlanNode {
    map_inputs(plan, fold, |node| match node {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input,
            predicate: predicate.fold_constants(),
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => PlanNode::Apply {
            input,
            outputs: outputs
                .into_iter()
                .map(|(n, e)| (n, e.fold_constants()))
                .collect(),
            lenient,
        },
        other => other,
    })
}

/// Predicate/window/projection pushdown below `gather` and into join
/// inputs.
///
/// `filter(gather(x))` and `between(gather(x))` never change the schema,
/// and `project(gather(x))`/`apply(gather(x))` are row-local, so all four
/// commute with the coordinator boundary; moving them below it means only
/// surviving (and narrower) cells cross the network. A filter or
/// projection sitting on a join whose columns are all qualified with one
/// side's relation names commutes with the join itself — moving it into
/// that input means it runs *before* the shuffle.
fn push_down(plan: PlanNode, catalog: &dyn Fn(&str) -> Option<ArraySchema>) -> PlanNode {
    let plan = map_inputs(plan, |p| push_down(p, catalog), |node| node);
    match plan {
        PlanNode::Filter { input, predicate } => match *input {
            PlanNode::Gather { input } => {
                push_down(PlanNode::Filter { input, predicate }, catalog).gathered()
            }
            join @ PlanNode::Join { .. } => push_filter_into_join(predicate, join, catalog),
            other => PlanNode::Filter {
                input: Box::new(other),
                predicate,
            },
        },
        PlanNode::Between { input, bounds } => match *input {
            PlanNode::Gather { input } => {
                push_down(PlanNode::Between { input, bounds }, catalog).gathered()
            }
            other => PlanNode::Between {
                input: Box::new(other),
                bounds,
            },
        },
        PlanNode::Project { input, attrs } => match *input {
            PlanNode::Gather { input } => {
                push_down(PlanNode::Project { input, attrs }, catalog).gathered()
            }
            join @ PlanNode::Join { .. } => push_project_into_join(attrs, join, catalog),
            other => PlanNode::Project {
                input: Box::new(other),
                attrs,
            },
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => match *input {
            PlanNode::Gather { input } => push_down(
                PlanNode::Apply {
                    input,
                    outputs,
                    lenient,
                },
                catalog,
            )
            .gathered(),
            other => PlanNode::Apply {
                input: Box::new(other),
                outputs,
                lenient,
            },
        },
        other => other,
    }
}

/// The stored-relation names visible in a join-input subtree, or `None`
/// when the subtree contains a node that renames or re-shapes columns
/// (explicit join output schemas, `Rename`, `Redim`, `Apply`, …), making
/// qualifier attribution unsafe.
fn side_relations(plan: &PlanNode) -> Option<Vec<String>> {
    match plan {
        PlanNode::Scan { array } => Some(vec![array.clone()]),
        PlanNode::Gather { input }
        | PlanNode::Filter { input, .. }
        | PlanNode::Sort { input }
        | PlanNode::Between { input, .. }
        | PlanNode::Project { input, .. } => side_relations(input),
        PlanNode::Join {
            left,
            right,
            output: None,
            ..
        } => {
            let mut rels = side_relations(left)?;
            rels.extend(side_relations(right)?);
            Some(rels)
        }
        _ => None,
    }
}

/// Attribute qualified column names (`Rel.col`, split at the first dot)
/// to the join side whose subtree holds `Rel`. Returns `Some(true)` when
/// every column lands on the left, `Some(false)` when every column lands
/// on the right, `None` when any column is bare, unknown, ambiguous, or
/// the set straddles both sides.
fn attribute_to_one_side(cols: &[String], left: &[String], right: &[String]) -> Option<bool> {
    let mut on_left = false;
    let mut on_right = false;
    for col in cols {
        let (rel, _) = col.split_once('.')?;
        match (
            left.iter().any(|n| n == rel),
            right.iter().any(|n| n == rel),
        ) {
            (true, false) => on_left = true,
            (false, true) => on_right = true,
            _ => return None,
        }
    }
    match (on_left, on_right) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    }
}

/// Strip the `Rel.` qualifier from columns whose relation is in `rels`.
fn strip_side_qualifiers(expr: &Expr, rels: &[String]) -> Expr {
    expr.map_columns(&|name| match name.split_once('.') {
        Some((rel, col)) if rels.iter().any(|n| n == rel) => col.to_string(),
        _ => name.to_string(),
    })
}

/// `filter(join(L, R), pred)` where every predicate column is qualified
/// with relation names from exactly one side: move the filter into that
/// input. When the target side is itself a join the predicate stays
/// qualified (recursion attributes it again one level down); otherwise
/// the qualifiers are stripped so the predicate binds against the base
/// array's bare column names.
fn push_filter_into_join(
    predicate: Expr,
    join: PlanNode,
    catalog: &dyn Fn(&str) -> Option<ArraySchema>,
) -> PlanNode {
    let PlanNode::Join {
        left,
        right,
        pairs,
        output,
    } = join
    else {
        unreachable!("caller matched Join");
    };
    let fallback = |left: Box<PlanNode>, right: Box<PlanNode>, predicate: Expr| PlanNode::Filter {
        input: Box::new(PlanNode::Join {
            left,
            right,
            pairs: pairs.clone(),
            output: output.clone(),
        }),
        predicate,
    };
    let (Some(lrels), Some(rrels)) = (side_relations(&left), side_relations(&right)) else {
        return fallback(left, right, predicate);
    };
    let cols = predicate.referenced_columns();
    let Some(goes_left) = attribute_to_one_side(&cols, &lrels, &rrels) else {
        return fallback(left, right, predicate);
    };
    let (side, other, rels) = if goes_left {
        (*left, *right, lrels)
    } else {
        (*right, *left, rrels)
    };
    let pred = if matches!(side, PlanNode::Join { .. }) {
        predicate
    } else {
        strip_side_qualifiers(&predicate, &rels)
    };
    let side = push_down(
        PlanNode::Filter {
            input: Box::new(side),
            predicate: pred,
        },
        catalog,
    );
    let (new_left, new_right) = if goes_left {
        (side, other)
    } else {
        (other, side)
    };
    PlanNode::Join {
        left: Box::new(new_left),
        right: Box::new(new_right),
        pairs,
        output,
    }
}

/// The output schema a join-input subtree produces, for the chains the
/// project-pushdown rule accepts: scans (catalog lookup) through
/// schema-preserving wrappers, plus projections (attribute subset).
fn side_schema(
    plan: &PlanNode,
    catalog: &dyn Fn(&str) -> Option<ArraySchema>,
) -> Option<ArraySchema> {
    match plan {
        PlanNode::Scan { array } => catalog(array),
        PlanNode::Gather { input }
        | PlanNode::Filter { input, .. }
        | PlanNode::Sort { input }
        | PlanNode::Between { input, .. } => side_schema(input, catalog),
        PlanNode::Project { input, attrs } => {
            let mut schema = side_schema(input, catalog)?;
            let kept: Vec<_> = attrs
                .iter()
                .map(|n| schema.attrs.iter().find(|a| &a.name == n).cloned())
                .collect::<Option<_>>()?;
            schema.attrs = kept;
            Some(schema)
        }
        _ => None,
    }
}

/// `project(join(L, R), attrs)` where every projected column is
/// qualified: narrow each input to the columns the join and the
/// projection actually need, re-derive the natural-join output, and keep
/// a (renamed) outer projection for the final column order. Needs the
/// catalog: the inner projections may only list base *attributes*
/// (dimensions survive projection implicitly), and collision
/// qualification in the new output must be recomputed.
fn push_project_into_join(
    attrs: Vec<String>,
    join: PlanNode,
    catalog: &dyn Fn(&str) -> Option<ArraySchema>,
) -> PlanNode {
    let PlanNode::Join {
        left,
        right,
        pairs,
        output,
    } = join
    else {
        unreachable!("caller matched Join");
    };
    let fallback =
        |left: Box<PlanNode>, right: Box<PlanNode>, attrs: Vec<String>| PlanNode::Project {
            input: Box::new(PlanNode::Join {
                left,
                right,
                pairs: pairs.clone(),
                output: output.clone(),
            }),
            attrs,
        };
    if output.is_some()
        || matches!(*left, PlanNode::Join { .. })
        || matches!(*right, PlanNode::Join { .. })
    {
        return fallback(left, right, attrs);
    }
    let (Some(lrels), Some(rrels)) = (side_relations(&left), side_relations(&right)) else {
        return fallback(left, right, attrs);
    };
    let (Some(lschema), Some(rschema)) =
        (side_schema(&left, catalog), side_schema(&right, catalog))
    else {
        return fallback(left, right, attrs);
    };
    // Partition the projected columns by side; bail on bare/unknown names.
    let mut lcols: Vec<String> = Vec::new();
    let mut rcols: Vec<String> = Vec::new();
    for name in &attrs {
        let Some((rel, col)) = name.split_once('.') else {
            return fallback(left, right, attrs);
        };
        match (
            lrels.iter().any(|n| n == rel),
            rrels.iter().any(|n| n == rel),
        ) {
            (true, false) => lcols.push(col.to_string()),
            (false, true) => rcols.push(col.to_string()),
            _ => return fallback(left, right, attrs),
        }
    }
    // Build the per-side keep lists: projected columns plus the side's
    // predicate columns. Projected columns must be attributes (projecting
    // a dimension is invalid above the join too); predicate columns that
    // are dimensions survive projection implicitly and are skipped.
    let keep_list =
        |schema: &ArraySchema, projected: &[String], keys: &[&String]| -> Option<Vec<String>> {
            let mut keep: Vec<String> = Vec::new();
            for col in projected {
                if !schema.attrs.iter().any(|a| &a.name == col) {
                    return None;
                }
                if !keep.contains(col) {
                    keep.push(col.clone());
                }
            }
            for key in keys {
                let is_attr = schema.attrs.iter().any(|a| a.name == key.as_str());
                let is_dim = schema.dims.iter().any(|d| d.name == key.as_str());
                if !is_attr && !is_dim {
                    return None;
                }
                if is_attr && !keep.iter().any(|k| k == key.as_str()) {
                    keep.push((*key).clone());
                }
            }
            Some(keep)
        };
    let lkeys: Vec<&String> = pairs.iter().map(|(l, _)| l).collect();
    let rkeys: Vec<&String> = pairs.iter().map(|(_, r)| r).collect();
    let (Some(lkeep), Some(rkeep)) = (
        keep_list(&lschema, &lcols, &lkeys),
        keep_list(&rschema, &rcols, &rkeys),
    ) else {
        return fallback(left, right, attrs);
    };
    let narrow =
        |side: PlanNode, schema: &ArraySchema, keep: &[String]| -> (PlanNode, ArraySchema) {
            if keep.len() == schema.attrs.len() {
                return (side, schema.clone());
            }
            let node = push_down(
                PlanNode::Project {
                    input: Box::new(side),
                    attrs: keep.to_vec(),
                },
                catalog,
            );
            let mut narrowed = schema.clone();
            narrowed.attrs = keep
                .iter()
                .map(|n| {
                    schema
                        .attrs
                        .iter()
                        .find(|a| &a.name == n)
                        .cloned()
                        .expect("keep list built from schema attrs")
                })
                .collect();
            (node, narrowed)
        };
    let (new_left, new_lschema) = narrow(*left, &lschema, &lkeep);
    let (new_right, new_rschema) = narrow(*right, &rschema, &rkeep);
    if new_lschema.attrs.len() == lschema.attrs.len()
        && new_rschema.attrs.len() == rschema.attrs.len()
    {
        // Nothing narrowed — keep the original shape (and avoid renaming
        // the outer projection for no gain).
        return fallback(Box::new(new_left), Box::new(new_right), attrs);
    }
    // Re-derive the natural-join output of the narrowed inputs so the
    // outer projection can use the names as they actually appear there
    // (right-side collisions come out qualified `B.col`).
    let Ok(new_output) =
        crate::join_schema::natural_join_schema(&new_lschema, &new_rschema, &pairs)
    else {
        return fallback(Box::new(new_left), Box::new(new_right), attrs);
    };
    let mapped: Vec<String> = attrs
        .iter()
        .map(|name| {
            let (rel, col) = name.split_once('.').expect("checked qualified above");
            if lrels.iter().any(|n| n == rel) {
                col.to_string()
            } else {
                let qualified = format!("{}.{col}", new_rschema.name);
                if new_output.attrs.iter().any(|a| a.name == qualified) {
                    qualified
                } else {
                    col.to_string()
                }
            }
        })
        .collect();
    PlanNode::Project {
        input: Box::new(PlanNode::Join {
            left: Box::new(new_left),
            right: Box::new(new_right),
            pairs,
            output,
        }),
        attrs: mapped,
    }
}

/// Rebuild `plan` with `f` applied to each direct input subtree (the
/// node itself is untouched). Used by passes that drive their own
/// recursion, like the join-order optimizer.
pub fn map_children(plan: PlanNode, f: &dyn Fn(PlanNode) -> PlanNode) -> PlanNode {
    map_inputs(plan, f, |node| node)
}

/// Apply `recurse` to every input subtree, then `f` to the node itself.
fn map_inputs(
    plan: PlanNode,
    recurse: impl Fn(PlanNode) -> PlanNode + Copy,
    f: impl FnOnce(PlanNode) -> PlanNode,
) -> PlanNode {
    let mapped = match plan {
        PlanNode::Scan { .. } => plan,
        PlanNode::Join {
            left,
            right,
            pairs,
            output,
        } => PlanNode::Join {
            left: Box::new(recurse(*left)),
            right: Box::new(recurse(*right)),
            pairs,
            output,
        },
        PlanNode::Gather { input } => PlanNode::Gather {
            input: Box::new(recurse(*input)),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(recurse(*input)),
            predicate,
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => PlanNode::Apply {
            input: Box::new(recurse(*input)),
            outputs,
            lenient,
        },
        PlanNode::Project { input, attrs } => PlanNode::Project {
            input: Box::new(recurse(*input)),
            attrs,
        },
        PlanNode::Redim { input, target } => PlanNode::Redim {
            input: Box::new(recurse(*input)),
            target,
        },
        PlanNode::Rechunk { input, target } => PlanNode::Rechunk {
            input: Box::new(recurse(*input)),
            target,
        },
        PlanNode::Sort { input } => PlanNode::Sort {
            input: Box::new(recurse(*input)),
        },
        PlanNode::Between { input, bounds } => PlanNode::Between {
            input: Box::new(recurse(*input)),
            bounds,
        },
        PlanNode::Aggregate { input, func, attr } => PlanNode::Aggregate {
            input: Box::new(recurse(*input)),
            func,
            attr,
        },
        PlanNode::Hash { input, buckets } => PlanNode::Hash {
            input: Box::new(recurse(*input)),
            buckets,
        },
        PlanNode::Rename { input, name } => PlanNode::Rename {
            input: Box::new(recurse(*input)),
            name,
        },
    };
    f(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::{BinOp, Expr};

    fn scan(name: &str) -> PlanNode {
        PlanNode::Scan { array: name.into() }
    }

    #[test]
    fn filter_pushes_below_gather() {
        let pred = Expr::binary(BinOp::Gt, Expr::col("v"), Expr::int(5));
        let plan = PlanNode::Filter {
            input: Box::new(scan("A").gathered()),
            predicate: pred,
        };
        assert_eq!(rewrite(plan).render(), "gather(filter(scan(A), (v > 5)))");
    }

    #[test]
    fn projection_and_window_push_below_gather() {
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::Between {
                input: Box::new(scan("A").gathered()),
                bounds: vec![1, 5],
            }),
            attrs: vec!["v".into()],
        };
        assert_eq!(
            rewrite(plan).render(),
            "gather(project(between(scan(A), 1, 5), v))"
        );
    }

    #[test]
    fn pushdown_stops_at_non_gather_inputs() {
        // A filter above a redim stays put: redim changes the schema.
        let target = ArraySchema::parse("T<i:int>[v=1,10,5]").unwrap();
        let plan = PlanNode::Filter {
            input: Box::new(PlanNode::Redim {
                input: Box::new(scan("A").gathered()),
                target,
            }),
            predicate: Expr::col("b"),
        };
        assert_eq!(
            rewrite(plan).render(),
            "filter(redim(gather(scan(A)), T), b)"
        );
    }

    #[test]
    fn join_render_includes_into_schema() {
        let output = ArraySchema::parse("T<v:int>[i=1,10,5]").unwrap();
        let plan = PlanNode::Join {
            left: Box::new(scan("A")),
            right: Box::new(scan("B")),
            pairs: vec![("i".into(), "i".into())],
            output: Some(output),
        };
        assert_eq!(
            plan.render(),
            "join(scan(A), scan(B), i = i) into T<v:int>[i=1,10,5]"
        );
        let bare = PlanNode::Join {
            left: Box::new(scan("A")),
            right: Box::new(scan("B")),
            pairs: vec![("i".into(), "i".into())],
            output: None,
        };
        assert_eq!(bare.render(), "join(scan(A), scan(B), i = i)");
    }

    #[test]
    fn constants_fold_inside_plans() {
        let pred = Expr::binary(
            BinOp::Gt,
            Expr::col("v"),
            Expr::binary(BinOp::Add, Expr::int(2), Expr::int(3)),
        );
        let plan = PlanNode::Filter {
            input: Box::new(scan("A").gathered()),
            predicate: pred,
        };
        assert_eq!(rewrite(plan).render(), "gather(filter(scan(A), (v > 5)))");
    }
}
