//! The logical plan IR shared by AQL and AFL.
//!
//! Both front ends (`bind_select` output and parsed AFL call trees) lower
//! into [`PlanNode`]s; the engine then runs [`rewrite`] and hands the plan
//! to the streaming pipeline (`crate::pipeline::run_plan`). The node set
//! mirrors the paper's operator framework (§4, Table 1): `scan`, `redim`,
//! `rechunk`, `sort`, `hash` plus the everyday `filter`/`apply`/`project`/
//! `between`/`aggregate`, the shuffle `join`, and an explicit `gather`
//! marking the coordinator boundary.
//!
//! `gather` is what makes the rewriter useful: operators *below* it run
//! node-local on cluster partitions, operators *above* it run on the
//! coordinator's materialized copy. Pushing filters and projections below
//! `gather` shrinks the bytes that cross the boundary.

use sj_array::{ArraySchema, Expr};

/// One node of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Stream a stored array's chunks from the nodes that hold them.
    Scan {
        /// Catalog name of the array.
        array: String,
    },
    /// The coordinator boundary: everything below streams from storage
    /// nodes; bytes crossing this node are accounted as gathered.
    Gather {
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Keep rows whose predicate evaluates to `true`.
    Filter {
        /// Input plan.
        input: Box<PlanNode>,
        /// Boolean predicate over the input schema.
        predicate: Expr,
    },
    /// Compute one output attribute per `(name, expr)` pair, keeping the
    /// dimension space.
    Apply {
        /// Input plan.
        input: Box<PlanNode>,
        /// Output attribute list.
        outputs: Vec<(String, Expr)>,
        /// Resolve qualified column names (`A.v`) against the input
        /// schema leniently (exact name first, bare suffix fallback) —
        /// needed for AQL projection lists over join outputs.
        lenient: bool,
    },
    /// Keep only the named attributes (vertical projection).
    Project {
        /// Input plan.
        input: Box<PlanNode>,
        /// Attribute names to keep.
        attrs: Vec<String>,
    },
    /// Re-dimension into `target` (ordered chunks).
    Redim {
        /// Input plan.
        input: Box<PlanNode>,
        /// Target schema.
        target: ArraySchema,
    },
    /// Re-tile into `target` without sorting (unordered chunks).
    Rechunk {
        /// Input plan.
        input: Box<PlanNode>,
        /// Target schema.
        target: ArraySchema,
    },
    /// Sort chunk cells into C-order.
    Sort {
        /// Input plan.
        input: Box<PlanNode>,
    },
    /// Inclusive hyper-rectangle window: `bounds` holds the low corner
    /// followed by the high corner (validated against the input's
    /// dimensionality at build time).
    Between {
        /// Input plan.
        input: Box<PlanNode>,
        /// `ndims` low coordinates then `ndims` high coordinates.
        bounds: Vec<i64>,
    },
    /// Whole-array aggregate producing a single cell.
    Aggregate {
        /// Input plan.
        input: Box<PlanNode>,
        /// Aggregate function name (`count`, `sum`, `avg`, `min`, `max`);
        /// kept verbatim because it doubles as the output attribute name.
        func: String,
        /// Attribute to aggregate; defaults to the input's first.
        attr: Option<String>,
    },
    /// Hash-partition cells into dimension-less buckets keyed by the
    /// source dimensions (paper §4: "hash buckets … unordered and
    /// dimension-less").
    Hash {
        /// Input plan.
        input: Box<PlanNode>,
        /// Bucket count.
        buckets: usize,
    },
    /// Skew-aware shuffle join of two *stored* arrays (the six-phase
    /// executor gathers its own inputs node-side).
    Join {
        /// Left stored array name.
        left: String,
        /// Right stored array name.
        right: String,
        /// Equality pairs `(left_col, right_col)`.
        pairs: Vec<(String, String)>,
        /// Optional explicit destination schema (`INTO τ<…>[…]`).
        output: Option<ArraySchema>,
    },
    /// Rename the output array (`INTO name`).
    Rename {
        /// Input plan.
        input: Box<PlanNode>,
        /// New array name.
        name: String,
    },
}

impl PlanNode {
    /// Wrap in a [`PlanNode::Gather`] — the coordinator boundary every
    /// scan gets at lowering time.
    pub fn gathered(self) -> PlanNode {
        PlanNode::Gather {
            input: Box::new(self),
        }
    }

    /// Compact one-line rendering for logs and rewrite tests, e.g.
    /// `gather(filter(scan(A), (v1 > 5)))`.
    pub fn render(&self) -> String {
        match self {
            PlanNode::Scan { array } => format!("scan({array})"),
            PlanNode::Gather { input } => format!("gather({})", input.render()),
            PlanNode::Filter { input, predicate } => {
                format!("filter({}, {predicate})", input.render())
            }
            PlanNode::Apply { input, outputs, .. } => {
                let outs: Vec<String> =
                    outputs.iter().map(|(n, e)| format!("{e} AS {n}")).collect();
                format!("apply({}, {})", input.render(), outs.join(", "))
            }
            PlanNode::Project { input, attrs } => {
                format!("project({}, {})", input.render(), attrs.join(", "))
            }
            PlanNode::Redim { input, target } => {
                format!("redim({}, {})", input.render(), target.name)
            }
            PlanNode::Rechunk { input, target } => {
                format!("rechunk({}, {})", input.render(), target.name)
            }
            PlanNode::Sort { input } => format!("sort({})", input.render()),
            PlanNode::Between { input, bounds } => {
                let b: Vec<String> = bounds.iter().map(i64::to_string).collect();
                format!("between({}, {})", input.render(), b.join(", "))
            }
            PlanNode::Aggregate { input, func, attr } => match attr {
                Some(a) => format!("aggregate({}, {func}, {a})", input.render()),
                None => format!("aggregate({}, {func})", input.render()),
            },
            PlanNode::Hash { input, buckets } => {
                format!("hash({}, {buckets})", input.render())
            }
            PlanNode::Join {
                left, right, pairs, ..
            } => {
                let ps: Vec<String> = pairs.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                format!("join({left}, {right}, {})", ps.join(", "))
            }
            PlanNode::Rename { input, name } => {
                format!("rename({}, {name})", input.render())
            }
        }
    }
}

/// Rewrite a plan: push filters, windows, and projections below `gather`
/// (so they run node-local and shrink the gathered bytes) and fold
/// constant expression subtrees with the runtime evaluator.
pub fn rewrite(plan: PlanNode) -> PlanNode {
    push_down(fold(plan))
}

/// Constant folding over every expression the plan carries.
fn fold(plan: PlanNode) -> PlanNode {
    map_inputs(plan, fold, |node| match node {
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input,
            predicate: predicate.fold_constants(),
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => PlanNode::Apply {
            input,
            outputs: outputs
                .into_iter()
                .map(|(n, e)| (n, e.fold_constants()))
                .collect(),
            lenient,
        },
        other => other,
    })
}

/// Predicate/window/projection pushdown below `gather`.
///
/// `filter(gather(x))` and `between(gather(x))` never change the schema,
/// and `project(gather(x))`/`apply(gather(x))` are row-local, so all four
/// commute with the coordinator boundary; moving them below it means only
/// surviving (and narrower) cells cross the network.
fn push_down(plan: PlanNode) -> PlanNode {
    let plan = map_inputs(plan, push_down, |node| node);
    match plan {
        PlanNode::Filter { input, predicate } => match *input {
            PlanNode::Gather { input } => {
                push_down(PlanNode::Filter { input, predicate }).gathered()
            }
            other => PlanNode::Filter {
                input: Box::new(other),
                predicate,
            },
        },
        PlanNode::Between { input, bounds } => match *input {
            PlanNode::Gather { input } => push_down(PlanNode::Between { input, bounds }).gathered(),
            other => PlanNode::Between {
                input: Box::new(other),
                bounds,
            },
        },
        PlanNode::Project { input, attrs } => match *input {
            PlanNode::Gather { input } => push_down(PlanNode::Project { input, attrs }).gathered(),
            other => PlanNode::Project {
                input: Box::new(other),
                attrs,
            },
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => match *input {
            PlanNode::Gather { input } => push_down(PlanNode::Apply {
                input,
                outputs,
                lenient,
            })
            .gathered(),
            other => PlanNode::Apply {
                input: Box::new(other),
                outputs,
                lenient,
            },
        },
        other => other,
    }
}

/// Apply `recurse` to every input subtree, then `f` to the node itself.
fn map_inputs(
    plan: PlanNode,
    recurse: impl Fn(PlanNode) -> PlanNode + Copy,
    f: impl FnOnce(PlanNode) -> PlanNode,
) -> PlanNode {
    let mapped = match plan {
        PlanNode::Scan { .. } | PlanNode::Join { .. } => plan,
        PlanNode::Gather { input } => PlanNode::Gather {
            input: Box::new(recurse(*input)),
        },
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(recurse(*input)),
            predicate,
        },
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => PlanNode::Apply {
            input: Box::new(recurse(*input)),
            outputs,
            lenient,
        },
        PlanNode::Project { input, attrs } => PlanNode::Project {
            input: Box::new(recurse(*input)),
            attrs,
        },
        PlanNode::Redim { input, target } => PlanNode::Redim {
            input: Box::new(recurse(*input)),
            target,
        },
        PlanNode::Rechunk { input, target } => PlanNode::Rechunk {
            input: Box::new(recurse(*input)),
            target,
        },
        PlanNode::Sort { input } => PlanNode::Sort {
            input: Box::new(recurse(*input)),
        },
        PlanNode::Between { input, bounds } => PlanNode::Between {
            input: Box::new(recurse(*input)),
            bounds,
        },
        PlanNode::Aggregate { input, func, attr } => PlanNode::Aggregate {
            input: Box::new(recurse(*input)),
            func,
            attr,
        },
        PlanNode::Hash { input, buckets } => PlanNode::Hash {
            input: Box::new(recurse(*input)),
            buckets,
        },
        PlanNode::Rename { input, name } => PlanNode::Rename {
            input: Box::new(recurse(*input)),
            name,
        },
    };
    f(mapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::{BinOp, Expr};

    fn scan(name: &str) -> PlanNode {
        PlanNode::Scan { array: name.into() }
    }

    #[test]
    fn filter_pushes_below_gather() {
        let pred = Expr::binary(BinOp::Gt, Expr::col("v"), Expr::int(5));
        let plan = PlanNode::Filter {
            input: Box::new(scan("A").gathered()),
            predicate: pred,
        };
        assert_eq!(rewrite(plan).render(), "gather(filter(scan(A), (v > 5)))");
    }

    #[test]
    fn projection_and_window_push_below_gather() {
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::Between {
                input: Box::new(scan("A").gathered()),
                bounds: vec![1, 5],
            }),
            attrs: vec!["v".into()],
        };
        assert_eq!(
            rewrite(plan).render(),
            "gather(project(between(scan(A), 1, 5), v))"
        );
    }

    #[test]
    fn pushdown_stops_at_non_gather_inputs() {
        // A filter above a redim stays put: redim changes the schema.
        let target = ArraySchema::parse("T<i:int>[v=1,10,5]").unwrap();
        let plan = PlanNode::Filter {
            input: Box::new(PlanNode::Redim {
                input: Box::new(scan("A").gathered()),
                target,
            }),
            predicate: Expr::col("b"),
        };
        assert_eq!(
            rewrite(plan).render(),
            "filter(redim(gather(scan(A)), T), b)"
        );
    }

    #[test]
    fn constants_fold_inside_plans() {
        let pred = Expr::binary(
            BinOp::Gt,
            Expr::col("v"),
            Expr::binary(BinOp::Add, Expr::int(2), Expr::int(3)),
        );
        let plan = PlanNode::Filter {
            input: Box::new(scan("A").gathered()),
            predicate: pred,
        };
        assert_eq!(rewrite(plan).render(), "gather(filter(scan(A), (v > 5)))");
    }
}
