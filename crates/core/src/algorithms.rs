//! Cell-comparison algorithms: hash, merge, and nested-loop join
//! (paper §3.2).
//!
//! All three operate on one join unit at a time: two dimension-less cell
//! batches (one per side, in their [`crate::unit::UnitLayout`]s), the key
//! column indices, and an [`Emitter`] that maps matched pairs to output
//! cells. Equality is numeric-aware (`Int(2)` matches `Float(2.0)`).

use std::collections::HashMap;

use sj_array::expr::compare_values;
use sj_array::{keys, CellBatch, Column, Value};

use crate::error::{JoinError, Result};
use crate::join_schema::{EmitSpec, JoinSchema};
use crate::predicate::JoinSide;

/// The join algorithm chosen by the logical planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Build a hash map over the smaller side, probe with the larger.
    Hash,
    /// Two-cursor merge over key-sorted inputs.
    Merge,
    /// Quadratic scan; never profitable but kept for completeness
    /// (the paper demonstrates this analytically and empirically).
    NestedLoop,
}

impl JoinAlgo {
    /// Display name as used in plan rendering.
    pub fn name(&self) -> &'static str {
        match self {
            JoinAlgo::Hash => "hashJoin",
            JoinAlgo::Merge => "mergeJoin",
            JoinAlgo::NestedLoop => "nestedLoopJoin",
        }
    }

    /// Whether this algorithm requires key-sorted inputs.
    pub fn requires_sorted(&self) -> bool {
        matches!(self, JoinAlgo::Merge)
    }
}

/// Accumulates output cells from matched row pairs.
#[derive(Debug)]
pub struct Emitter<'a> {
    spec: &'a EmitSpec,
    /// The emitted cells, in the output schema's shape (coordinates are
    /// the output dimensions).
    pub out: CellBatch,
    coord_buf: Vec<i64>,
}

impl<'a> Emitter<'a> {
    /// An emitter for the given join schema.
    pub fn new(js: &'a JoinSchema) -> Self {
        let attr_types: Vec<_> = js.output.attrs.iter().map(|a| a.dtype).collect();
        Emitter {
            spec: &js.emit,
            out: CellBatch::new(js.output.ndims(), &attr_types),
            coord_buf: vec![0; js.output.ndims()],
        }
    }

    /// Emit the output cell for matched rows `(lrow, rrow)`.
    ///
    /// Columnar: coordinates come straight off the source columns
    /// ([`Column::coord_at`]) and attributes are appended column-to-
    /// column ([`Column::push_from`]) — no per-cell `Value`s. All
    /// coordinates are validated before anything is pushed, preserving
    /// the row-wise path's error atomicity.
    pub fn emit(
        &mut self,
        left: &CellBatch,
        lrow: usize,
        right: &CellBatch,
        rrow: usize,
    ) -> Result<()> {
        for (k, src) in self.spec.dims.iter().enumerate() {
            let (batch, row) = match src.side {
                JoinSide::Left => (left, lrow),
                JoinSide::Right => (right, rrow),
            };
            self.coord_buf[k] = batch.attrs[src.column].coord_at(row).map_err(|e| {
                JoinError::InvalidOutputSchema(format!(
                    "output dimension {k} received a non-integral value: {e}"
                ))
            })?;
        }
        debug_assert_eq!(self.out.attrs.len(), self.spec.attrs.len());
        for (col, &c) in self.out.coords.iter_mut().zip(&self.coord_buf) {
            col.push(c);
        }
        for (col, src) in self.out.attrs.iter_mut().zip(&self.spec.attrs) {
            let (batch, row) = match src.side {
                JoinSide::Left => (left, lrow),
                JoinSide::Right => (right, rrow),
            };
            col.push_from(&batch.attrs[src.column], row)?;
        }
        Ok(())
    }

    /// Number of cells emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// An empty emitter sharing this one's spec and output layout — one
    /// per worker range in the parallel probe. Forked outputs are glued
    /// back with [`Emitter::absorb`] in range order, so the merged
    /// emission stream is bit-identical to a sequential probe.
    pub fn fork(&self) -> Emitter<'a> {
        Emitter {
            spec: self.spec,
            out: self.out.take(&[]),
            coord_buf: vec![0; self.coord_buf.len()],
        }
    }

    /// Append a forked emitter's cells onto this one.
    pub fn absorb(&mut self, fork: Emitter<'_>) -> Result<()> {
        self.out.append(fork.out).map_err(JoinError::from)
    }
}

/// Which kernels one [`run_join_with`] call actually ran — surfaced so
/// the executor can aggregate dispatch decisions into the
/// `kernel_dispatch` telemetry span and tests can pin
/// dispatch-vs-forced bit identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinKernelInfo {
    /// Sort kernel used on the left input (merge join only).
    pub left_sort: Option<keys::SortKernel>,
    /// Sort kernel used on the right input (merge join only).
    pub right_sort: Option<keys::SortKernel>,
    /// Worker ranges the hash probe was split into (1 = sequential
    /// probe, 0 = not a hash join).
    pub probe_chunks: usize,
}

/// Normalize a key value so numerically-equal ints and floats compare and
/// hash identically.
fn normalize(v: Value) -> Value {
    match v {
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() && f.abs() < 9.2e18 => {
            Value::Int(f as i64)
        }
        other => other,
    }
}

fn key_values(batch: &CellBatch, keys: &[usize], row: usize) -> Vec<Value> {
    keys.iter()
        .map(|&c| normalize(batch.attrs[c].get(row)))
        .collect()
}

/// `normalize` as a columnar predicate: the integral-in-`i64`-range test
/// applied to a raw float.
#[inline]
fn norm_f(f: f64) -> Option<i64> {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 9.2e18 {
        Some(f as i64)
    } else {
        None
    }
}

/// Columnar replica of the row-wise hash-join equality: `normalize` both
/// values, then `Value::eq`. Ints match ints and exactly-integral
/// floats; non-integral floats match only bit-identical floats; every
/// cross-type pair (post-normalization) is unequal — identical to the
/// former `HashMap<Vec<Value>, _>` key comparison, without materializing
/// a `Value`.
fn rows_hash_equal(
    a: &CellBatch,
    akeys: &[usize],
    arow: usize,
    b: &CellBatch,
    bkeys: &[usize],
    brow: usize,
) -> bool {
    akeys
        .iter()
        .zip(bkeys)
        .all(|(&ac, &bc)| match (&a.attrs[ac], &b.attrs[bc]) {
            (Column::Int(x), Column::Int(y)) => x[arow] == y[brow],
            (Column::Int(x), Column::Float(y)) => norm_f(y[brow]) == Some(x[arow]),
            (Column::Float(x), Column::Int(y)) => norm_f(x[arow]) == Some(y[brow]),
            (Column::Float(x), Column::Float(y)) => match (norm_f(x[arow]), norm_f(y[brow])) {
                (Some(xi), Some(yi)) => xi == yi,
                (None, None) => x[arow].to_bits() == y[brow].to_bits(),
                _ => false,
            },
            (Column::Bool(x), Column::Bool(y)) => x[arow] == y[brow],
            (Column::Str(x), Column::Str(y)) => x[arow] == y[brow],
            _ => false,
        })
}

/// Probe-side block size: probe hashes are computed in reusable blocks
/// of this many rows ([`keys::hash_rows_range_into`]), bounding scratch
/// memory while keeping the batched (column-outer) hash loop.
const PROBE_BLOCK: usize = 4096;

/// Hash join over one join unit (paper §3.2): builds on the smaller side
/// and probes with the larger. Operates on unsorted inputs; linear time.
/// Sequential with the default [`keys::KernelConfig`]; see
/// [`hash_join_with`].
pub fn hash_join(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    hash_join_with(
        left,
        left_keys,
        right,
        right_keys,
        emitter,
        &keys::KernelConfig::default(),
    )
    .map(|(matches, _)| matches)
}

/// Hash join with explicit kernel config. Returns the match count and
/// the number of probe ranges used (1 = sequential).
///
/// Two-pass and allocation-light: build rows are hashed in one batched
/// columnar pass ([`keys::hash_rows_into`]), the table is a bucket-chain
/// over pre-sized `u32` arrays (no per-row heap keys), and probe rows
/// hash in reusable blocks — equal-hash candidates are verified by a
/// columnar key compare. Emission order (probe rows ascending, build
/// rows ascending within a key) is bit-identical to the former
/// `HashMap<Vec<Value>, Vec<usize>>` implementation, which remains
/// callable as [`hash_join_rowwise`] for before/after benchmarking.
///
/// With `cfg.threads > 1` and a probe side of at least
/// `cfg.parallel_min_rows` rows, the probe splits into contiguous row
/// ranges, one forked [`Emitter`] each, re-absorbed in range order —
/// the concatenation of per-range emissions in range order *is* the
/// sequential emission order, so results are bit-identical at any
/// thread count.
pub fn hash_join_with(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
    cfg: &keys::KernelConfig,
) -> Result<(usize, usize)> {
    // "This algorithm builds a hash map over the smaller side of the join."
    let left_is_build = left.len() <= right.len();
    let (build, bkeys, probe, pkeys) = if left_is_build {
        (left, left_keys, right, right_keys)
    } else {
        (right, right_keys, left, left_keys)
    };
    debug_assert!(
        build.len() <= probe.len(),
        "hash join must build on the smaller side"
    );
    let n = build.len();
    if n == 0 {
        return Ok((0, 0));
    }
    // Pass 1: hash every build row once, contiguously (batched).
    let mut hashes = Vec::new();
    keys::hash_rows_into(build, bkeys, &mut hashes);
    // Bucket-chain table at load factor ≤ 0.5: `head[bucket]` is the
    // first build row of the chain, `next[row]` the following one.
    // Inserting rows in reverse makes each chain iterate in ascending row
    // order — the same per-key emission order as the row-wise path.
    let nbuckets = (n * 2).next_power_of_two();
    let mask = (nbuckets - 1) as u64;
    let mut head = vec![u32::MAX; nbuckets];
    let mut next = vec![u32::MAX; n];
    for row in (0..n).rev() {
        let b = (hashes[row] & mask) as usize;
        next[row] = head[b];
        head[b] = row as u32;
    }
    let table = ChainTable {
        hashes: &hashes,
        head: &head,
        next: &next,
        mask,
    };
    let threads = cfg.threads.max(1);
    if threads > 1 && probe.len() >= cfg.parallel_min_rows {
        let template: &Emitter<'_> = emitter;
        let ranges = crate::parallel::split_ranges(probe.len(), threads);
        let (results, _) = crate::parallel::par_map(threads, ranges.len(), |w| {
            let (lo, hi) = ranges[w];
            let mut em = template.fork();
            let matches = probe_range(
                &table,
                build,
                bkeys,
                probe,
                pkeys,
                left,
                right,
                left_is_build,
                lo,
                hi,
                &mut em,
            )?;
            Ok::<_, JoinError>((em.out, matches))
        });
        let chunks = results.len();
        let mut matches = 0usize;
        for r in results {
            let (out, m) = r?;
            emitter.out.append(out)?;
            matches += m;
        }
        return Ok((matches, chunks));
    }
    let matches = probe_range(
        &table,
        build,
        bkeys,
        probe,
        pkeys,
        left,
        right,
        left_is_build,
        0,
        probe.len(),
        emitter,
    )?;
    Ok((matches, 1))
}

/// The build-side bucket-chain table, borrowed by probe workers.
struct ChainTable<'a> {
    hashes: &'a [u64],
    head: &'a [u32],
    next: &'a [u32],
    mask: u64,
}

/// Probe rows `lo..hi` against the chain table, emitting matches in
/// probe-row order. Probe hashes are computed in reusable
/// [`PROBE_BLOCK`]-row batches.
#[allow(clippy::too_many_arguments)]
fn probe_range(
    table: &ChainTable<'_>,
    build: &CellBatch,
    bkeys: &[usize],
    probe: &CellBatch,
    pkeys: &[usize],
    left: &CellBatch,
    right: &CellBatch,
    left_is_build: bool,
    lo: usize,
    hi: usize,
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    let mut matches = 0usize;
    let mut phashes = Vec::new();
    let mut block = lo;
    while block < hi {
        let bend = (block + PROBE_BLOCK).min(hi);
        keys::hash_rows_range_into(probe, pkeys, block, bend, &mut phashes);
        for (prow, &h) in (block..bend).zip(&phashes) {
            let mut cur = table.head[(h & table.mask) as usize];
            while cur != u32::MAX {
                let brow = cur as usize;
                if table.hashes[brow] == h
                    && rows_hash_equal(build, bkeys, brow, probe, pkeys, prow)
                {
                    let (lrow, rrow) = if left_is_build {
                        (brow, prow)
                    } else {
                        (prow, brow)
                    };
                    emitter.emit(left, lrow, right, rrow)?;
                    matches += 1;
                }
                cur = table.next[brow];
            }
        }
        block = bend;
    }
    Ok(matches)
}

/// The pre-kernel row-at-a-time hash join (`Vec<Value>`-keyed map),
/// kept callable so benches and tests can measure/verify the columnar
/// rewrite against it.
#[doc(hidden)]
pub fn hash_join_rowwise(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    let left_is_build = left.len() <= right.len();
    let (build, bkeys, probe, pkeys) = if left_is_build {
        (left, left_keys, right, right_keys)
    } else {
        (right, right_keys, left, left_keys)
    };
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(build.len());
    for row in 0..build.len() {
        table
            .entry(key_values(build, bkeys, row))
            .or_default()
            .push(row);
    }
    let mut matches = 0usize;
    for prow in 0..probe.len() {
        let key = key_values(probe, pkeys, prow);
        if let Some(rows) = table.get(&key) {
            for &brow in rows {
                let (lrow, rrow) = if left_is_build {
                    (brow, prow)
                } else {
                    (prow, brow)
                };
                emitter.emit(left, lrow, right, rrow)?;
                matches += 1;
            }
        }
    }
    Ok(matches)
}

/// Merge join over one join unit (paper §3.2): both inputs must be sorted
/// on their key columns. Handles duplicate-key runs by emitting the cross
/// product of each equal-key block.
///
/// When both sides' key columns have identical, normalizable types and
/// the key packs into 8 bytes, each side is encoded once into
/// order-preserving `u64` keys ([`keys::encode_rows_u64`] — the same
/// normalized keys the radix sort uses) and both the two-cursor advance
/// and run detection become integer compares. Mixed-type key pairs
/// (e.g. int vs float) and string/wide keys keep the comparator path —
/// bit-identical either way, since the loop structure is shared.
pub fn merge_join(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    debug_assert!(left.is_sorted_by_attr_columns(left_keys));
    debug_assert!(right.is_sorted_by_attr_columns(right_keys));
    if let Some((lk, rk)) = merge_keys_u64(left, left_keys, right, right_keys) {
        return merge_join_on_keys(left, &lk, right, &rk, emitter);
    }
    merge_join_comparator(left, left_keys, right, right_keys, emitter)
}

/// Normalized `u64` keys for both merge sides, when every key-column
/// pair has the same normalizable type (so per-side encodings are
/// directly comparable) and the key fits one `u64`.
fn merge_keys_u64(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
) -> Option<(Vec<u64>, Vec<u64>)> {
    if left_keys.len() != right_keys.len() {
        return None;
    }
    for (&lc, &rc) in left_keys.iter().zip(right_keys) {
        if left.attrs[lc].dtype() != right.attrs[rc].dtype() {
            return None;
        }
    }
    Some((
        keys::encode_rows_u64(left, left_keys)?,
        keys::encode_rows_u64(right, right_keys)?,
    ))
}

/// The merge loop over pre-encoded normalized keys.
fn merge_join_on_keys(
    left: &CellBatch,
    lk: &[u64],
    right: &CellBatch,
    rk: &[u64],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    let (nl, nr) = (lk.len(), rk.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut matches = 0usize;
    while i < nl && j < nr {
        match lk[i].cmp(&rk[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Chunked 8-wide run detection over the normalized keys.
                let iend = i + keys::key_run_len(lk, i);
                let jend = j + keys::key_run_len(rk, j);
                for li in i..iend {
                    for rj in j..jend {
                        emitter.emit(left, li, right, rj)?;
                        matches += 1;
                    }
                }
                i = iend;
                j = jend;
            }
        }
    }
    Ok(matches)
}

/// The comparator merge loop — fallback for keys that don't normalize.
fn merge_join_comparator(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    let (nl, nr) = (left.len(), right.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut matches = 0usize;
    while i < nl && j < nr {
        let ord = cmp_cross(left, left_keys, i, right, right_keys, j)?;
        match ord {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the extents of the equal-key runs on both sides.
                let mut iend = i + 1;
                while iend < nl
                    && left.cmp_by_attr_columns(left_keys, i, iend) == std::cmp::Ordering::Equal
                {
                    iend += 1;
                }
                let mut jend = j + 1;
                while jend < nr
                    && right.cmp_by_attr_columns(right_keys, j, jend) == std::cmp::Ordering::Equal
                {
                    jend += 1;
                }
                for li in i..iend {
                    for rj in j..jend {
                        emitter.emit(left, li, right, rj)?;
                        matches += 1;
                    }
                }
                i = iend;
                j = jend;
            }
        }
    }
    Ok(matches)
}

fn cmp_cross(
    a: &CellBatch,
    akeys: &[usize],
    arow: usize,
    b: &CellBatch,
    bkeys: &[usize],
    brow: usize,
) -> Result<std::cmp::Ordering> {
    for (&ac, &bc) in akeys.iter().zip(bkeys) {
        let av = a.attrs[ac].get(arow);
        let bv = b.attrs[bc].get(brow);
        match compare_values(&av, &bv).map_err(|e| JoinError::InvalidPredicate(e.to_string()))? {
            std::cmp::Ordering::Equal => continue,
            non_eq => return Ok(non_eq),
        }
    }
    Ok(std::cmp::Ordering::Equal)
}

/// Columnar replica of the predicate equality the nested-loop fallback
/// used (`compare_values(..) == Ok(Equal)`): exact equality within a
/// type, numeric comparison across int/float, and `false` where
/// `compare_values` would error (non-numeric cross-type pairs) — all
/// without cloning a `Value` per probe.
fn rows_predicate_equal(
    a: &CellBatch,
    akeys: &[usize],
    arow: usize,
    b: &CellBatch,
    bkeys: &[usize],
    brow: usize,
) -> bool {
    fn num(c: &Column, i: usize) -> Option<f64> {
        match c {
            Column::Int(v) => Some(v[i] as f64),
            Column::Float(v) => Some(v[i]),
            _ => None,
        }
    }
    akeys
        .iter()
        .zip(bkeys)
        .all(|(&ac, &bc)| match (&a.attrs[ac], &b.attrs[bc]) {
            (Column::Int(x), Column::Int(y)) => x[arow] == y[brow],
            (Column::Str(x), Column::Str(y)) => x[arow] == y[brow],
            (Column::Bool(x), Column::Bool(y)) => x[arow] == y[brow],
            (x, y) => match (num(x, arow), num(y, brow)) {
                (Some(xf), Some(yf)) => xf.total_cmp(&yf) == std::cmp::Ordering::Equal,
                _ => false,
            },
        })
}

/// Nested-loop join over one join unit (paper §3.2): quadratic scan with
/// no sort-order requirements.
pub fn nested_loop_join(
    left: &CellBatch,
    left_keys: &[usize],
    right: &CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    let mut matches = 0usize;
    for lrow in 0..left.len() {
        for rrow in 0..right.len() {
            if rows_predicate_equal(left, left_keys, lrow, right, right_keys, rrow) {
                emitter.emit(left, lrow, right, rrow)?;
                matches += 1;
            }
        }
    }
    Ok(matches)
}

/// Dispatch on [`JoinAlgo`] with the default kernel config. Sorts
/// inputs first when the algorithm requires it and they are not already
/// sorted.
pub fn run_join(
    algo: JoinAlgo,
    left: &mut CellBatch,
    left_keys: &[usize],
    right: &mut CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
) -> Result<usize> {
    run_join_with(
        algo,
        left,
        left_keys,
        right,
        right_keys,
        emitter,
        &keys::KernelConfig::default(),
    )
    .map(|(matches, _)| matches)
}

/// [`run_join`] with explicit kernel dispatch config, reporting which
/// kernels ran. The config steers speed only — every kernel choice and
/// thread count produces bit-identical emissions.
pub fn run_join_with(
    algo: JoinAlgo,
    left: &mut CellBatch,
    left_keys: &[usize],
    right: &mut CellBatch,
    right_keys: &[usize],
    emitter: &mut Emitter<'_>,
    cfg: &keys::KernelConfig,
) -> Result<(usize, JoinKernelInfo)> {
    match algo {
        JoinAlgo::Hash => {
            let (matches, probe_chunks) =
                hash_join_with(left, left_keys, right, right_keys, emitter, cfg)?;
            Ok((
                matches,
                JoinKernelInfo {
                    probe_chunks,
                    ..JoinKernelInfo::default()
                },
            ))
        }
        JoinAlgo::NestedLoop => nested_loop_join(left, left_keys, right, right_keys, emitter)
            .map(|matches| (matches, JoinKernelInfo::default())),
        JoinAlgo::Merge => {
            let left_sort = left.sort_by_attr_columns_with(left_keys, cfg);
            let right_sort = right.sort_by_attr_columns_with(right_keys, cfg);
            let matches = merge_join(left, left_keys, right, right_keys, emitter)?;
            Ok((
                matches,
                JoinKernelInfo {
                    left_sort: Some(left_sort),
                    right_sort: Some(right_sort),
                    probe_chunks: 0,
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_schema::{infer_join_schema, ColumnStats};
    use crate::predicate::JoinPredicate;
    use sj_array::{ArraySchema, DataType};

    /// A 1-D A:A join fixture: A<v:int>[i], B<w:int>[j], predicate v = w.
    fn fixture() -> JoinSchema {
        let a = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let mut stats = ColumnStats::new();
        stats.insert(
            JoinSide::Left,
            "v",
            sj_array::Histogram::build((1..=100).map(Value::Int), 8).unwrap(),
        );
        stats.insert(
            JoinSide::Right,
            "w",
            sj_array::Histogram::build((1..=100).map(Value::Int), 8).unwrap(),
        );
        infer_join_schema(&a, &b, &p, None, &stats).unwrap()
    }

    /// Left batch layout [i, v]; right batch layout [j, w].
    fn batches(left_rows: &[(i64, i64)], right_rows: &[(i64, i64)]) -> (CellBatch, CellBatch) {
        let mut l = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
        for &(i, v) in left_rows {
            l.push(&[], &[Value::Int(i), Value::Int(v)]).unwrap();
        }
        let mut r = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
        for &(j, w) in right_rows {
            r.push(&[], &[Value::Int(j), Value::Int(w)]).unwrap();
        }
        (l, r)
    }

    type Cells = Vec<(Vec<i64>, Vec<Value>)>;

    fn run(algo: JoinAlgo, left_rows: &[(i64, i64)], right_rows: &[(i64, i64)]) -> (usize, Cells) {
        let js = fixture();
        let (mut l, mut r) = batches(left_rows, right_rows);
        let mut em = Emitter::new(&js);
        let n = run_join(algo, &mut l, &[1], &mut r, &[1], &mut em).unwrap();
        let mut cells: Vec<_> = em.out.iter_cells().collect();
        cells.sort();
        (n, cells)
    }

    #[test]
    fn all_algorithms_agree() {
        let left = [(1, 5), (2, 7), (3, 5), (4, 9)];
        let right = [(10, 5), (11, 9), (12, 5), (13, 8)];
        let (nh, ch) = run(JoinAlgo::Hash, &left, &right);
        let (nm, cm) = run(JoinAlgo::Merge, &left, &right);
        let (nn, cn) = run(JoinAlgo::NestedLoop, &left, &right);
        // v=5 matches w=5 twice on each side → 2*2 = 4; v=9 ↔ w=9 → 1.
        assert_eq!(nh, 5);
        assert_eq!(nm, 5);
        assert_eq!(nn, 5);
        assert_eq!(ch, cm);
        assert_eq!(cm, cn);
    }

    #[test]
    fn no_matches_emits_nothing() {
        let (n, cells) = run(JoinAlgo::Hash, &[(1, 5)], &[(2, 6)]);
        assert_eq!(n, 0);
        assert!(cells.is_empty());
    }

    #[test]
    fn empty_sides_are_fine() {
        let (n, _) = run(JoinAlgo::Merge, &[], &[(2, 6)]);
        assert_eq!(n, 0);
        let (n, _) = run(JoinAlgo::Hash, &[(1, 5)], &[]);
        assert_eq!(n, 0);
        let (n, _) = run(JoinAlgo::NestedLoop, &[], &[]);
        assert_eq!(n, 0);
    }

    #[test]
    fn output_cells_carry_correct_values() {
        // Default τ for v=w (Equation 3): dims [i, j] survive from both
        // sides (only the right predicate column w is merged away); the
        // sole attribute is v.
        let js = fixture();
        assert_eq!(js.output.dims[0].name, "i");
        assert_eq!(js.output.dims[1].name, "j");
        let (n, cells) = run(JoinAlgo::Hash, &[(3, 42)], &[(7, 42)]);
        assert_eq!(n, 1);
        let (coord, values) = &cells[0];
        assert_eq!(coord, &vec![3, 7]); // left i, right j
        assert_eq!(values[0], Value::Int(42));
    }

    #[test]
    fn merge_join_duplicate_runs_cross_product() {
        let left = [(1, 5), (2, 5), (3, 5)];
        let right = [(9, 5), (8, 5)];
        let (n, _) = run(JoinAlgo::Merge, &left, &right);
        assert_eq!(n, 6);
    }

    #[test]
    fn hash_join_builds_on_smaller_side_either_way() {
        // Larger left, smaller right and vice versa must both work.
        let big: Vec<(i64, i64)> = (1..=50).map(|i| (i, i % 10)).collect();
        let small = [(1, 3), (2, 7)];
        let (n1, c1) = run(JoinAlgo::Hash, &big, &small);
        let (n2, c2) = run(JoinAlgo::NestedLoop, &big, &small);
        assert_eq!(n1, n2);
        assert_eq!(c1, c2);
        assert_eq!(n1, 10); // 5 left cells with v=3 + 5 with v=7
    }

    #[test]
    fn mixed_int_float_keys_match() {
        let a = ArraySchema::parse("A<v:float>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let mut stats = ColumnStats::new();
        stats.insert(
            JoinSide::Left,
            "v",
            sj_array::Histogram::build((1..=10).map(Value::Int), 4).unwrap(),
        );
        let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
        let mut l = CellBatch::new(0, &[DataType::Int64, DataType::Float64]);
        l.push(&[], &[Value::Int(1), Value::Float(5.0)]).unwrap();
        l.push(&[], &[Value::Int(2), Value::Float(5.5)]).unwrap();
        let mut r = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
        r.push(&[], &[Value::Int(9), Value::Int(5)]).unwrap();
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let mut em = Emitter::new(&js);
            let n = run_join(algo, &mut l.clone(), &[1], &mut r.clone(), &[1], &mut em).unwrap();
            assert_eq!(n, 1, "algo {algo:?} missed the 5.0 == 5 match");
        }
    }

    #[test]
    fn columnar_hash_join_is_bit_identical_to_rowwise() {
        let js = fixture();
        // Skewed duplicate keys; asymmetric sizes so each call exercises
        // a different build side.
        let big: Vec<(i64, i64)> = (1..=60).map(|i| (i, i % 7)).collect();
        let small: Vec<(i64, i64)> = (1..=25).map(|j| (j, j % 5)).collect();
        for (lrows, rrows) in [(&big, &small), (&small, &big)] {
            let (l, r) = batches(lrows, rrows);
            let mut em_new = Emitter::new(&js);
            let mut em_old = Emitter::new(&js);
            let n_new = hash_join(&l, &[1], &r, &[1], &mut em_new).unwrap();
            let n_old = hash_join_rowwise(&l, &[1], &r, &[1], &mut em_old).unwrap();
            assert_eq!(n_new, n_old);
            // Same cells in the same emission order, not just as a set.
            assert_eq!(em_new.out, em_old.out);
        }
    }

    #[test]
    fn parallel_probe_is_bit_identical_to_sequential() {
        let js = fixture();
        // Skewed keys, both build directions, match-heavy.
        let big: Vec<(i64, i64)> = (1..=4000).map(|i| (i, i % 37)).collect();
        let small: Vec<(i64, i64)> = (1..=500).map(|j| (j, j % 23)).collect();
        for (lrows, rrows) in [(&big, &small), (&small, &big)] {
            let (l, r) = batches(lrows, rrows);
            let mut em_seq = Emitter::new(&js);
            let (n_seq, chunks) = hash_join_with(
                &l,
                &[1],
                &r,
                &[1],
                &mut em_seq,
                &keys::KernelConfig::default(),
            )
            .unwrap();
            assert_eq!(chunks, 1);
            assert!(n_seq > 0);
            for t in [2usize, 3, 8] {
                let cfg = keys::KernelConfig {
                    threads: t,
                    parallel_min_rows: 0,
                    ..keys::KernelConfig::default()
                };
                let mut em_par = Emitter::new(&js);
                let (n_par, chunks) =
                    hash_join_with(&l, &[1], &r, &[1], &mut em_par, &cfg).unwrap();
                assert_eq!(n_par, n_seq, "threads={t}");
                assert_eq!(chunks, t, "threads={t}");
                // Emission order included — not just the match multiset.
                assert_eq!(em_par.out, em_seq.out, "threads={t}");
            }
        }
    }

    #[test]
    fn run_join_with_reports_kernels() {
        let js = fixture();
        let rows: Vec<(i64, i64)> = (1..=100).map(|i| (i, (i * 7) % 50)).collect();
        let (mut l, mut r) = batches(&rows, &rows);
        let cfg = keys::KernelConfig {
            radix_min_rows: 0,
            ..keys::KernelConfig::default()
        };
        let mut em = Emitter::new(&js);
        let (_, info) =
            run_join_with(JoinAlgo::Merge, &mut l, &[1], &mut r, &[1], &mut em, &cfg).unwrap();
        // 50-value domain over 100 rows: counting sort qualifies.
        assert_eq!(info.left_sort, Some(keys::SortKernel::Counting));
        assert_eq!(info.right_sort, Some(keys::SortKernel::Counting));
        assert_eq!(info.probe_chunks, 0);
        let mut em = Emitter::new(&js);
        let (_, info) =
            run_join_with(JoinAlgo::Hash, &mut l, &[1], &mut r, &[1], &mut em, &cfg).unwrap();
        assert_eq!(info.left_sort, None);
        assert_eq!(info.probe_chunks, 1);
    }

    #[test]
    fn merge_normalized_keys_match_comparator_path() {
        // Float keys on both sides take the normalized-u64 merge path;
        // include signed zeros (distinct under total_cmp) and runs.
        let a = ArraySchema::parse("A<v:float>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:float>[j=1,100,10]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w")]);
        let mut stats = ColumnStats::new();
        stats.insert(
            JoinSide::Left,
            "v",
            sj_array::Histogram::build((1..=10).map(Value::Int), 4).unwrap(),
        );
        let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
        let mk = |rows: &[(i64, f64)]| {
            let mut c = CellBatch::new(0, &[DataType::Int64, DataType::Float64]);
            for &(i, v) in rows {
                c.push(&[], &[Value::Int(i), Value::Float(v)]).unwrap();
            }
            c.sort_by_attr_columns(&[1]);
            c
        };
        let l = mk(&[(1, -0.0), (2, 0.0), (3, 2.5), (4, 2.5), (5, -7.0)]);
        let r = mk(&[(9, 0.0), (8, 2.5), (7, 2.5), (6, -0.0), (5, 3.0)]);
        let mut em_new = Emitter::new(&js);
        let mut em_old = Emitter::new(&js);
        let n_new = merge_join(&l, &[1], &r, &[1], &mut em_new).unwrap();
        let n_old = merge_join_comparator(&l, &[1], &r, &[1], &mut em_old).unwrap();
        assert_eq!(n_new, n_old);
        assert_eq!(em_new.out, em_old.out);
        // -0.0 matches only -0.0 and 0.0 only 0.0 under total order, plus
        // the 2×2 cross product of the 2.5 runs.
        assert_eq!(n_new, 6);
    }

    #[test]
    fn multi_key_join() {
        // Join on (v, i) vs (w, j) two-column keys.
        let a = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        let b = ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap();
        let p = JoinPredicate::new(vec![("v", "w"), ("i", "j")]);
        let mut stats = ColumnStats::new();
        for (side, col) in [(JoinSide::Left, "v"), (JoinSide::Right, "w")] {
            stats.insert(
                side,
                col,
                sj_array::Histogram::build((1..=10).map(Value::Int), 4).unwrap(),
            );
        }
        let js = infer_join_schema(&a, &b, &p, None, &stats).unwrap();
        let (mut l, mut r) = batches(&[(1, 5), (2, 5), (3, 6)], &[(1, 5), (2, 6), (3, 6)]);
        // keys: left (v=col1, i=col0), right (w=col1, j=col0)
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let mut em = Emitter::new(&js);
            let n = run_join(algo, &mut l, &[1, 0], &mut r, &[1, 0], &mut em).unwrap();
            // Matches: (1,5)↔(1,5) and (3,6)↔(3,6).
            assert_eq!(n, 2, "algo {algo:?}");
        }
        let _ = (&mut l, &mut r);
    }
}
