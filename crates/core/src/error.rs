//! Error types for the shuffle-join framework.

use std::fmt;

/// Errors produced by join planning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// A predicate referenced a column missing from both schemas.
    UnknownColumn(String),
    /// The query's predicate list is empty or malformed.
    InvalidPredicate(String),
    /// No valid logical plan exists for the query.
    NoValidPlan(String),
    /// The requested output schema cannot be produced by this join.
    InvalidOutputSchema(String),
    /// The underlying array engine failed.
    Storage(String),
    /// The cluster layer failed; carries the typed cluster cause so
    /// callers can distinguish, say, a dead node from a lost chunk.
    Cluster(sj_cluster::ClusterError),
    /// The physical planner failed to produce an assignment.
    Planning(String),
    /// An [`crate::exec::ExecConfig`] builder rejected an incoherent
    /// combination of settings.
    Config(String),
    /// Internal invariant violation.
    Internal(String),
    /// The query was cancelled via its [`sj_telemetry::CancelHandle`]
    /// before it finished.
    Cancelled,
    /// The query's deadline elapsed before it finished (and the
    /// configured policy did not allow it to run to completion).
    DeadlineExceeded,
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            JoinError::InvalidPredicate(msg) => write!(f, "invalid predicate: {msg}"),
            JoinError::NoValidPlan(msg) => write!(f, "no valid logical plan: {msg}"),
            JoinError::InvalidOutputSchema(msg) => write!(f, "invalid output schema: {msg}"),
            JoinError::Storage(msg) => write!(f, "storage error: {msg}"),
            JoinError::Cluster(e) => write!(f, "cluster error: {e}"),
            JoinError::Planning(msg) => write!(f, "planning error: {msg}"),
            JoinError::Config(msg) => write!(f, "invalid execution config: {msg}"),
            JoinError::Internal(msg) => write!(f, "internal error: {msg}"),
            JoinError::Cancelled => write!(f, "query cancelled"),
            JoinError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for JoinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JoinError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sj_array::ArrayError> for JoinError {
    fn from(e: sj_array::ArrayError) -> Self {
        JoinError::Storage(e.to_string())
    }
}

impl From<sj_cluster::ClusterError> for JoinError {
    fn from(e: sj_cluster::ClusterError) -> Self {
        // Lifecycle interruptions surface as their own typed variants so
        // callers never have to dig through the cluster layer for them.
        match e {
            sj_cluster::ClusterError::Interrupted(cause) => JoinError::from(cause),
            other => JoinError::Cluster(other),
        }
    }
}

impl From<sj_telemetry::Interrupt> for JoinError {
    fn from(cause: sj_telemetry::Interrupt) -> Self {
        match cause {
            sj_telemetry::Interrupt::Cancelled => JoinError::Cancelled,
            sj_telemetry::Interrupt::DeadlineExceeded => JoinError::DeadlineExceeded,
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, JoinError>;
