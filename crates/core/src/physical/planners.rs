//! The shuffle planners (paper §5.2): Baseline, Minimum Bandwidth
//! Heuristic, Tabu search, ILP solver, and the Coarse ILP solver.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use sj_ilp::{Cmp, IlpSolver, LinExpr, Model, SolveStatus};

use crate::algorithms::JoinAlgo;
use crate::error::{JoinError, Result};
use crate::physical::cost::{plan_cost, Assignment, CostParams, CostState, SliceStats};
use crate::predicate::JoinSide;

/// Which physical planner to run.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerKind {
    /// The skew-agnostic baseline (§6.2): array-level decisions — move
    /// the smaller array to the larger for merge joins; equal contiguous
    /// bucket ranges per node for hash joins.
    Baseline,
    /// Greedy center-of-gravity placement (provably minimal transfer).
    MinBandwidth,
    /// Locally-optimal search seeded with MinBandwidth (Algorithm 2).
    Tabu,
    /// Branch & bound over the ILP formulation (Equations 10–12), with a
    /// time budget; falls back to the MinBandwidth incumbent at expiry.
    Ilp {
        /// Solver wall-clock budget.
        budget: Duration,
    },
    /// ILP over join units grouped by center of gravity into `bins` bins.
    IlpCoarse {
        /// Solver wall-clock budget.
        budget: Duration,
        /// Number of bins to pack join units into (the paper uses 75).
        bins: usize,
    },
}

impl PlannerKind {
    /// Short display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PlannerKind::Baseline => "B",
            PlannerKind::MinBandwidth => "MBH",
            PlannerKind::Tabu => "Tabu",
            PlannerKind::Ilp { .. } => "ILP",
            PlannerKind::IlpCoarse { .. } => "ILP-C",
        }
    }
}

/// Which tier of the degrade-gracefully planner chain produced a plan.
///
/// The chain is requested planner → greedy (MinBandwidth) → naive
/// (Baseline): a correct-if-suboptimal plan always exists, so an ILP
/// failure or a degraded cluster downgrades the plan instead of failing
/// the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanTier {
    /// The requested planner produced the plan.
    Primary,
    /// The requested planner failed (or was skipped on a degraded
    /// cluster / exhausted ILP budget); the greedy MinBandwidth
    /// heuristic stood in.
    Greedy,
    /// Even the greedy tier failed; the skew-agnostic baseline
    /// rechunking produced the plan.
    Naive,
}

impl PlanTier {
    /// Short display name for metrics and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            PlanTier::Primary => "primary",
            PlanTier::Greedy => "greedy",
            PlanTier::Naive => "naive",
        }
    }
}

/// Solve statistics from one branch & bound run — the telemetry the ILP
/// phase span records (nodes expanded, bound quality, warm-start hits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpStats {
    /// How the solver terminated.
    pub status: SolveStatus,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// Objective of the returned incumbent (scaled model units).
    pub objective: f64,
    /// Best proven lower bound on the optimum (scaled model units).
    pub bound: f64,
    /// True when the returned assignment is the MinBandwidth warm start
    /// (the solver never improved on its seed).
    pub warm_start_hit: bool,
}

/// The result of physical planning.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// `assignment[i]` = node that processes join unit `i`.
    pub assignment: Assignment,
    /// Wall-clock time the planner took.
    pub planning_time: Duration,
    /// The plan's analytical cost (Equation 8).
    pub est_cost: f64,
    /// Planner that produced the plan.
    pub planner: &'static str,
    /// For ILP planners: how the solver terminated.
    pub solver_status: Option<SolveStatus>,
    /// For ILP planners: full solve statistics.
    pub ilp: Option<IlpStats>,
    /// Which tier of the fallback chain produced the assignment.
    pub tier: PlanTier,
}

/// Run `kind` on the reported slice statistics.
///
/// `larger_side` tells the baseline which input array is bigger (it
/// plans at array granularity).
pub fn plan_physical(
    kind: &PlannerKind,
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    larger_side: JoinSide,
) -> Result<PhysicalPlan> {
    let start = Instant::now();
    let (assignment, ilp_stats) = match kind {
        PlannerKind::Baseline => (baseline(stats, algo, larger_side), None),
        PlannerKind::MinBandwidth => (min_bandwidth(stats), None),
        PlannerKind::Tabu => (tabu(stats, params, algo)?, None),
        PlannerKind::Ilp { budget } => {
            let (a, s) = ilp(stats, params, algo, *budget)?;
            (a, Some(s))
        }
        PlannerKind::IlpCoarse { budget, bins } => {
            let (a, s) = ilp_coarse(stats, params, algo, *budget, *bins)?;
            (a, Some(s))
        }
    };
    let est_cost = plan_cost(stats, params, algo, &assignment)?;
    // A budget-exhausted ILP returns its MinBandwidth warm start: the
    // assignment is the greedy tier's, whatever the requested planner.
    let tier = match &ilp_stats {
        Some(s) if !s.status.found_feasible() => PlanTier::Greedy,
        _ => PlanTier::Primary,
    };
    Ok(PhysicalPlan {
        assignment,
        planning_time: start.elapsed(),
        est_cost,
        planner: kind.name(),
        solver_status: ilp_stats.as_ref().map(|s| s.status),
        ilp: ilp_stats,
        tier,
    })
}

/// Run the degrade-gracefully planner chain: the requested planner,
/// then greedy MinBandwidth, then the naive Baseline — so a join is
/// never failed by its planner while *a* correct plan exists.
///
/// With `degraded = true` (the cluster lost a node), expensive ILP
/// planners are skipped outright: solving a minute-long integer program
/// against a cluster that is actively failing is worse than shipping a
/// greedy plan now.
pub fn plan_physical_resilient(
    kind: &PlannerKind,
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    larger_side: JoinSide,
    degraded: bool,
) -> Result<PhysicalPlan> {
    let skip_primary = degraded
        && matches!(
            kind,
            PlannerKind::Ilp { .. } | PlannerKind::IlpCoarse { .. }
        );
    if !skip_primary {
        if let Ok(plan) = plan_physical(kind, stats, params, algo, larger_side) {
            return Ok(plan);
        }
    }
    if !matches!(kind, PlannerKind::MinBandwidth) {
        if let Ok(mut plan) =
            plan_physical(&PlannerKind::MinBandwidth, stats, params, algo, larger_side)
        {
            plan.tier = PlanTier::Greedy;
            return Ok(plan);
        }
    }
    let mut plan = plan_physical(&PlannerKind::Baseline, stats, params, algo, larger_side)?;
    plan.tier = PlanTier::Naive;
    Ok(plan)
}

/// The skew-agnostic baseline (§6.2).
fn baseline(stats: &SliceStats, algo: JoinAlgo, larger_side: JoinSide) -> Assignment {
    let k = stats.nodes();
    let n = stats.n_units();
    match algo {
        // "For merge joins, this approach simply moves the smaller array
        // to the larger one": each unit is processed where the larger
        // array stores that unit's cells.
        JoinAlgo::Merge | JoinAlgo::NestedLoop => (0..n)
            .map(|i| {
                let side = match larger_side {
                    JoinSide::Left => &stats.left[i],
                    JoinSide::Right => &stats.right[i],
                };
                argmax_or(side, i % k)
            })
            .collect(),
        // "For hash joins, the planner assigns an equal number of buckets
        // to each node": the first ⌈b/k⌉ buckets to node 0, and so on.
        JoinAlgo::Hash => {
            let per = n.div_ceil(k).max(1);
            (0..n).map(|i| (i / per).min(k - 1)).collect()
        }
    }
}

/// Minimum Bandwidth Heuristic (§5.2): each unit goes to its center of
/// gravity, `argmax_j s_{i,j}` — provably minimal cells transmitted.
fn min_bandwidth(stats: &SliceStats) -> Assignment {
    let k = stats.nodes();
    (0..stats.n_units())
        .map(|i| {
            let combined: Vec<u64> = (0..k).map(|j| stats.s(i, j)).collect();
            argmax_or(&combined, i % k)
        })
        .collect()
}

fn argmax_or(values: &[u64], fallback: usize) -> usize {
    // Strict improvement over the fallback's value: exact ties keep the
    // round-robin fallback so uniformly-spread units don't all collapse
    // onto node 0.
    let mut best = fallback.min(values.len().saturating_sub(1));
    let mut best_val = values.get(best).copied().unwrap_or(0);
    for (j, &v) in values.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = j;
        }
    }
    best
}

/// Tabu search (Algorithm 2): start from the MinBandwidth plan, then
/// repeatedly rebalance nodes whose cost exceeds the mean, forbidding
/// repeat placements via a global tabu list of `(unit, node)` pairs.
#[allow(clippy::needless_range_loop)]
fn tabu(stats: &SliceStats, params: &CostParams, algo: JoinAlgo) -> Result<Assignment> {
    let k = stats.nodes();
    let init = min_bandwidth(stats);
    let mut tabu_list: HashSet<(usize, usize)> = HashSet::new();
    for (i, &j) in init.iter().enumerate() {
        tabu_list.insert((i, j));
    }
    let mut state = CostState::new(stats, params, algo, init)?;
    loop {
        let prev = state.assignment.clone();
        let node_costs = state.node_costs(params);
        let mean = node_costs.iter().sum::<f64>() / k as f64;
        for j in 0..k {
            if node_costs[j] > mean {
                rebalance_node(j, stats, params, &mut state, &mut tabu_list);
            }
        }
        if state.assignment == prev {
            return Ok(state.assignment);
        }
    }
}

/// `RebalanceNode` from Algorithm 2: what-if every unit on the node
/// against every other node; accept moves that lower the whole plan's
/// cost, recording them in the tabu list.
fn rebalance_node(
    node: usize,
    stats: &SliceStats,
    params: &CostParams,
    state: &mut CostState,
    tabu_list: &mut HashSet<(usize, usize)>,
) {
    let k = stats.nodes();
    let units: Vec<usize> = (0..stats.n_units())
        .filter(|&i| state.assignment[i] == node)
        .collect();
    for i in units {
        let mut current = state.total(params);
        for j in 0..k {
            if j == node || tabu_list.contains(&(i, j)) || state.assignment[i] != node {
                continue;
            }
            let candidate = state.what_if(stats, params, i, j);
            if candidate < current - f64::EPSILON * current.abs() {
                state.reassign(stats, i, j);
                tabu_list.insert((i, j));
                current = candidate;
            }
        }
    }
}

/// Scale factor so ILP coefficients sit near 1 (numerical hygiene for
/// the simplex).
fn ilp_scale(stats: &SliceStats, params: &CostParams, algo: JoinAlgo) -> f64 {
    let n = stats.n_units().max(1);
    let mean_cost: f64 = (0..stats.n_units())
        .map(|i| stats.unit_cost(params, algo, i) + stats.unit_total(i) as f64 * params.t)
        .sum::<f64>()
        / n as f64;
    if mean_cost > 0.0 {
        mean_cost
    } else {
        1.0
    }
}

/// Build the integer program of §5.2 (Equations 4, 10, 11, 12) and run
/// the branch & bound solver, warm-started with the MinBandwidth plan.
/// Returns the incumbent assignment (MBH fallback if the solver found
/// nothing within budget).
fn ilp(
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    budget: Duration,
) -> Result<(Assignment, IlpStats)> {
    solve_ilp_over(stats, params, algo, budget)
}

fn solve_ilp_over(
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    budget: Duration,
) -> Result<(Assignment, IlpStats)> {
    let n = stats.n_units();
    let k = stats.nodes();
    let scale = ilp_scale(stats, params, algo);
    let mut model = Model::minimize();
    // x[i][j]: unit i assigned to node j.
    let x: Vec<Vec<_>> = (0..n)
        .map(|i| {
            (0..k)
                .map(|j| model.binary(format!("x{i}_{j}")))
                .collect::<Vec<_>>()
        })
        .collect();
    // d: data-alignment time bound; g: cell-comparison time bound.
    let d = model.continuous("d", 0.0, f64::INFINITY);
    let g = model.continuous("g", 0.0, f64::INFINITY);

    // Equation 4: each unit on exactly one node.
    for xi in &x {
        let expr = xi.iter().fold(LinExpr::new(), |e, &v| e.add(v, 1.0));
        model.constrain(expr, Cmp::Eq, 1.0);
    }
    // Equation 10 (send): for node q,
    //   d ≥ t · (Σ_i s_iq − Σ_i x_iq·s_iq)
    for q in 0..k {
        let stored_q: f64 = (0..n).map(|i| stats.s(i, q) as f64).sum();
        let mut expr = LinExpr::new().add(d, 1.0);
        for (i, xi) in x.iter().enumerate() {
            expr = expr.add(xi[q], params.t * stats.s(i, q) as f64 / scale);
        }
        model.constrain(expr, Cmp::Ge, params.t * stored_q / scale);
    }
    // Equation 11 (receive): d ≥ t · Σ_i x_iq (S_i − s_iq).
    for q in 0..k {
        let mut expr = LinExpr::new().add(d, 1.0);
        for (i, xi) in x.iter().enumerate() {
            let remote = (stats.unit_total(i) - stats.s(i, q)) as f64;
            expr = expr.add(xi[q], -params.t * remote / scale);
        }
        model.constrain(expr, Cmp::Ge, 0.0);
    }
    // Equation 12 (comparison): g ≥ Σ_i x_iq C_i.
    for q in 0..k {
        let mut expr = LinExpr::new().add(g, 1.0);
        for (i, xi) in x.iter().enumerate() {
            expr = expr.add(xi[q], -stats.unit_cost(params, algo, i) / scale);
        }
        model.constrain(expr, Cmp::Ge, 0.0);
    }
    model.set_objective(LinExpr::new().add(d, 1.0).add(g, 1.0));

    // Warm start: the MinBandwidth plan.
    let mbh = min_bandwidth(stats);
    let mut warm = vec![0.0; model.num_vars()];
    for (i, &j) in mbh.iter().enumerate() {
        warm[x[i][j].index()] = 1.0;
    }
    {
        let loads = crate::physical::cost::plan_loads(stats, params, algo, &mbh)?;
        let max_align = loads
            .send
            .iter()
            .chain(&loads.recv)
            .copied()
            .fold(0.0, f64::max);
        warm[d.index()] = max_align * params.t / scale;
        warm[g.index()] = loads.comp.iter().copied().fold(0.0, f64::max) / scale;
    }

    let solver = IlpSolver {
        time_budget: budget,
        initial_incumbent: Some(warm),
        ..IlpSolver::default()
    };
    let solution = solver.solve(&model);
    let stats_of = |assignment: &Assignment| IlpStats {
        status: solution.status,
        nodes_explored: solution.nodes_explored as u64,
        objective: solution.objective,
        bound: solution.bound,
        warm_start_hit: *assignment == mbh,
    };
    match solution.status {
        SolveStatus::Optimal | SolveStatus::Feasible => {
            let mut assignment = vec![0usize; n];
            for (i, xi) in x.iter().enumerate() {
                let mut best = 0usize;
                let mut best_val = f64::NEG_INFINITY;
                for (j, v) in xi.iter().enumerate() {
                    let val = solution.values[v.index()];
                    if val > best_val {
                        best_val = val;
                        best = j;
                    }
                }
                assignment[i] = best;
            }
            let stats = stats_of(&assignment);
            Ok((assignment, stats))
        }
        // Budget ran out with nothing usable: fall back to MBH (the
        // paper's ILP also degrades to its initial heuristics under
        // pressure, §6.2.2).
        SolveStatus::BudgetExhausted => {
            let stats = stats_of(&mbh);
            Ok((mbh, stats))
        }
        SolveStatus::Infeasible | SolveStatus::Unbounded => Err(JoinError::Planning(format!(
            "join ILP reported {} — model construction bug",
            solution.status
        ))),
    }
}

/// Coarse ILP (§5.2): group join units that share a center of gravity,
/// split each group into size-balanced bins (≈ `bins` total), solve the
/// ILP over bins, and expand back to units.
fn ilp_coarse(
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    budget: Duration,
    bins: usize,
) -> Result<(Assignment, IlpStats)> {
    let n = stats.n_units();
    let k = stats.nodes();
    let bins = bins.max(k).min(n.max(1));
    if n <= bins {
        return solve_ilp_over(stats, params, algo, budget);
    }
    // Group by center of gravity.
    let cog = min_bandwidth(stats);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &g) in cog.iter().enumerate() {
        groups[g].push(i);
    }
    // Bins per group, proportional to group cell mass.
    let total: u64 = stats.total_cells().max(1);
    let mut bin_members: Vec<Vec<usize>> = Vec::with_capacity(bins);
    for (g, members) in groups.iter().enumerate() {
        let _ = g;
        if members.is_empty() {
            continue;
        }
        let mass: u64 = members.iter().map(|&i| stats.unit_total(i)).sum();
        let share = ((bins as u64 * mass) / total).max(1) as usize;
        let share = share.min(members.len());
        // Sort members by size descending and deal them round-robin into
        // the group's bins (greedy size balancing).
        let mut sorted = members.clone();
        sorted.sort_by_key(|&i| std::cmp::Reverse(stats.unit_total(i)));
        let mut local_bins: Vec<Vec<usize>> = vec![Vec::new(); share];
        let mut loads = vec![0u64; share];
        for i in sorted {
            let lightest = (0..share).min_by_key(|&b| loads[b]).unwrap_or(0);
            loads[lightest] += stats.unit_total(i);
            local_bins[lightest].push(i);
        }
        bin_members.extend(local_bins.into_iter().filter(|b| !b.is_empty()));
    }

    // Aggregate slice stats per bin.
    let nb = bin_members.len();
    let mut agg = SliceStats::new(nb, k);
    for (b, members) in bin_members.iter().enumerate() {
        for &i in members {
            for j in 0..k {
                agg.left[b][j] += stats.left[i][j];
                agg.right[b][j] += stats.right[i][j];
            }
        }
    }
    let (bin_assignment, status) = solve_ilp_over(&agg, params, algo, budget)?;
    let mut assignment = vec![0usize; n];
    for (b, members) in bin_members.iter().enumerate() {
        for &i in members {
            assignment[i] = bin_assignment[b];
        }
    }
    Ok((assignment, status))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            m: 1.0,
            b: 2.0,
            p: 1.0,
            t: 1.0,
        }
    }

    /// 4 units, 2 nodes. Units 0-2 live mostly on node 0; unit 3 on node 1.
    fn skewed_stats() -> SliceStats {
        let mut s = SliceStats::new(4, 2);
        s.left[0][0] = 90;
        s.right[0][1] = 10;
        s.left[1][0] = 80;
        s.right[1][1] = 20;
        s.left[2][0] = 70;
        s.right[2][1] = 30;
        s.left[3][1] = 60;
        s.right[3][0] = 5;
        s
    }

    #[test]
    fn mbh_places_units_at_center_of_gravity() {
        let s = skewed_stats();
        let plan = plan_physical(
            &PlannerKind::MinBandwidth,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        assert_eq!(plan.assignment, vec![0, 0, 0, 1]);
        assert_eq!(plan.planner, "MBH");
    }

    #[test]
    fn mbh_minimizes_transferred_cells() {
        let s = skewed_stats();
        let p = params();
        let mbh = min_bandwidth(&s);
        let moved = |asg: &Assignment| -> u64 {
            (0..s.n_units())
                .map(|i| s.unit_total(i) - s.s(i, asg[i]))
                .sum()
        };
        let mbh_moved = moved(&mbh);
        // Exhaustive check over all 16 assignments.
        for code in 0..16u32 {
            let asg: Assignment = (0..4).map(|i| ((code >> i) & 1) as usize).collect();
            assert!(moved(&asg) >= mbh_moved);
        }
        let _ = p;
    }

    #[test]
    fn baseline_merge_follows_larger_array() {
        let s = skewed_stats();
        // Left is larger: units follow left's slices.
        let plan = plan_physical(
            &PlannerKind::Baseline,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        assert_eq!(plan.assignment, vec![0, 0, 0, 1]);
        // Pretend right is larger: every unit follows right's slices.
        let plan_r = plan_physical(
            &PlannerKind::Baseline,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Right,
        )
        .unwrap();
        assert_eq!(plan_r.assignment, vec![1, 1, 1, 0]);
    }

    #[test]
    fn baseline_hash_splits_buckets_contiguously() {
        let s = SliceStats::new(8, 4);
        let plan = plan_physical(
            &PlannerKind::Baseline,
            &s,
            &params(),
            JoinAlgo::Hash,
            JoinSide::Left,
        )
        .unwrap();
        assert_eq!(plan.assignment, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn tabu_never_worse_than_mbh() {
        let s = skewed_stats();
        let p = params();
        let mbh_cost = plan_cost(&s, &p, JoinAlgo::Hash, &min_bandwidth(&s)).unwrap();
        let plan =
            plan_physical(&PlannerKind::Tabu, &s, &p, JoinAlgo::Hash, JoinSide::Left).unwrap();
        assert!(plan.est_cost <= mbh_cost + 1e-9);
    }

    #[test]
    fn tabu_rebalances_hotspots() {
        // All units' mass on node 0: MBH piles everything there. With a
        // hash join (whose build cost makes comparison dearer than
        // transfer per cell), Tabu must offload work to other nodes.
        let mut s = SliceStats::new(6, 3);
        for i in 0..6 {
            s.left[i][0] = 100;
            s.right[i][0] = 100;
        }
        let p = params();
        let mbh = min_bandwidth(&s);
        assert!(mbh.iter().all(|&j| j == 0));
        let tabu_plan =
            plan_physical(&PlannerKind::Tabu, &s, &p, JoinAlgo::Hash, JoinSide::Left).unwrap();
        let distinct: HashSet<usize> = tabu_plan.assignment.iter().copied().collect();
        assert!(distinct.len() > 1, "tabu left everything on one node");
        assert!(tabu_plan.est_cost < plan_cost(&s, &p, JoinAlgo::Hash, &mbh).unwrap());
    }

    #[test]
    fn tabu_leaves_network_bound_merge_alone() {
        // With merge costs equal to transfer costs (m == t), offloading a
        // unit trades comparison for an equal amount of network time:
        // there is no strictly better plan, so Tabu keeps the MBH plan.
        let mut s = SliceStats::new(6, 3);
        for i in 0..6 {
            s.left[i][0] = 100;
            s.right[i][0] = 100;
        }
        let p = params();
        let tabu_plan =
            plan_physical(&PlannerKind::Tabu, &s, &p, JoinAlgo::Merge, JoinSide::Left).unwrap();
        let mbh_cost = plan_cost(&s, &p, JoinAlgo::Merge, &min_bandwidth(&s)).unwrap();
        assert!(tabu_plan.est_cost <= mbh_cost + 1e-9);
    }

    #[test]
    fn ilp_finds_optimal_small_instance() {
        let s = skewed_stats();
        let p = params();
        let plan = plan_physical(
            &PlannerKind::Ilp {
                budget: Duration::from_secs(10),
            },
            &s,
            &p,
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        // Exhaustive optimum over 16 assignments.
        let mut best = f64::INFINITY;
        for code in 0..16u32 {
            let asg: Assignment = (0..4).map(|i| ((code >> i) & 1) as usize).collect();
            best = best.min(plan_cost(&s, &p, JoinAlgo::Merge, &asg).unwrap());
        }
        assert!(
            (plan.est_cost - best).abs() < 1e-6,
            "ILP found {} but optimum is {best}",
            plan.est_cost
        );
        assert_eq!(plan.solver_status, Some(SolveStatus::Optimal));
    }

    #[test]
    fn ilp_zero_budget_falls_back_to_warm_start() {
        let s = skewed_stats();
        let p = params();
        let plan = plan_physical(
            &PlannerKind::Ilp {
                budget: Duration::ZERO,
            },
            &s,
            &p,
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        // Warm start is feasible, so the solver returns it.
        let mbh_cost = plan_cost(&s, &p, JoinAlgo::Merge, &min_bandwidth(&s)).unwrap();
        assert!(plan.est_cost <= mbh_cost + 1e-9);
    }

    #[test]
    fn coarse_ilp_groups_and_expands() {
        // 12 units over 2 nodes; coarse with 4 bins must still cover all.
        let mut s = SliceStats::new(12, 2);
        for i in 0..12 {
            s.left[i][i % 2] = 50 + i as u64;
            s.right[i][(i + 1) % 2] = 10;
        }
        let p = params();
        let plan = plan_physical(
            &PlannerKind::IlpCoarse {
                budget: Duration::from_secs(5),
                bins: 4,
            },
            &s,
            &p,
            JoinAlgo::Hash,
            JoinSide::Left,
        )
        .unwrap();
        assert_eq!(plan.assignment.len(), 12);
        assert!(plan.assignment.iter().all(|&j| j < 2));
        // Units sharing a bin share a node — verify it's a sane plan.
        assert!(plan.est_cost.is_finite());
    }

    #[test]
    fn coarse_with_more_bins_than_units_degenerates_to_ilp() {
        let s = skewed_stats();
        let p = params();
        let fine = plan_physical(
            &PlannerKind::Ilp {
                budget: Duration::from_secs(5),
            },
            &s,
            &p,
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        let coarse = plan_physical(
            &PlannerKind::IlpCoarse {
                budget: Duration::from_secs(5),
                bins: 100,
            },
            &s,
            &p,
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        assert!((fine.est_cost - coarse.est_cost).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_ilp_reports_greedy_tier() {
        // Budget exhaustion hands back the MinBandwidth warm start — the
        // plan is the greedy tier's, and the tier must say so. Uses the
        // hotspot instance where MBH is *not* optimal, so the root bound
        // cannot prove the warm start optimal before the budget check.
        let mut s = SliceStats::new(6, 3);
        for i in 0..6 {
            s.left[i][0] = 100;
            s.right[i][0] = 100;
        }
        let plan = plan_physical(
            &PlannerKind::Ilp {
                budget: Duration::ZERO,
            },
            &s,
            &params(),
            JoinAlgo::Hash,
            JoinSide::Left,
        )
        .unwrap();
        assert_eq!(plan.solver_status, Some(SolveStatus::BudgetExhausted));
        assert_eq!(plan.tier, PlanTier::Greedy);
        assert_eq!(plan.assignment, min_bandwidth(&s));
    }

    #[test]
    fn healthy_planners_report_primary_tier() {
        let s = skewed_stats();
        for kind in [
            PlannerKind::Baseline,
            PlannerKind::MinBandwidth,
            PlannerKind::Tabu,
            PlannerKind::Ilp {
                budget: Duration::from_secs(5),
            },
        ] {
            let plan =
                plan_physical(&kind, &s, &params(), JoinAlgo::Merge, JoinSide::Left).unwrap();
            assert_eq!(plan.tier, PlanTier::Primary, "planner {}", kind.name());
        }
    }

    #[test]
    fn degraded_cluster_skips_ilp_for_greedy() {
        let s = skewed_stats();
        let plan = plan_physical_resilient(
            &PlannerKind::Ilp {
                budget: Duration::from_secs(60),
            },
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
            true,
        )
        .unwrap();
        assert_eq!(plan.tier, PlanTier::Greedy);
        assert_eq!(plan.assignment, min_bandwidth(&s));
        // Cheap planners still run as primary on a degraded cluster.
        let tabu = plan_physical_resilient(
            &PlannerKind::Tabu,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
            true,
        )
        .unwrap();
        assert_eq!(tabu.tier, PlanTier::Primary);
    }

    #[test]
    fn resilient_chain_matches_primary_when_healthy() {
        let s = skewed_stats();
        let direct = plan_physical(
            &PlannerKind::Tabu,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
        )
        .unwrap();
        let resilient = plan_physical_resilient(
            &PlannerKind::Tabu,
            &s,
            &params(),
            JoinAlgo::Merge,
            JoinSide::Left,
            false,
        )
        .unwrap();
        assert_eq!(direct.assignment, resilient.assignment);
        assert_eq!(resilient.tier, PlanTier::Primary);
    }

    #[test]
    fn planners_agree_on_uniform_data() {
        // Uniform slices: every planner should produce near-equal costs.
        let mut s = SliceStats::new(8, 4);
        for i in 0..8 {
            for j in 0..4 {
                s.left[i][j] = 25;
                s.right[i][j] = 25;
            }
        }
        let p = params();
        let costs: Vec<f64> = [
            PlannerKind::Baseline,
            PlannerKind::MinBandwidth,
            PlannerKind::Tabu,
        ]
        .iter()
        .map(|kind| {
            plan_physical(kind, &s, &p, JoinAlgo::Hash, JoinSide::Left)
                .unwrap()
                .est_cost
        })
        .collect();
        let max = costs.iter().copied().fold(0.0, f64::max);
        let min = costs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.5, "uniform costs diverge: {costs:?}");
    }
}
