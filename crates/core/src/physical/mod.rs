//! Physical join optimization (paper §5): the analytical cost model and
//! the skew-aware shuffle planners that assign join units to nodes.

mod cost;
mod planners;

pub use cost::{plan_cost, plan_loads, Assignment, CostParams, CostState, PlanLoads, SliceStats};
pub use planners::{
    plan_physical, plan_physical_resilient, IlpStats, PhysicalPlan, PlanTier, PlannerKind,
};
