//! The analytical physical cost model (paper §5.1).
//!
//! A physical plan assigns every join unit to one node. Its estimated
//! duration is
//!
//! ```text
//! c = max(max_j send_j, max_j recv_j) · t  +  max_j Σ_{i → j} C_i
//! ```
//!
//! where `send_j`/`recv_j` are the cells node `j` ships/collects during
//! data alignment (Equations 5–6), and `C_i` is the per-unit comparison
//! cost: `m·S_i` for merge joins, `b·t_i + p·u_i` for hash joins
//! (build cost dominates probe cost). The parameters `(m, b, p, t)` are
//! derived empirically (§5.1); [`CostParams::for_engine`] mirrors that.

use crate::algorithms::JoinAlgo;
use crate::error::{JoinError, Result};

/// Empirical per-cell cost parameters, in (virtual) seconds per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Merge-join cost per cell.
    pub m: f64,
    /// Hash-map build cost per cell ("much greater than … probing").
    pub b: f64,
    /// Hash-map probe cost per cell.
    pub p: f64,
    /// Network transfer cost per cell.
    pub t: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Plausible magnitudes for the simulated engine: tens of
        // nanoseconds of compute per cell, ~32-byte cells over a
        // gigabit-class link. Calibrate with `for_engine` when accuracy
        // against a specific configuration matters.
        CostParams {
            m: 25e-9,
            b: 120e-9,
            p: 40e-9,
            t: 275e-9,
        }
    }
}

impl CostParams {
    /// Parameters matched to a network model and cell width, keeping the
    /// default compute constants.
    pub fn for_engine(bandwidth_bytes_per_sec: f64, cell_bytes: usize) -> Self {
        CostParams {
            t: cell_bytes as f64 / bandwidth_bytes_per_sec,
            ..CostParams::default()
        }
    }
}

/// Slice statistics reported to the coordinator after slice mapping:
/// per-unit, per-node cell counts for each side of the join.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceStats {
    /// `left[i][j]` = left-side cells of join unit `i` stored on node `j`.
    pub left: Vec<Vec<u64>>,
    /// `right[i][j]` = right-side cells of unit `i` on node `j`.
    pub right: Vec<Vec<u64>>,
}

impl SliceStats {
    /// Build from per-node slice size reports.
    pub fn new(n_units: usize, nodes: usize) -> Self {
        SliceStats {
            left: vec![vec![0; nodes]; n_units],
            right: vec![vec![0; nodes]; n_units],
        }
    }

    /// Number of join units.
    pub fn n_units(&self) -> usize {
        self.left.len()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.left.first().map_or(0, Vec::len)
    }

    /// `s_{i,j}`: total cells (both sides) of unit `i` on node `j`.
    pub fn s(&self, i: usize, j: usize) -> u64 {
        self.left[i][j] + self.right[i][j]
    }

    /// `S_i`: total cells of unit `i` across the cluster.
    pub fn unit_total(&self, i: usize) -> u64 {
        (0..self.nodes()).map(|j| self.s(i, j)).sum()
    }

    /// Left-side total of unit `i`.
    pub fn left_total(&self, i: usize) -> u64 {
        self.left[i].iter().sum()
    }

    /// Right-side total of unit `i`.
    pub fn right_total(&self, i: usize) -> u64 {
        self.right[i].iter().sum()
    }

    /// Total cells over all units and nodes.
    pub fn total_cells(&self) -> u64 {
        (0..self.n_units()).map(|i| self.unit_total(i)).sum()
    }

    /// The comparison cost `C_i` of unit `i` under `algo` (§5.1).
    pub fn unit_cost(&self, params: &CostParams, algo: JoinAlgo, i: usize) -> f64 {
        let l = self.left_total(i) as f64;
        let r = self.right_total(i) as f64;
        match algo {
            JoinAlgo::Merge => params.m * (l + r),
            JoinAlgo::Hash => {
                // Build on the smaller side, probe with the larger.
                let (t_i, u_i) = if l <= r { (l, r) } else { (r, l) };
                params.b * t_i + params.p * u_i
            }
            // "The nested loop join is never profitable …
            // hence we do not model it here" (§5.2).
            JoinAlgo::NestedLoop => l * r * params.p,
        }
    }
}

/// A physical plan: `assignment[i]` is the node that processes unit `i`.
pub type Assignment = Vec<usize>;

/// Per-node load breakdown of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLoads {
    /// Cells each node sends during data alignment (Equation 5 per node).
    pub send: Vec<f64>,
    /// Cells each node receives (Equation 6 per node).
    pub recv: Vec<f64>,
    /// Cell-comparison cost per node (Equation 7 per node).
    pub comp: Vec<f64>,
}

impl PlanLoads {
    /// The total plan cost (Equation 8).
    pub fn total(&self, params: &CostParams) -> f64 {
        let max_send = self.send.iter().copied().fold(0.0, f64::max);
        let max_recv = self.recv.iter().copied().fold(0.0, f64::max);
        let max_comp = self.comp.iter().copied().fold(0.0, f64::max);
        max_send.max(max_recv) * params.t + max_comp
    }

    /// Per-node cost used by Tabu's rebalancing loop: each node's own
    /// alignment plus comparison load ("instead of taking the max, the
    /// model considers a single j … at a time").
    pub fn node_costs(&self, params: &CostParams) -> Vec<f64> {
        (0..self.send.len())
            .map(|j| self.send[j].max(self.recv[j]) * params.t + self.comp[j])
            .collect()
    }
}

/// Compute the per-node loads of `assignment` (Equations 5–7).
#[allow(clippy::needless_range_loop)]
pub fn plan_loads(
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    assignment: &Assignment,
) -> Result<PlanLoads> {
    let k = stats.nodes();
    if assignment.len() != stats.n_units() {
        return Err(JoinError::Planning(format!(
            "assignment covers {} units but stats describe {}",
            assignment.len(),
            stats.n_units()
        )));
    }
    let mut send = vec![0.0; k];
    let mut recv = vec![0.0; k];
    let mut comp = vec![0.0; k];
    for (i, &dst) in assignment.iter().enumerate() {
        if dst >= k {
            return Err(JoinError::Planning(format!(
                "unit {i} assigned to nonexistent node {dst}"
            )));
        }
        let s_total = stats.unit_total(i);
        let local = stats.s(i, dst);
        recv[dst] += (s_total - local) as f64;
        for j in 0..k {
            if j != dst {
                send[j] += stats.s(i, j) as f64;
            }
        }
        comp[dst] += stats.unit_cost(params, algo, i);
    }
    Ok(PlanLoads { send, recv, comp })
}

/// The total analytical cost of an assignment (Equation 8).
pub fn plan_cost(
    stats: &SliceStats,
    params: &CostParams,
    algo: JoinAlgo,
    assignment: &Assignment,
) -> Result<f64> {
    Ok(plan_loads(stats, params, algo, assignment)?.total(params))
}

/// Incrementally-updatable plan cost state. Used by the Tabu search,
/// whose inner loop performs thousands of what-if evaluations.
#[derive(Debug, Clone)]
pub struct CostState {
    /// Current assignment.
    pub assignment: Assignment,
    loads: PlanLoads,
    unit_costs: Vec<f64>,
}

impl CostState {
    /// Build the state for an initial assignment.
    pub fn new(
        stats: &SliceStats,
        params: &CostParams,
        algo: JoinAlgo,
        assignment: Assignment,
    ) -> Result<Self> {
        let loads = plan_loads(stats, params, algo, &assignment)?;
        let unit_costs = (0..stats.n_units())
            .map(|i| stats.unit_cost(params, algo, i))
            .collect();
        Ok(CostState {
            assignment,
            loads,
            unit_costs,
        })
    }

    /// Total plan cost (Equation 8).
    pub fn total(&self, params: &CostParams) -> f64 {
        self.loads.total(params)
    }

    /// Per-node costs for rebalancing decisions.
    pub fn node_costs(&self, params: &CostParams) -> Vec<f64> {
        self.loads.node_costs(params)
    }

    /// Move unit `i` to node `dst`, updating loads in O(1).
    pub fn reassign(&mut self, stats: &SliceStats, i: usize, dst: usize) {
        let src = self.assignment[i];
        if src == dst {
            return;
        }
        let s_total = stats.unit_total(i) as f64;
        let s_src = stats.s(i, src) as f64;
        let s_dst = stats.s(i, dst) as f64;
        // Node src no longer hosts the unit: it must now send its local
        // slice, and stops receiving the remote remainder.
        self.loads.send[src] += s_src;
        self.loads.recv[src] -= s_total - s_src;
        self.loads.comp[src] -= self.unit_costs[i];
        // Node dst keeps its local slice (stops sending it) and receives
        // the remainder.
        self.loads.send[dst] -= s_dst;
        self.loads.recv[dst] += s_total - s_dst;
        self.loads.comp[dst] += self.unit_costs[i];
        self.assignment[i] = dst;
    }

    /// The cost the plan would have if unit `i` moved to `dst`
    /// (non-mutating what-if).
    pub fn what_if(
        &mut self,
        stats: &SliceStats,
        params: &CostParams,
        i: usize,
        dst: usize,
    ) -> f64 {
        let src = self.assignment[i];
        self.reassign(stats, i, dst);
        let cost = self.total(params);
        self.reassign(stats, i, src);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 units over 2 nodes:
    /// unit 0: left 100 on node 0, right 10 on node 1
    /// unit 1: left 20 on node 1, right 20 on node 1
    fn stats() -> SliceStats {
        let mut s = SliceStats::new(2, 2);
        s.left[0][0] = 100;
        s.right[0][1] = 10;
        s.left[1][1] = 20;
        s.right[1][1] = 20;
        s
    }

    fn unit_params() -> CostParams {
        CostParams {
            m: 1.0,
            b: 2.0,
            p: 1.0,
            t: 1.0,
        }
    }

    #[test]
    fn slice_stats_accessors() {
        let s = stats();
        assert_eq!(s.n_units(), 2);
        assert_eq!(s.nodes(), 2);
        assert_eq!(s.s(0, 0), 100);
        assert_eq!(s.s(0, 1), 10);
        assert_eq!(s.unit_total(0), 110);
        assert_eq!(s.unit_total(1), 40);
        assert_eq!(s.total_cells(), 150);
        assert_eq!(s.left_total(0), 100);
        assert_eq!(s.right_total(0), 10);
    }

    #[test]
    fn unit_cost_merge_and_hash() {
        let s = stats();
        let p = unit_params();
        assert_eq!(s.unit_cost(&p, JoinAlgo::Merge, 0), 110.0);
        // Hash: build on the smaller side (10), probe with 100.
        assert_eq!(s.unit_cost(&p, JoinAlgo::Hash, 0), 2.0 * 10.0 + 100.0);
        // Equal sides: build 20, probe 20.
        assert_eq!(s.unit_cost(&p, JoinAlgo::Hash, 1), 60.0);
    }

    #[test]
    fn plan_loads_match_equations() {
        let s = stats();
        let p = unit_params();
        // Assign unit 0 → node 0, unit 1 → node 1.
        let loads = plan_loads(&s, &p, JoinAlgo::Merge, &vec![0, 1]).unwrap();
        // Node 1 sends unit 0's right slice (10 cells); node 0 sends none.
        assert_eq!(loads.send, vec![0.0, 10.0]);
        // Node 0 receives 10; node 1 receives nothing (unit 1 is local).
        assert_eq!(loads.recv, vec![10.0, 0.0]);
        assert_eq!(loads.comp, vec![110.0, 40.0]);
        // c = max(10,10)*t + max(110,40)
        assert_eq!(loads.total(&p), 10.0 + 110.0);
    }

    #[test]
    fn moving_everything_to_one_node_costs_more() {
        let s = stats();
        let p = unit_params();
        let good = plan_cost(&s, &p, JoinAlgo::Merge, &vec![0, 1]).unwrap();
        let bad = plan_cost(&s, &p, JoinAlgo::Merge, &vec![1, 1]).unwrap();
        // Plan [1,1]: node 0 sends 100; node 1 receives 100; comp all on 1.
        assert_eq!(bad, 100.0 + 150.0);
        assert!(bad > good);
    }

    #[test]
    fn invalid_assignments_rejected() {
        let s = stats();
        let p = unit_params();
        assert!(plan_cost(&s, &p, JoinAlgo::Merge, &vec![0]).is_err());
        assert!(plan_cost(&s, &p, JoinAlgo::Merge, &vec![0, 9]).is_err());
    }

    #[test]
    fn cost_state_incremental_matches_full_recompute() {
        let s = stats();
        let p = unit_params();
        let mut state = CostState::new(&s, &p, JoinAlgo::Hash, vec![0, 1]).unwrap();
        for (i, dst) in [(0usize, 1usize), (1, 0), (0, 0), (1, 1), (0, 1)] {
            state.reassign(&s, i, dst);
            let expect = plan_cost(&s, &p, JoinAlgo::Hash, &state.assignment).unwrap();
            assert!(
                (state.total(&p) - expect).abs() < 1e-9,
                "incremental drifted after moving {i}→{dst}"
            );
        }
    }

    #[test]
    fn what_if_does_not_mutate() {
        let s = stats();
        let p = unit_params();
        let mut state = CostState::new(&s, &p, JoinAlgo::Merge, vec![0, 1]).unwrap();
        let before = state.total(&p);
        let hypothetical = state.what_if(&s, &p, 0, 1);
        assert_eq!(state.assignment, vec![0, 1]);
        assert!((state.total(&p) - before).abs() < 1e-12);
        assert!(hypothetical != before);
    }

    #[test]
    fn node_costs_sum_alignment_and_comparison() {
        let s = stats();
        let p = unit_params();
        let loads = plan_loads(&s, &p, JoinAlgo::Merge, &vec![0, 1]).unwrap();
        let nc = loads.node_costs(&p);
        assert_eq!(nc[0], 10.0 + 110.0); // recv 10 + comp 110
        assert_eq!(nc[1], 10.0 + 40.0); // send 10 + comp 40
    }

    #[test]
    fn cost_params_for_engine_uses_bandwidth() {
        let p = CostParams::for_engine(1e6, 100);
        assert!((p.t - 1e-4).abs() < 1e-12);
        assert_eq!(p.m, CostParams::default().m);
    }
}
