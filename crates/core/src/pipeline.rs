//! Pull-based streaming execution of [`PlanNode`] plans.
//!
//! Every operator implements [`BatchOperator`] — the classic Volcano
//! `open`/`next_batch`/`close` contract, but over columnar [`CellBatch`]es
//! instead of single tuples. Transform operators (`filter`, `apply`,
//! `between`, `redim`, …) re-apply a compiled `sj_array` kernel per pulled
//! batch into a buffer they own and clear between calls, so a steady-state
//! pipeline allocates nothing per batch. Pipeline breakers (`aggregate`,
//! `hash`, `join`) materialize their input with the same
//! output-organization kernel the sink and the join executor use.
//!
//! [`run_plan`] drains the root operator, organizes the cells into a
//! chunked [`Array`], and records everything it measures into the query's
//! telemetry: a `pipeline` span plus the `pipeline.gathered_bytes` /
//! `pipeline.gathered_cells` / `pipeline.batches` counters (bumped from
//! [`PlanNode::Gather`] with one atomic add per batch). The legacy
//! [`PipelineStats`] report is a view over those counters
//! ([`crate::views::MetricsView::pipeline_stats`]). Predicate pushdown
//! (see [`crate::plan::rewrite`]) shrinks exactly `gathered_bytes`.
//!
//! Determinism: scans stream chunks node-major then chunk-id-minor — the
//! same order `Cluster::gather` materializes them — and the sink applies
//! the same final per-chunk sort the whole-array operators use — since
//! the kernel rewrite, the radix sort over normalized coordinate keys
//! (`sj_array::keys`) for both — so results
//! are bit-identical to the legacy materializing path at any
//! `ExecConfig.threads`.

use sj_array::ops::kernels::{
    self, ApplyKernel, FilterKernel, RedimKernel, RedimPolicy, WindowKernel,
};
use sj_array::ops::{self, AggFn, ColumnRef};
use sj_array::{
    Array, ArrayError, ArraySchema, AttributeDef, CellBatch, Chunk, DataType, DimensionDef,
};
use sj_cluster::{Cluster, Placement};
use sj_telemetry::{Counter, QueryContext, SpanGuard, Telemetry, Tracer};

use crate::error::{JoinError, Result};
use crate::exec::{execute_join_guarded, ExecConfig, JoinQuery};
use crate::plan::PlanNode;
use crate::predicate::JoinPredicate;

/// A pull-based operator over cell batches.
///
/// `next_batch` returns a reference into operator-owned storage; the
/// borrow ends when the caller pulls again, which is what lets every
/// operator reuse its output buffer across calls.
pub trait BatchOperator {
    /// Schema of the batches this operator produces.
    fn schema(&self) -> &ArraySchema;

    /// Whether a materialization of this operator's full output should be
    /// C-order sorted per chunk (mirrors which legacy whole-array
    /// operators end with a chunk sort).
    fn ordered(&self) -> bool;

    /// Prepare for pulling (propagates to inputs).
    fn open(&mut self) -> Result<()>;

    /// Pull the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<&CellBatch>>;

    /// Release resources (propagates to inputs).
    fn close(&mut self) -> Result<()>;
}

/// A boxed operator borrowing cluster storage for `'a`.
pub type BoxOperator<'a> = Box<dyn BatchOperator + 'a>;

/// Gather statistics for one plan run — since the telemetry refactor, a
/// *view* over the `pipeline.*` counters
/// ([`crate::views::MetricsView::pipeline_stats`]), not a separately
/// collected struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Bytes that crossed the coordinator boundary (`gather` nodes).
    pub gathered_bytes: u64,
    /// Cells that crossed the coordinator boundary.
    pub gathered_cells: u64,
    /// Batches the root operator produced.
    pub batches: u64,
}

/// The materialized result of [`run_plan`].
#[derive(Debug, Clone)]
pub struct PlanOutput {
    /// The result array.
    pub array: Array,
    /// Everything measured while the plan ran: the `pipeline` span (with
    /// any nested `join` spans) plus the `pipeline.*` counters.
    pub telemetry: Telemetry,
}

/// Execute `plan` against `cluster` and materialize the result, with the
/// run's telemetry (exported to `config.telemetry`'s sink, if any).
pub fn run_plan(cluster: &Cluster, plan: &PlanNode, config: &ExecConfig) -> Result<PlanOutput> {
    let tracer = Tracer::new(&config.telemetry);
    let root = tracer.root("query");
    let array = run_plan_traced(cluster, plan, config, &root)?;
    drop(root);
    let telemetry = tracer.finish();
    telemetry
        .export(&config.telemetry)
        .map_err(|e| JoinError::Storage(format!("telemetry export failed: {e}")))?;
    Ok(PlanOutput { array, telemetry })
}

/// Execute `plan` inside an existing span tree: records a `pipeline` span
/// under `parent` (joins nest their `join` spans beneath it) and bumps
/// the `pipeline.*` counters on `parent`'s tracer.
pub fn run_plan_traced(
    cluster: &Cluster,
    plan: &PlanNode,
    config: &ExecConfig,
    parent: &SpanGuard,
) -> Result<Array> {
    // One lifecycle context for the whole plan: a single cancel (or
    // deadline) covers every operator and every nested join.
    let ctx = config.lifecycle.context();
    // Join-order optimization runs before the pipeline span opens: the
    // `optimizer` span (chosen order, per-subset estimates) sits beside
    // `pipeline` under the query root.
    let optimized = crate::optimizer::optimize_plan(cluster, plan, config, parent);
    let plan = optimized.as_ref().unwrap_or(plan);
    let span = parent.child("pipeline");
    let gather = GatherCounters {
        bytes: span.tracer().counter("pipeline.gathered_bytes"),
        cells: span.tracer().counter("pipeline.gathered_cells"),
    };
    let mut root = build(plan, cluster, config, &gather, &span, &ctx)?;

    root.open()?;
    let mut acc = kernels::batch_for(root.schema());
    let mut batches = 0u64;
    while let Some(batch) = root.next_batch()? {
        // Batch-boundary lifecycle checkpoint: the drain loop is the
        // spine every streamed batch passes through.
        ctx.check()?;
        batches += 1;
        kernels::extend_into(batch, &mut acc)?;
    }
    let schema = root.schema().clone();
    let ordered = root.ordered();
    root.close()?;
    span.tracer().counter("pipeline.batches").add(batches);
    span.field("batches", batches);

    let (array, sort_kernels) = kernels::organize_with(schema, &acc, ordered, &config.kernels)?;
    if !sort_kernels.is_empty() {
        // Which sort kernels the sink's chunk ordering dispatched to —
        // same shape as the join executor's `kernel_dispatch` span.
        let kd = span.child("kernel_dispatch");
        for (kernel, chunks) in sort_kernels {
            kd.field(kernel.name(), chunks as u64);
        }
    }
    span.field("output_cells", array.cell_count());
    Ok(array)
}

/// The gather-boundary counter handles threaded through operator
/// construction (cheap clones of two atomic cells).
struct GatherCounters {
    bytes: Counter,
    cells: Counter,
}

/// Recursively translate a plan node into its operator.
fn build<'a>(
    plan: &PlanNode,
    cluster: &'a Cluster,
    config: &ExecConfig,
    gather: &GatherCounters,
    span: &SpanGuard,
    ctx: &QueryContext,
) -> Result<BoxOperator<'a>> {
    Ok(match plan {
        PlanNode::Scan { array } => Box::new(ScanOp::build(cluster, array)?),
        PlanNode::Gather { input } => Box::new(GatherOp {
            child: build(input, cluster, config, gather, span, ctx)?,
            bytes: gather.bytes.clone(),
            cells: gather.cells.clone(),
            ctx: ctx.clone(),
        }),
        PlanNode::Filter { input, predicate } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            let kernel = FilterKernel::compile(child.schema(), predicate)?;
            let buf = kernels::batch_for(child.schema());
            Box::new(FilterOp { child, kernel, buf })
        }
        PlanNode::Apply {
            input,
            outputs,
            lenient,
        } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            let kernel = ApplyKernel::compile(child.schema(), outputs, *lenient)?;
            let buf = kernel.output_batch();
            Box::new(ApplyOp { child, kernel, buf })
        }
        PlanNode::Project { input, attrs } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            for name in attrs {
                if !child.schema().has_attr(name) {
                    return Err(ArrayError::NoSuchAttribute(name.clone()).into());
                }
            }
            let outputs: Vec<(String, sj_array::Expr)> = attrs
                .iter()
                .map(|n| (n.clone(), sj_array::Expr::col(n.clone())))
                .collect();
            let kernel = ApplyKernel::compile(child.schema(), &outputs, false)?;
            let buf = kernel.output_batch();
            Box::new(ApplyOp { child, kernel, buf })
        }
        PlanNode::Redim { input, target } => Box::new(RedimOp::build(
            input, target, true, cluster, config, gather, span, ctx,
        )?),
        PlanNode::Rechunk { input, target } => Box::new(RedimOp::build(
            input, target, false, cluster, config, gather, span, ctx,
        )?),
        PlanNode::Sort { input } => Box::new(SortOp {
            child: build(input, cluster, config, gather, span, ctx)?,
        }),
        PlanNode::Between { input, bounds } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            let ndims = child.schema().ndims();
            if bounds.len() != 2 * ndims {
                return Err(ArrayError::ArityMismatch {
                    expected: 2 * ndims,
                    actual: bounds.len(),
                }
                .into());
            }
            let kernel = WindowKernel::compile(child.schema(), &bounds[..ndims], &bounds[ndims..])?;
            let buf = kernels::batch_for(child.schema());
            Box::new(BetweenOp { child, kernel, buf })
        }
        PlanNode::Aggregate { input, func, attr } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            Box::new(AggregateOp::build(child, func, attr.as_deref())?)
        }
        PlanNode::Hash { input, buckets } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            Box::new(HashOp::build(child, *buckets)?)
        }
        PlanNode::Join {
            left,
            right,
            pairs,
            output,
        } => Box::new(JoinOp::build(
            cluster, config, gather, span, ctx, left, right, pairs, output,
        )?),
        PlanNode::Rename { input, name } => {
            let child = build(input, cluster, config, gather, span, ctx)?;
            let mut schema = child.schema().clone();
            schema.name = name.clone();
            Box::new(RenameOp { child, schema })
        }
    })
}

// ---------------------------------------------------------------------------
// Leaf operators.

/// Streams a stored array's chunks node-major then chunk-id-minor — the
/// exact order `Cluster::gather` inserts them, so downstream results match
/// the legacy gather-then-operate path bit for bit.
struct ScanOp<'a> {
    schema: ArraySchema,
    chunks: Vec<&'a Chunk>,
    next: usize,
}

impl<'a> ScanOp<'a> {
    fn build(cluster: &'a Cluster, name: &str) -> Result<ScanOp<'a>> {
        let schema = cluster.catalog().schema(name)?.clone();
        let mut chunks = Vec::new();
        for node in cluster.nodes() {
            chunks.extend(node.chunks_of(name));
        }
        // Stream in global chunk-id order: this is the iteration order of
        // the gathered array (a BTreeMap keyed by chunk id), so every
        // downstream operator sees cells exactly as the legacy
        // gather-then-ops path did — bit-identical row order even when
        // several source chunks fold into one output chunk.
        chunks.sort_by_key(|(id, _)| *id);
        Ok(ScanOp {
            schema,
            chunks: chunks.into_iter().map(|(_, c)| c).collect(),
            next: 0,
        })
    }
}

impl BatchOperator for ScanOp<'_> {
    fn schema(&self) -> &ArraySchema {
        &self.schema
    }
    fn ordered(&self) -> bool {
        true
    }
    fn open(&mut self) -> Result<()> {
        self.next = 0;
        Ok(())
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        while self.next < self.chunks.len() {
            let chunk = self.chunks[self.next];
            self.next += 1;
            if !chunk.cells.is_empty() {
                return Ok(Some(&chunk.cells));
            }
        }
        Ok(None)
    }
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Pass-through marking the coordinator boundary; accounts the bytes and
/// cells of every batch that crosses it with one atomic add each, and —
/// being the choke point every gathered batch crosses — polls the
/// query's lifecycle context so cancellation lands within one batch even
/// when downstream operators buffer.
struct GatherOp<'a> {
    child: BoxOperator<'a>,
    bytes: Counter,
    cells: Counter,
    ctx: QueryContext,
}

impl BatchOperator for GatherOp<'_> {
    fn schema(&self) -> &ArraySchema {
        self.child.schema()
    }
    fn ordered(&self) -> bool {
        self.child.ordered()
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        self.ctx.check()?;
        let batch = self.child.next_batch()?;
        if let Some(b) = batch {
            self.bytes.add(b.byte_size() as u64);
            self.cells.add(b.len() as u64);
        }
        Ok(batch)
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

// ---------------------------------------------------------------------------
// Streaming transforms: one compiled kernel, one reused output buffer.

macro_rules! streaming_transform {
    ($name:ident, $kernel:ty, $apply:expr) => {
        struct $name<'a> {
            child: BoxOperator<'a>,
            kernel: $kernel,
            buf: CellBatch,
        }

        impl BatchOperator for $name<'_> {
            fn schema(&self) -> &ArraySchema {
                self.child.schema()
            }
            fn ordered(&self) -> bool {
                true
            }
            fn open(&mut self) -> Result<()> {
                self.child.open()
            }
            fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
                loop {
                    match self.child.next_batch()? {
                        None => return Ok(None),
                        Some(batch) => {
                            self.buf.clear();
                            #[allow(clippy::redundant_closure_call)]
                            ($apply)(&self.kernel, batch, &mut self.buf)?;
                            if !self.buf.is_empty() {
                                break;
                            }
                        }
                    }
                }
                Ok(Some(&self.buf))
            }
            fn close(&mut self) -> Result<()> {
                self.child.close()
            }
        }
    };
}

streaming_transform!(
    FilterOp,
    FilterKernel,
    |k: &FilterKernel, b: &CellBatch, out: &mut CellBatch| k.apply(b, out)
);
streaming_transform!(
    BetweenOp,
    WindowKernel,
    |k: &WindowKernel, b: &CellBatch, out: &mut CellBatch| k.apply(b, out)
);

/// `apply`/`project`: like the streaming transforms above but with its own
/// output schema (computed attributes).
struct ApplyOp<'a> {
    child: BoxOperator<'a>,
    kernel: ApplyKernel,
    buf: CellBatch,
}

impl BatchOperator for ApplyOp<'_> {
    fn schema(&self) -> &ArraySchema {
        self.kernel.schema()
    }
    fn ordered(&self) -> bool {
        true
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        loop {
            match self.child.next_batch()? {
                None => return Ok(None),
                Some(batch) => {
                    self.buf.clear();
                    self.kernel.apply(batch, &mut self.buf)?;
                    if !self.buf.is_empty() {
                        break;
                    }
                }
            }
        }
        Ok(Some(&self.buf))
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// `redim` / `rechunk`: remap rows into the target coordinate space; the
/// sink's chunk grouping does the tiling, `ordered` decides the sort.
struct RedimOp<'a> {
    child: BoxOperator<'a>,
    kernel: RedimKernel,
    buf: CellBatch,
    ordered: bool,
}

impl<'a> RedimOp<'a> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        input: &PlanNode,
        target: &ArraySchema,
        ordered: bool,
        cluster: &'a Cluster,
        config: &ExecConfig,
        gather: &GatherCounters,
        span: &SpanGuard,
        ctx: &QueryContext,
    ) -> Result<RedimOp<'a>> {
        let child = build(input, cluster, config, gather, span, ctx)?;
        let kernel = RedimKernel::compile(child.schema(), target)?;
        let buf = kernel.output_batch();
        Ok(RedimOp {
            child,
            kernel,
            buf,
            ordered,
        })
    }
}

impl BatchOperator for RedimOp<'_> {
    fn schema(&self) -> &ArraySchema {
        self.kernel.target()
    }
    fn ordered(&self) -> bool {
        self.ordered
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        loop {
            match self.child.next_batch()? {
                None => return Ok(None),
                Some(batch) => {
                    self.buf.clear();
                    self.kernel
                        .apply(RedimPolicy::Strict, batch, &mut self.buf)?;
                    if !self.buf.is_empty() {
                        break;
                    }
                }
            }
        }
        Ok(Some(&self.buf))
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// `sort` is a pass-through marker: it forces `ordered`, and every
/// materialization point (the sink, aggregate, hash) honors that flag with
/// the shared organize kernel — exactly `ops::sort`'s chunk sort.
struct SortOp<'a> {
    child: BoxOperator<'a>,
}

impl BatchOperator for SortOp<'_> {
    fn schema(&self) -> &ArraySchema {
        self.child.schema()
    }
    fn ordered(&self) -> bool {
        true
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        self.child.next_batch()
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// `INTO name`: pass-through under a renamed schema.
struct RenameOp<'a> {
    child: BoxOperator<'a>,
    schema: ArraySchema,
}

impl BatchOperator for RenameOp<'_> {
    fn schema(&self) -> &ArraySchema {
        &self.schema
    }
    fn ordered(&self) -> bool {
        self.child.ordered()
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        self.child.next_batch()
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

// ---------------------------------------------------------------------------
// Pipeline breakers.

/// Materialize a child operator's full output the same way the legacy path
/// would (chunk grouping + conditional sort).
fn materialize(child: &mut BoxOperator<'_>) -> Result<Array> {
    let mut acc = kernels::batch_for(child.schema());
    while let Some(batch) = child.next_batch()? {
        kernels::extend_into(batch, &mut acc)?;
    }
    Ok(kernels::organize(
        child.schema().clone(),
        &acc,
        child.ordered(),
    )?)
}

/// Whole-array aggregate: emits the legacy single-cell
/// `agg<func>[r=0,0,1]` result.
struct AggregateOp<'a> {
    child: BoxOperator<'a>,
    func: AggFn,
    attr: String,
    schema: ArraySchema,
    out: CellBatch,
    done: bool,
}

impl<'a> AggregateOp<'a> {
    fn build(
        child: BoxOperator<'a>,
        func_name: &str,
        attr: Option<&str>,
    ) -> Result<AggregateOp<'a>> {
        let func = AggFn::parse(func_name)?;
        let attr = match attr {
            Some(a) => a.to_string(),
            None => child
                .schema()
                .attrs
                .first()
                .ok_or_else(|| {
                    JoinError::InvalidOutputSchema(
                        "aggregate needs an array with at least one attribute".into(),
                    )
                })?
                .name
                .clone(),
        };
        let dtype = match func {
            AggFn::Count => DataType::Int64,
            AggFn::Sum | AggFn::Avg => DataType::Float64,
            AggFn::Min | AggFn::Max => {
                let idx = child.schema().attr_index(&attr)?;
                child.schema().attrs[idx].dtype
            }
        };
        let schema = ArraySchema::new(
            "agg",
            vec![DimensionDef::new("r", 0, 0, 1)?],
            vec![AttributeDef::new(func_name, dtype)],
        )?;
        let out = kernels::batch_for(&schema);
        Ok(AggregateOp {
            child,
            func,
            attr,
            schema,
            out,
            done: false,
        })
    }
}

impl BatchOperator for AggregateOp<'_> {
    fn schema(&self) -> &ArraySchema {
        &self.schema
    }
    fn ordered(&self) -> bool {
        true
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let array = materialize(&mut self.child)?;
        let value = ops::aggregate(&array, self.func, &self.attr)?;
        self.out.clear();
        self.out.push(&[0], &[value])?;
        Ok(Some(&self.out))
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// Hash partitioning surfaced as an operator: buckets become the single
/// `bucket` dimension, the source dimensions turn into leading integer
/// attributes (paper §4's dimension-less buckets).
struct HashOp<'a> {
    child: BoxOperator<'a>,
    buckets: usize,
    schema: ArraySchema,
    out: CellBatch,
    done: bool,
}

impl<'a> HashOp<'a> {
    fn build(child: BoxOperator<'a>, buckets: usize) -> Result<HashOp<'a>> {
        let buckets = buckets.max(1);
        let src = child.schema();
        let mut attrs = Vec::with_capacity(src.ndims() + src.nattrs());
        for d in &src.dims {
            attrs.push(AttributeDef::new(d.name.clone(), DataType::Int64));
        }
        for a in &src.attrs {
            attrs.push(a.clone());
        }
        let schema = ArraySchema::new(
            src.name.clone(),
            vec![DimensionDef::new("bucket", 0, buckets as i64 - 1, 1)?],
            attrs,
        )?;
        let out = kernels::batch_for(&schema);
        Ok(HashOp {
            child,
            buckets,
            schema,
            out,
            done: false,
        })
    }
}

impl BatchOperator for HashOp<'_> {
    fn schema(&self) -> &ArraySchema {
        &self.schema
    }
    fn ordered(&self) -> bool {
        false
    }
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        if self.done {
            return Ok(None);
        }
        self.done = true;
        let array = materialize(&mut self.child)?;
        let keys: Vec<ColumnRef> = (0..array.schema.ndims()).map(ColumnRef::Dim).collect();
        let set = ops::hash_partition(&array, &keys, self.buckets)?;
        self.out.clear();
        for (b, bucket) in set.buckets.iter().enumerate() {
            for row in 0..bucket.len() {
                self.out.coords[0].push(b as i64);
                for (a, col) in bucket.attrs.iter().enumerate() {
                    self.out.attrs[a].push_from(col, row)?;
                }
            }
        }
        if self.out.is_empty() {
            return Ok(None);
        }
        Ok(Some(&self.out))
    }
    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// The six-phase skew-aware shuffle join. Executed eagerly at build;
/// streams the result's chunks. When both inputs are bare `Scan`s the
/// executor runs directly against the live cluster (the pre-composable
/// fast path, bit-identical to the old behavior). Composite inputs —
/// nested joins, filtered scans, any derived subtree — are materialized
/// and registered as temp arrays on a scratch cluster with the live
/// cluster's topology, and the same executor runs there. Its `join` span
/// nests under the `pipeline` span, so the query's [`JoinMetrics`] view
/// reads straight from the shared tree.
struct JoinOp {
    array: Array,
    ids: Vec<u64>,
    next: usize,
    ordered: bool,
}

impl JoinOp {
    #[allow(clippy::too_many_arguments)]
    fn build(
        cluster: &Cluster,
        config: &ExecConfig,
        gather: &GatherCounters,
        span: &SpanGuard,
        ctx: &QueryContext,
        left: &PlanNode,
        right: &PlanNode,
        pairs: &[(String, String)],
        output: &Option<ArraySchema>,
    ) -> Result<JoinOp> {
        if let (PlanNode::Scan { array: l }, PlanNode::Scan { array: r }) = (left, right) {
            return JoinOp::execute(cluster, config, span, ctx, l, r, pairs, output);
        }
        let mut scratch = Cluster::new(cluster.node_count(), cluster.network);
        let lname = stage_join_side(&mut scratch, cluster, config, gather, span, ctx, left)?;
        let rname = stage_join_side(&mut scratch, cluster, config, gather, span, ctx, right)?;
        JoinOp::execute(&scratch, config, span, ctx, &lname, &rname, pairs, output)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        cluster: &Cluster,
        config: &ExecConfig,
        span: &SpanGuard,
        ctx: &QueryContext,
        left: &str,
        right: &str,
        pairs: &[(String, String)],
        output: &Option<ArraySchema>,
    ) -> Result<JoinOp> {
        let mut query = JoinQuery::new(left, right, JoinPredicate::new(pairs.to_vec()));
        if let Some(out) = output {
            query = query.into_schema(out.clone());
        }
        let array = execute_join_guarded(cluster, &query, config, span, ctx)?;
        let ids: Vec<u64> = array.chunks().map(|(id, _)| id).collect();
        let ordered = array.all_sorted();
        Ok(JoinOp {
            array,
            ids,
            next: 0,
            ordered,
        })
    }
}

/// Register one join input as an array on the scratch cluster, returning
/// the catalog name it landed under.
///
/// A stored side keeps its name, cells, and original chunk homes
/// (explicit placement), so the scratch run sees exactly the distribution
/// — and skew — the live cluster would. A derived side runs through the
/// pipeline recursively and lands round-robin, like a fresh load.
fn stage_join_side(
    scratch: &mut Cluster,
    cluster: &Cluster,
    config: &ExecConfig,
    gather: &GatherCounters,
    span: &SpanGuard,
    ctx: &QueryContext,
    side: &PlanNode,
) -> Result<String> {
    let (mut array, placement) = match side {
        PlanNode::Scan { array } => {
            let homes: std::collections::HashMap<u64, usize> = cluster
                .catalog()
                .chunk_homes(array)?
                .iter()
                .map(|(&id, &node)| (id, node))
                .collect();
            (cluster.gather(array)?, Placement::Explicit(homes))
        }
        node => {
            let mut op = build(node, cluster, config, gather, span, ctx)?;
            op.open()?;
            let result = materialize(&mut op);
            op.close()?;
            (result?, Placement::RoundRobin)
        }
    };
    // Temp names must be unique within the scratch catalog (a derived
    // intermediate could share its inferred name with the other side).
    let mut name = array.schema.name.clone();
    let mut k = 0;
    while scratch.catalog().schema(&name).is_ok() {
        k += 1;
        name = format!("{}__t{k}", array.schema.name);
    }
    array.schema.name = name.clone();
    scratch.load_array(array, &placement)?;
    Ok(name)
}

impl BatchOperator for JoinOp {
    fn schema(&self) -> &ArraySchema {
        &self.array.schema
    }
    fn ordered(&self) -> bool {
        self.ordered
    }
    fn open(&mut self) -> Result<()> {
        self.next = 0;
        Ok(())
    }
    fn next_batch(&mut self) -> Result<Option<&CellBatch>> {
        while self.next < self.ids.len() {
            let id = self.ids[self.next];
            self.next += 1;
            let chunk = self
                .array
                .chunk(id)
                .ok_or_else(|| JoinError::Internal("join output chunk vanished".into()))?;
            if !chunk.cells.is_empty() {
                return Ok(Some(&chunk.cells));
            }
        }
        Ok(None)
    }
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::rewrite;
    use crate::views::MetricsView;
    use sj_array::{BinOp, Expr, Value};
    use sj_cluster::{NetworkModel, Placement};

    fn cluster() -> Cluster {
        let mut c = Cluster::new(3, NetworkModel::gigabit());
        let schema = ArraySchema::parse("A<v:int>[i=1,60,10]").unwrap();
        let a =
            Array::from_cells(schema, (1..=60).map(|i| (vec![i], vec![Value::Int(i)]))).unwrap();
        c.load_array(a, &Placement::RoundRobin).unwrap();
        c
    }

    fn scan_plan(name: &str) -> PlanNode {
        PlanNode::Scan { array: name.into() }.gathered()
    }

    #[test]
    fn scan_matches_gather_bit_for_bit() {
        let c = cluster();
        let out = run_plan(&c, &scan_plan("A"), &ExecConfig::default()).unwrap();
        let gathered = c.gather("A").unwrap();
        assert_eq!(out.array, gathered);
        let stats = out.telemetry.pipeline_stats();
        assert_eq!(stats.gathered_cells, 60);
        assert_eq!(stats.gathered_bytes, gathered.byte_size() as u64);
        assert!(stats.batches > 0);
        assert!(out.telemetry.find("pipeline").is_some());
    }

    #[test]
    fn filter_pipeline_matches_legacy_ops() {
        let c = cluster();
        let pred = Expr::binary(BinOp::Gt, Expr::col("v"), Expr::int(40));
        let plan = PlanNode::Filter {
            input: Box::new(scan_plan("A")),
            predicate: pred.clone(),
        };
        let out = run_plan(&c, &plan, &ExecConfig::default()).unwrap();
        let legacy = ops::filter(&c.gather("A").unwrap(), &pred).unwrap();
        assert_eq!(out.array, legacy);
    }

    #[test]
    fn pushdown_shrinks_gathered_bytes_but_not_results() {
        let c = cluster();
        let pred = Expr::binary(BinOp::Gt, Expr::col("v"), Expr::int(55));
        let above = PlanNode::Filter {
            input: Box::new(scan_plan("A")),
            predicate: pred.clone(),
        };
        let below = rewrite(above.clone());
        let cfg = ExecConfig::default();
        let out_above = run_plan(&c, &above, &cfg).unwrap();
        let out_below = run_plan(&c, &below, &cfg).unwrap();
        assert_eq!(out_above.array, out_below.array);
        assert_eq!(out_above.array.cell_count(), 5);
        // The rewritten plan gathers strictly fewer bytes.
        assert!(
            out_below.telemetry.pipeline_stats().gathered_bytes
                < out_above.telemetry.pipeline_stats().gathered_bytes
        );
    }

    #[test]
    fn aggregate_and_between_stream() {
        let c = cluster();
        let plan = PlanNode::Aggregate {
            input: Box::new(PlanNode::Between {
                input: Box::new(scan_plan("A")),
                bounds: vec![11, 20],
            }),
            func: "sum".into(),
            attr: Some("v".into()),
        };
        let out = run_plan(&c, &plan, &ExecConfig::default()).unwrap();
        let total: i64 = (11..=20).sum();
        assert_eq!(
            out.array.get(&[0]).unwrap(),
            Some(vec![Value::Float(total as f64)])
        );
    }

    #[test]
    fn hash_op_partitions_all_cells() {
        let c = cluster();
        let plan = PlanNode::Hash {
            input: Box::new(scan_plan("A")),
            buckets: 8,
        };
        let out = run_plan(&c, &plan, &ExecConfig::default()).unwrap();
        assert_eq!(out.array.cell_count(), 60);
        assert_eq!(out.array.schema.ndims(), 1);
        assert_eq!(out.array.schema.dims[0].name, "bucket");
        // Dimension-less layout: i materialized as an attribute.
        assert_eq!(out.array.schema.attrs[0].name, "i");
    }
}
