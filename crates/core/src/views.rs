//! Legacy metrics reports as *views* over the telemetry span tree.
//!
//! The executor records every measurement exactly once, into typed span
//! fields (see DESIGN.md §11 for the taxonomy). [`JoinMetrics`],
//! [`ExecProfile`], [`crate::pipeline::PipelineStats`], and
//! [`ShuffleReport`] are no longer collected separately — this module
//! reconstructs them, bit-exact, from the tree. Numeric fields are stored
//! as native `u64`/`f64` values (never stringified), so round-trips
//! preserve equality down to float bit patterns.

use std::time::Duration;

use sj_cluster::{ReplanEvent, ShuffleReport};
use sj_ilp::SolveStatus;
use sj_telemetry::{decode_f64s, SpanNode, Telemetry};

use crate::algorithms::JoinAlgo;
use crate::exec::{ExecProfile, JoinMetrics};
use crate::physical::PlanTier;
use crate::pipeline::PipelineStats;

/// The token an ILP solve status is recorded under in span fields.
pub fn solve_status_token(status: SolveStatus) -> &'static str {
    match status {
        SolveStatus::Optimal => "optimal",
        SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::Unbounded => "unbounded",
        SolveStatus::BudgetExhausted => "budget_exhausted",
    }
}

fn solve_status_from_token(token: &str) -> Option<SolveStatus> {
    match token {
        "optimal" => Some(SolveStatus::Optimal),
        "feasible" => Some(SolveStatus::Feasible),
        "infeasible" => Some(SolveStatus::Infeasible),
        "unbounded" => Some(SolveStatus::Unbounded),
        "budget_exhausted" => Some(SolveStatus::BudgetExhausted),
        _ => None,
    }
}

fn algo_from_token(token: &str) -> Option<JoinAlgo> {
    match token {
        "hashJoin" => Some(JoinAlgo::Hash),
        "mergeJoin" => Some(JoinAlgo::Merge),
        "nestedLoopJoin" => Some(JoinAlgo::NestedLoop),
        _ => None,
    }
}

fn tier_from_token(token: &str) -> Option<PlanTier> {
    match token {
        "primary" => Some(PlanTier::Primary),
        "greedy" => Some(PlanTier::Greedy),
        "naive" => Some(PlanTier::Naive),
        _ => None,
    }
}

/// Map a recorded planner label back to the `&'static str` the legacy
/// report carried (the labels come from [`crate::physical::PlannerKind::name`]).
fn planner_from_token(token: &str) -> &'static str {
    match token {
        "B" => "B",
        "MBH" => "MBH",
        "Tabu" => "Tabu",
        "ILP" => "ILP",
        "ILP-C" => "ILP-C",
        _ => "unknown",
    }
}

/// Rebuild the full [`ShuffleReport`] from a `shuffle` span: scalar
/// fields plus per-node `node` children (sent/recv bytes, in node-id
/// order), `crash` children (failed nodes, in crash order), and
/// `reassign` children (dead → substitute pairs).
fn shuffle_report_from_span(sh: &SpanNode) -> ShuffleReport {
    let mut sent_bytes = Vec::new();
    let mut recv_bytes = Vec::new();
    for node in sh.children_named("node") {
        sent_bytes.push(node.u64_field("sent_bytes").unwrap_or(0));
        recv_bytes.push(node.u64_field("recv_bytes").unwrap_or(0));
    }
    let failed_nodes: Vec<usize> = sh
        .children_named("crash")
        .filter_map(|c| c.u64_field("node"))
        .map(|n| n as usize)
        .collect();
    let reassigned: Vec<(usize, usize)> = sh
        .children_named("reassign")
        .filter_map(|r| Some((r.u64_field("from")? as usize, r.u64_field("to")? as usize)))
        .collect();
    let replan_events: Vec<ReplanEvent> = sh
        .children_named("replan")
        .filter_map(|r| {
            Some(ReplanEvent {
                at_seconds: r.f64_field("at_seconds")?,
                node: r.u64_field("from")? as usize,
                substitute: r.u64_field("to")? as usize,
                moved_bytes: r.u64_field("moved_bytes").unwrap_or(0),
                moved_slices: r.u64_field("moved_slices").unwrap_or(0),
                cause: r.str_field("cause").unwrap_or("").to_string(),
            })
        })
        .collect();
    ShuffleReport {
        makespan: sh.f64_field("makespan_seconds").unwrap_or(0.0),
        network_bytes: sh.u64_field("network_bytes").unwrap_or(0),
        local_bytes: sh.u64_field("local_bytes").unwrap_or(0),
        sent_bytes,
        recv_bytes,
        network_transfers: sh.u64_field("network_transfers").unwrap_or(0) as usize,
        retries: sh.u64_field("retries").unwrap_or(0),
        reroutes: sh.u64_field("reroutes").unwrap_or(0),
        recovery_bytes: sh.u64_field("recovery_bytes").unwrap_or(0),
        checksum_failures: sh.u64_field("checksum_failures").unwrap_or(0),
        dropped_transfers: sh.u64_field("dropped_transfers").unwrap_or(0),
        timeouts: sh.u64_field("timeouts").unwrap_or(0),
        failed_nodes,
        reassigned,
        degraded: sh.bool_field("degraded").unwrap_or(false),
        replans: sh.u64_field("replans").unwrap_or(0),
        replanned_bytes: sh.u64_field("replanned_bytes").unwrap_or(0),
        replan_events,
    }
}

/// Derive the legacy report structs from a [`Telemetry`] tree.
///
/// Implemented for `Telemetry` itself, so any holder of a report — a
/// [`crate::exec::JoinRun`], a [`crate::pipeline::PlanOutput`], an engine
/// query result — exposes the same views the old ad-hoc structs did.
pub trait MetricsView {
    /// The [`JoinMetrics`] of the first `join` span in the tree, if the
    /// query ran a join (and telemetry was enabled).
    fn join_metrics(&self) -> Option<JoinMetrics>;

    /// The streaming pipeline's gather statistics, aggregated from the
    /// `pipeline.*` counters (all-zero when no pipeline ran or telemetry
    /// was disabled).
    fn pipeline_stats(&self) -> PipelineStats;
}

impl MetricsView for Telemetry {
    fn join_metrics(&self) -> Option<JoinMetrics> {
        let join = self.find("join")?;
        let lp = join.child("logical_plan")?;
        let sm = join.child("slice_map")?;
        let pp = join.child("physical_plan")?;
        let sh = join.child("shuffle")?;
        let ex = join.child("execute")?;
        let out = join.child("output")?;
        let per_node_comparison: Vec<f64> = ex
            .children_named("node")
            .filter_map(|n| n.f64_field("seconds"))
            .collect();
        let profile = ExecProfile {
            threads: join.u64_field("threads").unwrap_or(0) as usize,
            stats_wall_seconds: lp
                .child("column_stats")
                .and_then(|c| c.f64_field("wall_seconds"))
                .unwrap_or(0.0),
            slice_map_wall_seconds: sm.f64_field("wall_seconds").unwrap_or(0.0),
            slice_map_busy_seconds: decode_f64s(sm.str_field("busy_seconds").unwrap_or("")),
            comparison_wall_seconds: ex.f64_field("wall_seconds").unwrap_or(0.0),
            comparison_busy_seconds: decode_f64s(ex.str_field("busy_seconds").unwrap_or("")),
            output_wall_seconds: out.f64_field("wall_seconds").unwrap_or(0.0),
        };
        Some(JoinMetrics {
            afl: join.str_field("afl").unwrap_or("").to_string(),
            algo: join.str_field("algo").and_then(algo_from_token)?,
            logical_cost: lp.f64_field("cost").unwrap_or(0.0),
            logical_planning: Duration::from_nanos(lp.duration_ns),
            slice_map_seconds: sm.f64_field("max_node_seconds").unwrap_or(0.0),
            physical_planning: Duration::from_nanos(pp.u64_field("planning_ns").unwrap_or(0)),
            est_physical_cost: pp.f64_field("est_cost").unwrap_or(0.0),
            alignment_seconds: sh.f64_field("makespan_seconds").unwrap_or(0.0),
            network_bytes: sh.u64_field("network_bytes").unwrap_or(0),
            cells_moved: sh.u64_field("cells_moved").unwrap_or(0),
            comparison_seconds: join.f64_field("comparison_seconds").unwrap_or(0.0),
            per_node_comparison,
            matches: join.u64_field("matches").unwrap_or(0) as usize,
            planner: planner_from_token(pp.str_field("planner").unwrap_or("")),
            plan_tier: pp.str_field("tier").and_then(tier_from_token)?,
            degraded: join.bool_field("degraded").unwrap_or(false),
            solver_status: pp
                .str_field("solver_status")
                .and_then(solve_status_from_token),
            profile,
            shuffle: shuffle_report_from_span(sh),
        })
    }

    fn pipeline_stats(&self) -> PipelineStats {
        PipelineStats {
            gathered_bytes: self.counter("pipeline.gathered_bytes"),
            gathered_cells: self.counter("pipeline.gathered_cells"),
            batches: self.counter("pipeline.batches"),
        }
    }
}
