//! Abstract syntax for AQL statements and AFL operator expressions.

use sj_array::{ArraySchema, Expr};

use crate::error::Span;

/// One SELECT-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// A scalar expression (a bare column reference or arithmetic over
    /// columns), with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// Output column name: the alias if given, else a rendering of
        /// the expression.
        name: String,
    },
}

/// The `INTO` target of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum IntoTarget {
    /// A full schema literal: `INTO C<i:int>[v=1,100,10]`.
    Schema(ArraySchema),
    /// A bare array name: the engine derives the schema.
    Name(String),
}

/// A parsed AQL SELECT statement (paper §2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub projections: Vec<Projection>,
    /// Optional INTO target.
    pub into: Option<IntoTarget>,
    /// FROM arrays (1 = filter/apply query, 2 = join).
    pub from: Vec<String>,
    /// WHERE/ON predicates, conjoined.
    pub predicates: Vec<Expr>,
    /// Source span of each FROM array name (parallel to `from`), so the
    /// binder can point "unknown array" errors at the query text.
    pub from_spans: Vec<Span>,
    /// Source span of the whole WHERE/ON clause, when present.
    pub where_span: Option<Span>,
}

/// A parsed AFL operator expression (paper §2.2): nested operator calls
/// over array names, schema literals, and scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AflExpr {
    /// Reference to a stored array.
    Array(String),
    /// An operator application, e.g. `filter(A, v1 > 5)`.
    Call {
        /// Operator name (`filter`, `redim`, `merge`, ...).
        op: String,
        /// Arguments.
        args: Vec<AflArg>,
    },
}

/// One argument of an AFL operator call.
#[derive(Debug, Clone, PartialEq)]
pub enum AflArg {
    /// A nested operator or array reference.
    Afl(AflExpr),
    /// A schema literal (`<v:int>[i=1,6,3]` or `B<v:int>[...]`).
    Schema(ArraySchema),
    /// A scalar expression (filter predicates, apply expressions).
    Expr(Expr),
    /// An integer (e.g. bucket counts).
    Int(i64),
}
