//! Telemetry-instrumented wrappers over the front-end phases.
//!
//! Each wrapper runs the plain phase function inside a child span of the
//! caller's query span (`parse` → `bind` → `lower`), so the front end
//! contributes to the same span tree the executor fills in. The wrappers
//! are thin: with telemetry off they cost one `Option` check each.

use sj_array::ArraySchema;
use sj_core::PlanNode;
use sj_telemetry::SpanGuard;

use crate::ast::{AflExpr, SelectStmt};
use crate::binder::{bind_select, BoundSelect};
use crate::error::LangError;
use crate::lower::{lower_afl, lower_select};
use crate::parser::{parse_afl, parse_aql};

type Result<T> = std::result::Result<T, LangError>;

/// Parse an AQL `SELECT` statement under a `parse` span.
pub fn parse_aql_traced(input: &str, parent: &SpanGuard) -> Result<SelectStmt> {
    let span = parent.child("parse");
    span.field("surface", "aql");
    span.field("source_bytes", input.len());
    parse_aql(input)
}

/// Parse an AFL expression under a `parse` span.
pub fn parse_afl_traced(input: &str, parent: &SpanGuard) -> Result<AflExpr> {
    let span = parent.child("parse");
    span.field("surface", "afl");
    span.field("source_bytes", input.len());
    parse_afl(input)
}

/// Bind a parsed `SELECT` against catalog schemas under a `bind` span.
pub fn bind_select_traced<F>(
    stmt: &SelectStmt,
    lookup: F,
    parent: &SpanGuard,
) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let _span = parent.child("bind");
    bind_select(stmt, lookup)
}

/// Lower a bound `SELECT` to the plan IR under a `lower` span.
pub fn lower_select_traced(bound: &BoundSelect, parent: &SpanGuard) -> PlanNode {
    let _span = parent.child("lower");
    lower_select(bound)
}

/// Lower an AFL expression to the plan IR under a `lower` span.
pub fn lower_afl_traced<F>(expr: &AflExpr, lookup: &F, parent: &SpanGuard) -> Result<PlanNode>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let _span = parent.child("lower");
    lower_afl(expr, lookup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_telemetry::{TelemetryConfig, Tracer};

    #[test]
    fn phases_record_under_the_query_span() {
        let tracer = Tracer::new(&TelemetryConfig::Tree);
        {
            let root = tracer.root("query");
            let stmt = parse_aql_traced("SELECT * FROM A", &root).unwrap();
            let schema = ArraySchema::parse("A<v:int>[i=1,10,10]").unwrap();
            let bound = bind_select_traced(&stmt, |_| Some(schema.clone()), &root).unwrap();
            let _plan = lower_select_traced(&bound, &root);
        }
        let t = tracer.finish();
        let root = t.root().unwrap();
        let names: Vec<&str> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["parse", "bind", "lower"]);
        assert_eq!(root.children[0].str_field("surface"), Some("aql"));
        assert_eq!(
            root.children[0].u64_field("source_bytes"),
            Some("SELECT * FROM A".len() as u64)
        );
    }

    #[test]
    fn disabled_span_still_parses() {
        let tracer = Tracer::new(&TelemetryConfig::Off);
        let root = tracer.root("query");
        assert!(parse_afl_traced("scan(A)", &root).is_ok());
        assert!(tracer.finish().roots.is_empty());
    }
}
