//! Typed language-layer errors carrying source spans.
//!
//! Every front-end phase — lexing, parsing, binding, lowering — reports
//! failures as a [`LangError`] that says *which* phase failed, *where* in
//! the query text (when known), and *why*, chaining any underlying
//! storage-layer error through [`std::error::Error::source`].

use std::fmt;

use sj_array::ArrayError;

/// A half-open byte range `[start, end)` into the original query text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at byte `at`.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end <= self.start + 1 {
            write!(f, "byte {}", self.start)
        } else {
            write!(f, "bytes {}..{}", self.start, self.end)
        }
    }
}

/// The front-end phase that produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LangPhase {
    /// Tokenizing the raw query text.
    Lex,
    /// Parsing the token stream.
    Parse,
    /// Resolving names against catalog schemas.
    Bind,
    /// Lowering to the plan IR.
    Lower,
}

impl fmt::Display for LangPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LangPhase::Lex => "lex",
            LangPhase::Parse => "parse",
            LangPhase::Bind => "bind",
            LangPhase::Lower => "lower",
        };
        write!(f, "{s}")
    }
}

/// A query-language error: failing phase, message, and optional span
/// into the original query text.
#[derive(Debug)]
pub struct LangError {
    /// Which phase failed.
    pub phase: LangPhase,
    /// Human-readable description of the failure.
    pub message: String,
    /// Where in the query text, when the phase can localize it.
    pub span: Option<Span>,
    /// Underlying storage-layer error, when one triggered this.
    pub source: Option<ArrayError>,
}

impl LangError {
    /// An error in `phase` with no span attached yet.
    pub fn new(phase: LangPhase, message: impl Into<String>) -> Self {
        LangError {
            phase,
            message: message.into(),
            span: None,
            source: None,
        }
    }

    /// A lexer error.
    pub fn lex(message: impl Into<String>) -> Self {
        LangError::new(LangPhase::Lex, message)
    }

    /// A parser error.
    pub fn parse(message: impl Into<String>) -> Self {
        LangError::new(LangPhase::Parse, message)
    }

    /// A binder error.
    pub fn bind(message: impl Into<String>) -> Self {
        LangError::new(LangPhase::Bind, message)
    }

    /// A lowering error.
    pub fn lower(message: impl Into<String>) -> Self {
        LangError::new(LangPhase::Lower, message)
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach an optional source span (no-op on `None`).
    pub fn with_span_opt(mut self, span: Option<Span>) -> Self {
        self.span = self.span.or(span);
        self
    }

    /// Attach the storage-layer error that caused this one.
    pub fn with_source(mut self, source: ArrayError) -> Self {
        self.source = Some(source);
        self
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.phase, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

impl std::error::Error for LangError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_ref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_includes_phase_and_span() {
        let e = LangError::parse("expected `FROM`").with_span(Span::new(7, 11));
        assert_eq!(
            e.to_string(),
            "parse error: expected `FROM` (at bytes 7..11)"
        );
        let e = LangError::lex("unexpected character `$`").with_span(Span::point(3));
        assert_eq!(
            e.to_string(),
            "lex error: unexpected character `$` (at byte 3)"
        );
    }

    #[test]
    fn source_chains_to_array_error() {
        let cause = ArrayError::Parse("bad dtype".into());
        let e = LangError::bind("bad schema").with_source(cause);
        let src = e.source().expect("source should be chained");
        assert!(src.to_string().contains("bad dtype"));
        assert!(LangError::bind("no cause").source().is_none());
    }

    #[test]
    fn spans_cover_and_compare() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.cover(b), Span::new(2, 9));
        assert_eq!(b.cover(a), Span::new(2, 9));
    }
}
