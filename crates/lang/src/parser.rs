//! Recursive-descent parsers for AQL statements and AFL expressions.

use sj_array::{ArrayError, ArraySchema, AttributeDef, BinOp, DataType, DimensionDef, Expr, Value};

use crate::ast::{AflArg, AflExpr, IntoTarget, Projection, SelectStmt};
use crate::error::{LangError, Span};
use crate::lexer::{tokenize_spanned, Sym, Token};

type Result<T> = std::result::Result<T, LangError>;

/// Parse one AQL SELECT statement.
pub fn parse_aql(input: &str) -> Result<SelectStmt> {
    let (tokens, spans) = tokenize_spanned(input)?;
    let mut p = Parser::new(&tokens, &spans);
    let stmt = p.select()?;
    p.eat_symbol_if(Sym::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse one AFL operator expression.
pub fn parse_afl(input: &str) -> Result<AflExpr> {
    let (tokens, spans) = tokenize_spanned(input)?;
    let mut p = Parser::new(&tokens, &spans);
    let expr = p.afl()?;
    p.eat_symbol_if(Sym::Semicolon);
    p.expect_end()?;
    Ok(expr)
}

/// Split a top-level AND chain into its conjuncts.
fn flatten_and(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            flatten_and(*left, out);
            flatten_and(*right, out);
        }
        other => out.push(other),
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    spans: &'a [Span],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token], spans: &'a [Span]) -> Self {
        Parser {
            tokens,
            spans,
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// The source span of the token at `pos`, or a zero-width span just
    /// past the last token when `pos` is at the end of input.
    fn span_at(&self, pos: usize) -> Span {
        match self.spans.get(pos) {
            Some(s) => *s,
            None => Span::point(self.spans.last().map_or(0, |s| s.end)),
        }
    }

    fn err(&self, msg: &str) -> LangError {
        LangError::parse(format!(
            "{msg} at token {} ({})",
            self.pos,
            self.peek().map_or("<end>".to_string(), |t| t.to_string())
        ))
        .with_span(self.span_at(self.pos))
    }

    /// Wrap a storage-layer schema error, pointing at the current token.
    fn schema_err(&self, e: ArrayError) -> LangError {
        LangError::parse(e.to_string())
            .with_span(self.span_at(self.pos.saturating_sub(1)))
            .with_source(e)
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.is_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn eat_symbol_if(&mut self, sym: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> Result<()> {
        if self.eat_symbol_if(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{sym:?}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn int(&mut self) -> Result<i64> {
        let neg = self.eat_symbol_if(Sym::Minus);
        match self.next() {
            Some(Token::Int(v)) => Ok(if neg { -v } else { *v }),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected integer"))
            }
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing input"))
        }
    }

    // ---- AQL ---------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let projections = self.projection_list()?;
        let into = if self.eat_keyword("INTO") {
            Some(self.into_target()?)
        } else {
            None
        };
        self.expect_keyword("FROM")?;
        let mut from = Vec::new();
        let mut from_spans = Vec::new();
        from_spans.push(self.span_at(self.pos));
        from.push(self.ident()?);
        loop {
            if self.eat_symbol_if(Sym::Comma) || self.eat_keyword("JOIN") {
                from_spans.push(self.span_at(self.pos));
                from.push(self.ident()?);
            } else {
                break;
            }
        }
        let mut predicates = Vec::new();
        let mut where_span = None;
        if self.eat_keyword("WHERE") || self.eat_keyword("ON") {
            let start = self.span_at(self.pos);
            // `expr` consumes AND itself; flatten the top-level
            // conjunction into the predicate list.
            flatten_and(self.expr()?, &mut predicates);
            let end = self.span_at(self.pos.saturating_sub(1));
            where_span = Some(start.cover(end));
        }
        Ok(SelectStmt {
            projections,
            into,
            from,
            predicates,
            from_spans,
            where_span,
        })
    }

    fn projection_list(&mut self) -> Result<Vec<Projection>> {
        if self.eat_symbol_if(Sym::Star) {
            return Ok(vec![Projection::Star]);
        }
        let mut list = Vec::new();
        loop {
            let expr = self.expr()?;
            let name = if self.eat_keyword("AS") {
                self.ident()?
            } else if let Expr::Column(c) = &expr {
                c.clone()
            } else {
                expr.to_string()
            };
            list.push(Projection::Expr { expr, name });
            if !self.eat_symbol_if(Sym::Comma) {
                break;
            }
        }
        Ok(list)
    }

    #[allow(clippy::wrong_self_convention)] // parses an INTO target
    fn into_target(&mut self) -> Result<IntoTarget> {
        // A schema literal is NAME `<` ... or NAME `[` ... or `<` ...;
        // otherwise a bare name.
        let save = self.pos;
        match self.try_schema_literal() {
            Ok(schema) => Ok(IntoTarget::Schema(schema)),
            Err(_) => {
                self.pos = save;
                Ok(IntoTarget::Name(self.ident()?))
            }
        }
    }

    // ---- Schema literals (token-level mirror of ArraySchema::parse) ----

    fn try_schema_literal(&mut self) -> Result<ArraySchema> {
        let name = if matches!(self.peek(), Some(Token::Ident(_))) {
            self.ident()?
        } else {
            "anonymous".to_string()
        };
        let mut attrs = Vec::new();
        if self.eat_symbol_if(Sym::Lt) && !self.eat_symbol_if(Sym::Gt) {
            loop {
                let attr_name = self.ident()?;
                self.expect_symbol(Sym::Colon)?;
                let dtype = DataType::parse(&self.ident()?).map_err(|e| self.schema_err(e))?;
                attrs.push(AttributeDef::new(attr_name, dtype));
                if !self.eat_symbol_if(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::Gt)?;
        }
        self.expect_symbol(Sym::LBracket)?;
        let mut dims = Vec::new();
        if !self.eat_symbol_if(Sym::RBracket) {
            loop {
                let dim_name = self.ident()?;
                self.expect_symbol(Sym::Eq)?;
                let start = self.int()?;
                self.expect_symbol(Sym::Comma)?;
                let end = self.int()?;
                self.expect_symbol(Sym::Comma)?;
                let interval = self.int()?;
                if interval <= 0 {
                    return Err(self.err("chunk interval must be positive"));
                }
                dims.push(
                    DimensionDef::new(dim_name, start, end, interval as u64)
                        .map_err(|e| self.schema_err(e))?,
                );
                if !self.eat_symbol_if(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RBracket)?;
        }
        ArraySchema::new(name, dims, attrs).map_err(|e| self.schema_err(e))
    }

    // ---- Scalar expressions -------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.cmp_expr()?;
        while self.eat_keyword("AND") {
            let right = self.cmp_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::binary(op, left, right))
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_symbol_if(Sym::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.eat_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next().cloned() {
            Some(Token::Int(v)) => Ok(Expr::int(v)),
            Some(Token::Float(v)) => Ok(Expr::float(v)),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("true") {
                    Ok(Expr::Literal(Value::Bool(true)))
                } else if name.eq_ignore_ascii_case("false") {
                    Ok(Expr::Literal(Value::Bool(false)))
                } else {
                    Ok(Expr::col(name))
                }
            }
            Some(Token::Symbol(Sym::LParen)) => {
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected expression"))
            }
        }
    }

    // ---- AFL -----------------------------------------------------------

    fn afl(&mut self) -> Result<AflExpr> {
        let name = self.ident()?;
        if self.eat_symbol_if(Sym::LParen) {
            let mut args = Vec::new();
            if !self.eat_symbol_if(Sym::RParen) {
                loop {
                    args.push(self.afl_arg()?);
                    if !self.eat_symbol_if(Sym::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Sym::RParen)?;
            }
            Ok(AflExpr::Call { op: name, args })
        } else {
            Ok(AflExpr::Array(name))
        }
    }

    fn afl_arg(&mut self) -> Result<AflArg> {
        // Try, in order: schema literal, nested AFL call, integer, scalar
        // expression. Backtracking keeps the grammar simple.
        let save = self.pos;
        if let Ok(schema) = self.try_schema_literal() {
            return Ok(AflArg::Schema(schema));
        }
        self.pos = save;
        if matches!(self.peek(), Some(Token::Ident(_)))
            && self.tokens.get(self.pos + 1) == Some(&Token::Symbol(Sym::LParen))
        {
            // Looks like a call — but operators and function-less idents
            // are ambiguous with expressions; calls win.
            if let Ok(inner) = self.afl() {
                return Ok(AflArg::Afl(inner));
            }
            self.pos = save;
        }
        if let Some(Token::Int(v)) = self.peek().cloned() {
            // A bare integer not followed by an operator is a count arg.
            let after = self.tokens.get(self.pos + 1);
            let is_plain = matches!(
                after,
                None | Some(Token::Symbol(Sym::Comma)) | Some(Token::Symbol(Sym::RParen))
            );
            if is_plain {
                self.pos += 1;
                return Ok(AflArg::Int(v));
            }
        }
        // Bare identifier alone → array reference; otherwise expression.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            let after = self.tokens.get(self.pos + 1);
            let is_plain = matches!(
                after,
                None | Some(Token::Symbol(Sym::Comma)) | Some(Token::Symbol(Sym::RParen))
            );
            if is_plain {
                self.pos += 1;
                return Ok(AflArg::Afl(AflExpr::Array(name)));
            }
        }
        let expr = self.expr()?;
        Ok(AflArg::Expr(expr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_star_filter_query() {
        // Paper §2.2: SELECT * FROM A WHERE v1 > 5
        let q = parse_aql("SELECT * FROM A WHERE v1 > 5").unwrap();
        assert_eq!(q.projections, vec![Projection::Star]);
        assert_eq!(q.from, vec!["A"]);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].to_string(), "(v1 > 5)");
    }

    #[test]
    fn parse_join_with_into_schema() {
        // Paper §6.1's query.
        let q = parse_aql("SELECT * INTO C<i:int, j:int>[v=1,128,4] FROM A, B WHERE A.v = B.w;")
            .unwrap();
        assert_eq!(q.from, vec!["A", "B"]);
        match &q.into {
            Some(IntoTarget::Schema(s)) => {
                assert_eq!(s.name, "C");
                assert_eq!(s.dims[0].name, "v");
            }
            other => panic!("expected schema target, got {other:?}"),
        }
        assert_eq!(q.predicates[0].to_string(), "(A.v = B.w)");
    }

    #[test]
    fn parse_join_keyword_and_multi_predicates() {
        // Paper §6.2.1's D:D query.
        let q = parse_aql(
            "SELECT A.v1 - B.v1, A.v2 - B.v2 FROM A JOIN B \
             WHERE A.i = B.i AND A.j = B.j",
        )
        .unwrap();
        assert_eq!(q.from, vec!["A", "B"]);
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        match &q.projections[0] {
            Projection::Expr { name, .. } => assert_eq!(name, "(A.v1 - B.v1)"),
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parse_ndvi_query() {
        // Paper §6.3.2.
        let q = parse_aql(
            "SELECT (Band2.reflectance - Band1.reflectance) \
             / (Band2.reflectance + Band1.reflectance) \
             FROM Band1, Band2 \
             WHERE Band1.time = Band2.time \
             AND Band1.longitude = Band2.longitude \
             AND Band1.latitude = Band2.latitude",
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.projections.len(), 1);
    }

    #[test]
    fn parse_into_bare_name_and_aliases() {
        let q = parse_aql("SELECT v AS speed INTO T FROM A").unwrap();
        assert_eq!(q.into, Some(IntoTarget::Name("T".into())));
        match &q.projections[0] {
            Projection::Expr { name, .. } => assert_eq!(name, "speed"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reject_malformed_queries() {
        assert!(parse_aql("SELECT FROM A").is_err());
        assert!(parse_aql("* FROM A").is_err());
        assert!(parse_aql("SELECT * FROM A WHERE").is_err());
        assert!(parse_aql("SELECT * FROM A extra tokens").is_err());
    }

    #[test]
    fn parse_multi_array_from() {
        // N-way joins: any number of FROM entries parses; the binder
        // checks the join graph connects them.
        let q = parse_aql("SELECT * FROM A, B, C WHERE A.x = B.x AND B.y = C.y").unwrap();
        assert_eq!(q.from, vec!["A", "B", "C"]);
        assert_eq!(q.from_spans.len(), 3);
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn parse_errors_carry_spans() {
        let err = parse_aql("SELECT * FORM A").unwrap_err();
        // The error points at `FORM`, where `FROM` was expected.
        assert_eq!(err.span, Some(Span::new(9, 13)));
        // A missing expression at end-of-input points at the last token.
        let input = "SELECT * FROM A WHERE";
        let err = parse_aql(input).unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "WHERE");
    }

    #[test]
    fn statement_records_from_and_where_spans() {
        let input = "SELECT * FROM A, B WHERE A.v = B.w";
        let q = parse_aql(input).unwrap();
        assert_eq!(q.from_spans.len(), 2);
        assert_eq!(&input[q.from_spans[0].start..q.from_spans[0].end], "A");
        assert_eq!(&input[q.from_spans[1].start..q.from_spans[1].end], "B");
        let w = q.where_span.unwrap();
        assert_eq!(&input[w.start..w.end], "A.v = B.w");
    }

    #[test]
    fn parse_afl_filter() {
        // Paper §2.2: filter(A, v1 > 5)
        let e = parse_afl("filter(A, v1 > 5)").unwrap();
        match e {
            AflExpr::Call { op, args } => {
                assert_eq!(op, "filter");
                assert_eq!(args[0], AflArg::Afl(AflExpr::Array("A".into())));
                match &args[1] {
                    AflArg::Expr(x) => assert_eq!(x.to_string(), "(v1 > 5)"),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_afl_nested_with_schema() {
        // Paper §2.3.1: merge(A, redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3]))
        let e = parse_afl("merge(A, redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3]))").unwrap();
        let AflExpr::Call { op, args } = e else {
            panic!()
        };
        assert_eq!(op, "merge");
        assert_eq!(args.len(), 2);
        let AflArg::Afl(AflExpr::Call {
            op: inner,
            args: inner_args,
        }) = &args[1]
        else {
            panic!("expected nested call, got {:?}", args[1]);
        };
        assert_eq!(inner, "redim");
        match &inner_args[1] {
            AflArg::Schema(s) => {
                assert_eq!(s.nattrs(), 2);
                assert_eq!(s.ndims(), 2);
            }
            other => panic!("expected schema, got {other:?}"),
        }
    }

    #[test]
    fn parse_afl_with_counts() {
        let e = parse_afl("hash(A, 64)").unwrap();
        let AflExpr::Call { args, .. } = e else {
            panic!()
        };
        assert_eq!(args[1], AflArg::Int(64));
    }

    #[test]
    fn afl_bare_array() {
        assert_eq!(parse_afl("A").unwrap(), AflExpr::Array("A".into()));
        assert!(parse_afl("merge(A").is_err());
    }
}
