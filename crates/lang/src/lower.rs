//! Lowering: translate both query surfaces into the shared plan IR.
//!
//! This is the convergence point of the front-end. A bound AQL SELECT
//! ([`BoundSelect`]) and a parsed AFL call tree ([`AflExpr`]) both become
//! [`PlanNode`] trees here, so the engine has exactly one execution path:
//! `lower → rewrite → run_plan`. Array references lower to
//! `gather(scan(name))` — the explicit coordinator boundary the rewriter
//! pushes row-local operators beneath.

use sj_array::{ArraySchema, Expr};
use sj_core::PlanNode;

use crate::ast::{AflArg, AflExpr};
use crate::binder::BoundSelect;
use crate::error::LangError;

type Result<T> = std::result::Result<T, LangError>;

/// Lower a bound SELECT into a plan. Infallible: binding already
/// validated every name the statement references.
pub fn lower_select(bound: &BoundSelect) -> PlanNode {
    match bound {
        BoundSelect::SingleArray {
            array,
            filter,
            projections,
            into_name,
        } => {
            let mut plan = PlanNode::Scan {
                array: array.clone(),
            }
            .gathered();
            if let Some(predicate) = filter {
                plan = PlanNode::Filter {
                    input: Box::new(plan),
                    predicate: predicate.clone(),
                };
            }
            if let Some(outputs) = projections {
                plan = PlanNode::Apply {
                    input: Box::new(plan),
                    outputs: outputs.clone(),
                    lenient: false,
                };
            }
            if let Some(name) = into_name {
                plan = PlanNode::Rename {
                    input: Box::new(plan),
                    name: name.clone(),
                };
            }
            plan
        }
        BoundSelect::Join {
            relations,
            steps,
            output,
            projections,
        } => {
            // Left-deep chain in the binder's connected order; each
            // relation's filters sit inside its leaf so they run before
            // the shuffle. Only the root join carries the user's INTO
            // schema — the optimizer may reorder everything beneath it.
            let leaf = |rel: &crate::binder::BoundRelation| {
                let scan = PlanNode::Scan {
                    array: rel.name.clone(),
                };
                match &rel.filter {
                    None => scan,
                    Some(predicate) => PlanNode::Filter {
                        input: Box::new(scan),
                        predicate: predicate.clone(),
                    },
                }
            };
            let mut plan = leaf(&relations[0]);
            for (k, rel) in relations[1..].iter().enumerate() {
                let at_root = k + 1 == relations.len() - 1;
                plan = PlanNode::Join {
                    left: Box::new(plan),
                    right: Box::new(leaf(rel)),
                    pairs: steps[k].clone(),
                    output: if at_root { output.clone() } else { None },
                };
            }
            if let Some(outputs) = projections {
                // Post-join projections reference columns by their
                // pre-join qualified names; the operator resolves them
                // leniently against the join's output schema.
                plan = PlanNode::Apply {
                    input: Box::new(plan),
                    outputs: outputs.clone(),
                    lenient: true,
                };
            }
            plan
        }
    }
}

/// Lower a parsed AFL expression into a plan. `lookup` resolves stored
/// array names to their schemas (needed for `redim(B, A)` and for
/// deriving `merge` join pairs from shared dimensions).
pub fn lower_afl<F>(expr: &AflExpr, lookup: &F) -> Result<PlanNode>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match expr {
        AflExpr::Array(name) => Ok(PlanNode::Scan {
            array: name.clone(),
        }
        .gathered()),
        AflExpr::Call { op, args } => lower_call(op, args, lookup),
    }
}

fn lower_call<F>(op: &str, args: &[AflArg], lookup: &F) -> Result<PlanNode>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let opl = op.to_ascii_lowercase();
    match opl.as_str() {
        // `scan(A)` is the identity over its input.
        "scan" => plan_arg(args, 0, lookup),
        "sort" => Ok(PlanNode::Sort {
            input: Box::new(plan_arg(args, 0, lookup)?),
        }),
        "filter" => Ok(PlanNode::Filter {
            input: Box::new(plan_arg(args, 0, lookup)?),
            predicate: expr_arg(args, 1)?,
        }),
        "redim" | "redimension" | "rechunk" => {
            let input = Box::new(plan_arg(args, 0, lookup)?);
            let target = schema_arg(args, 1, lookup)?;
            Ok(if opl == "rechunk" {
                PlanNode::Rechunk { input, target }
            } else {
                PlanNode::Redim { input, target }
            })
        }
        "between" => {
            // Bounds arity (ndims lows + ndims highs) is validated
            // against the input schema when the operator is built.
            let input = Box::new(plan_arg(args, 0, lookup)?);
            let bounds = (1..args.len())
                .map(|idx| coord_arg(args, idx))
                .collect::<Result<Vec<i64>>>()?;
            Ok(PlanNode::Between { input, bounds })
        }
        "aggregate" | "agg" => {
            let input = Box::new(plan_arg(args, 0, lookup)?);
            let func = match args.get(1) {
                Some(AflArg::Afl(AflExpr::Array(n))) => n.clone(),
                Some(AflArg::Expr(Expr::Column(n))) => n.clone(),
                other => {
                    return Err(LangError::lower(format!(
                        "aggregate needs a function name, got {other:?}"
                    )))
                }
            };
            let attr = match args.get(2) {
                Some(AflArg::Afl(AflExpr::Array(n))) => Some(n.clone()),
                Some(AflArg::Expr(Expr::Column(n))) => Some(n.clone()),
                None => None,
                other => {
                    return Err(LangError::lower(format!(
                        "aggregate needs an attribute name, got {other:?}"
                    )))
                }
            };
            Ok(PlanNode::Aggregate { input, func, attr })
        }
        "project" => {
            let input = Box::new(plan_arg(args, 0, lookup)?);
            let mut attrs = Vec::new();
            for a in &args[1..] {
                match a {
                    AflArg::Expr(Expr::Column(c)) => attrs.push(c.clone()),
                    AflArg::Afl(AflExpr::Array(c)) => attrs.push(c.clone()),
                    other => {
                        return Err(LangError::lower(format!(
                            "project expects column names, got {other:?}"
                        )))
                    }
                }
            }
            Ok(PlanNode::Project { input, attrs })
        }
        "merge" | "mergejoin" => {
            // A distributed D:D join on the arrays' shared dimensions.
            // Both operands must be stored arrays (pair derivation needs
            // their catalog schemas).
            let left = stored_name(args, 0, "merge")?;
            let right = stored_name(args, 1, "merge")?;
            let ls =
                lookup(&left).ok_or_else(|| LangError::lower(format!("unknown array `{left}`")))?;
            let rs = lookup(&right)
                .ok_or_else(|| LangError::lower(format!("unknown array `{right}`")))?;
            if ls.ndims() != rs.ndims() {
                return Err(LangError::lower("merge requires equal dimensionality"));
            }
            let pairs = ls
                .dims
                .iter()
                .zip(&rs.dims)
                .map(|(a, b)| (a.name.clone(), b.name.clone()))
                .collect();
            Ok(PlanNode::Join {
                left: Box::new(PlanNode::Scan { array: left }),
                right: Box::new(PlanNode::Scan { array: right }),
                pairs,
                output: None,
            })
        }
        "join" => {
            // General equi-join over plan subtrees: `join(X, Y, a = b,
            // …)` where X and Y may themselves be joins (or filters over
            // arrays). Without explicit pairs, both sides' dimensions
            // are zipped positionally (merge semantics).
            let left = join_side(args, 0, lookup)?;
            let right = join_side(args, 1, lookup)?;
            let mut pairs = Vec::new();
            for arg in &args[2..] {
                let AflArg::Expr(Expr::Binary {
                    op: sj_array::BinOp::Eq,
                    left: l,
                    right: r,
                }) = arg
                else {
                    return Err(LangError::lower(format!(
                        "join pairs must be `left = right` column equalities, got {arg:?}"
                    )));
                };
                let (Expr::Column(lc), Expr::Column(rc)) = (l.as_ref(), r.as_ref()) else {
                    return Err(LangError::lower(format!(
                        "join pairs must compare two columns, got {arg:?}"
                    )));
                };
                pairs.push((lc.clone(), rc.clone()));
            }
            if pairs.is_empty() {
                let ls = afl_schema(&left, lookup)?;
                let rs = afl_schema(&right, lookup)?;
                if ls.ndims() != rs.ndims() {
                    return Err(LangError::lower("join requires equal dimensionality"));
                }
                pairs = ls
                    .dims
                    .iter()
                    .zip(&rs.dims)
                    .map(|(a, b)| (a.name.clone(), b.name.clone()))
                    .collect();
            }
            Ok(PlanNode::Join {
                left: Box::new(left),
                right: Box::new(right),
                pairs,
                output: None,
            })
        }
        "hash" => {
            let input = Box::new(plan_arg(args, 0, lookup)?);
            let buckets = match args.get(1) {
                Some(AflArg::Int(v)) if *v > 0 => *v as usize,
                other => {
                    return Err(LangError::lower(format!(
                        "hash needs a positive bucket count, got {other:?}"
                    )))
                }
            };
            Ok(PlanNode::Hash { input, buckets })
        }
        other => Err(LangError::lower(format!(
            "unsupported AFL operator `{other}`"
        ))),
    }
}

/// Lower argument `idx`, which must be an array-valued AFL expression.
fn plan_arg<F>(args: &[AflArg], idx: usize, lookup: &F) -> Result<PlanNode>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match args.get(idx) {
        Some(AflArg::Afl(inner)) => lower_afl(inner, lookup),
        Some(other) => Err(LangError::lower(format!(
            "argument {idx} must be an array expression, got {other:?}"
        ))),
        None => Err(LangError::lower(format!("missing argument {idx}"))),
    }
}

/// Argument `idx` as a scalar expression.
fn expr_arg(args: &[AflArg], idx: usize) -> Result<Expr> {
    match args.get(idx) {
        Some(AflArg::Expr(e)) => Ok(e.clone()),
        Some(AflArg::Afl(AflExpr::Array(name))) => Ok(Expr::col(name.clone())),
        Some(AflArg::Int(v)) => Ok(Expr::int(*v)),
        Some(other) => Err(LangError::lower(format!(
            "argument {idx} must be a scalar expression, got {other:?}"
        ))),
        None => Err(LangError::lower(format!("missing argument {idx}"))),
    }
}

/// Argument `idx` as an integer coordinate (window bounds).
fn coord_arg(args: &[AflArg], idx: usize) -> Result<i64> {
    match expr_arg(args, idx)? {
        Expr::Literal(v) => v
            .to_coord()
            .map_err(|e| LangError::lower(e.to_string()).with_source(e)),
        Expr::Neg(inner) => match *inner {
            Expr::Literal(v) => Ok(-v
                .to_coord()
                .map_err(|e| LangError::lower(e.to_string()).with_source(e))?),
            _ => Err(LangError::lower("between bounds must be integers")),
        },
        _ => Err(LangError::lower("between bounds must be integers")),
    }
}

/// Argument `idx` as a target schema: a literal, or a stored array name
/// whose schema is reused (`redim(B, A)` form).
fn schema_arg<F>(args: &[AflArg], idx: usize, lookup: &F) -> Result<ArraySchema>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match args.get(idx) {
        Some(AflArg::Schema(s)) => Ok(s.clone()),
        Some(AflArg::Afl(AflExpr::Array(name))) => {
            lookup(name).ok_or_else(|| LangError::lower(format!("unknown array `{name}`")))
        }
        Some(other) => Err(LangError::lower(format!(
            "argument {idx} must be a schema literal, got {other:?}"
        ))),
        None => Err(LangError::lower(format!("missing argument {idx}"))),
    }
}

/// Argument `idx` as a stored array name (no nested operators).
fn stored_name(args: &[AflArg], idx: usize, op: &str) -> Result<String> {
    match args.get(idx) {
        Some(AflArg::Afl(AflExpr::Array(n))) => Ok(n.clone()),
        other => Err(LangError::lower(format!(
            "{op} expects stored array names, got {other:?}"
        ))),
    }
}

/// Lower argument `idx` as a join input: the subtree executes on the
/// cluster side of the shuffle, so any coordinator `gather` boundary the
/// generic lowering inserted is stripped back off.
fn join_side<F>(args: &[AflArg], idx: usize, lookup: &F) -> Result<PlanNode>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    Ok(strip_gather(plan_arg(args, idx, lookup)?))
}

fn strip_gather(plan: PlanNode) -> PlanNode {
    match plan {
        PlanNode::Gather { input } => strip_gather(*input),
        PlanNode::Filter { input, predicate } => PlanNode::Filter {
            input: Box::new(strip_gather(*input)),
            predicate,
        },
        PlanNode::Sort { input } => PlanNode::Sort {
            input: Box::new(strip_gather(*input)),
        },
        other => other,
    }
}

/// Derive the output schema of a lowered join input, for dimension-zip
/// pair inference: stored arrays come from the catalog, joins recurse
/// through Equation 3.
fn afl_schema<F>(plan: &PlanNode, lookup: &F) -> Result<ArraySchema>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match plan {
        PlanNode::Scan { array } => {
            lookup(array).ok_or_else(|| LangError::lower(format!("unknown array `{array}`")))
        }
        PlanNode::Gather { input } | PlanNode::Filter { input, .. } | PlanNode::Sort { input } => {
            afl_schema(input, lookup)
        }
        PlanNode::Join {
            left,
            right,
            pairs,
            output,
        } => match output {
            Some(s) => Ok(s.clone()),
            None => {
                let ls = afl_schema(left, lookup)?;
                let rs = afl_schema(right, lookup)?;
                sj_core::join_schema::natural_join_schema(&ls, &rs, pairs)
                    .map_err(|e| LangError::lower(e.to_string()))
            }
        },
        other => Err(LangError::lower(format!(
            "cannot derive join pairs for `{}`; list them explicitly",
            other.render()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use crate::parser::{parse_afl, parse_aql};

    fn catalog(name: &str) -> Option<ArraySchema> {
        match name {
            "A" => Some(ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap()),
            "B" => Some(ArraySchema::parse("B<w:int>[i=1,100,10]").unwrap()),
            "C" => Some(ArraySchema::parse("C<u:int>[i=1,100,10]").unwrap()),
            _ => None,
        }
    }

    fn lower_aql(input: &str) -> PlanNode {
        let stmt = parse_aql(input).unwrap();
        lower_select(&bind_select(&stmt, catalog).unwrap())
    }

    fn lower(input: &str) -> Result<PlanNode> {
        lower_afl(&parse_afl(input).unwrap(), &catalog)
    }

    #[test]
    fn select_lowers_to_filter_apply_chain() {
        let plan = lower_aql("SELECT v AS x INTO T FROM A WHERE v > 5");
        assert_eq!(
            plan.render(),
            "rename(apply(filter(gather(scan(A)), (v > 5)), v AS x), T)"
        );
    }

    #[test]
    fn select_join_lowers_to_join_node() {
        let plan = lower_aql("SELECT * FROM A, B WHERE A.v = B.w");
        assert_eq!(plan.render(), "join(scan(A), scan(B), v = w)");
    }

    #[test]
    fn three_way_select_lowers_to_left_deep_chain() {
        let plan = lower_aql("SELECT * FROM A, B, C WHERE A.v = B.w AND B.w = C.u");
        // Left-deep in FROM order. The second step's left key is `v`:
        // B.w was a join key of the first step, so in the A⋈B
        // intermediate its value lives in the surviving column `v`.
        assert_eq!(
            plan.render(),
            "join(join(scan(A), scan(B), v = w), scan(C), v = u)"
        );
    }

    #[test]
    fn single_relation_conjuncts_become_leaf_filters() {
        let plan = lower_aql("SELECT * FROM A, B WHERE A.v = B.w AND A.v > 5 AND B.w < 9");
        assert_eq!(
            plan.render(),
            "join(filter(scan(A), (v > 5)), filter(scan(B), (w < 9)), v = w)"
        );
    }

    #[test]
    fn disconnected_from_order_is_reordered() {
        // B connects to nothing until C arrives; the binder reorders to
        // A, C, B so every prefix stays connected.
        let plan = lower_aql("SELECT * FROM A, B, C WHERE A.v = C.u AND C.u = B.w");
        assert_eq!(
            plan.render(),
            "join(join(scan(A), scan(C), v = u), scan(B), v = w)"
        );
    }

    #[test]
    fn afl_surfaces_converge_on_the_same_ir() {
        // The AQL filter and the AFL filter produce the same plan.
        let aql = lower_aql("SELECT * FROM A WHERE v > 5");
        let afl = lower("filter(A, v > 5)").unwrap();
        assert_eq!(aql, afl);
    }

    #[test]
    fn afl_operators_lower_structurally() {
        assert_eq!(lower("A").unwrap().render(), "gather(scan(A))");
        assert_eq!(lower("scan(A)").unwrap().render(), "gather(scan(A))");
        assert_eq!(
            lower("sort(between(A, 2, 7))").unwrap().render(),
            "sort(between(gather(scan(A)), 2, 7))"
        );
        assert_eq!(
            lower("aggregate(A, MAX, v)").unwrap().render(),
            "aggregate(gather(scan(A)), MAX, v)"
        );
        assert_eq!(
            lower("hash(project(A, v), 8)").unwrap().render(),
            "hash(project(gather(scan(A)), v), 8)"
        );
        assert_eq!(
            lower("redim(B, A)").unwrap().render(),
            "redim(gather(scan(B)), A)"
        );
        assert_eq!(
            lower("merge(A, B)").unwrap().render(),
            "join(scan(A), scan(B), i = i)"
        );
    }

    #[test]
    fn afl_join_nests_and_takes_explicit_pairs() {
        // Nested joins with explicit pairs: the outer left key names a
        // column of the inner join's output.
        assert_eq!(
            lower("join(join(A, B, v = w), C, v = u)").unwrap().render(),
            "join(join(scan(A), scan(B), v = w), scan(C), v = u)"
        );
        // Filters stay inside the join input, without a gather boundary.
        assert_eq!(
            lower("join(filter(A, v > 5), B, v = w)").unwrap().render(),
            "join(filter(scan(A), (v > 5)), scan(B), v = w)"
        );
        // Without pairs, dimensions zip — including across a nested
        // join's Equation-3 output.
        assert_eq!(
            lower("join(A, B)").unwrap().render(),
            "join(scan(A), scan(B), i = i)"
        );
    }

    #[test]
    fn lowering_rejects_bad_calls() {
        assert!(lower("unknownOp(A)").is_err());
        assert!(lower("filter(A)").is_err());
        assert!(lower("hash(A, 0)").is_err());
        assert!(lower("merge(A, filter(B, w > 1))").is_err());
        assert!(lower("merge(A, Z)").is_err());
        assert!(lower("between(A, v, 7)").is_err());
    }
}
