//! # sj-lang: the AQL/AFL query language front-end
//!
//! The Array Data Model exposes two query surfaces (paper §2.2): the
//! declarative **AQL** (`SELECT … INTO … FROM … WHERE …`) and the
//! compositional **AFL** of nested operator calls
//! (`merge(A, redim(B, <…>[…]))`). This crate provides a lexer, parsers
//! for both surfaces, and a binder that resolves a parsed SELECT against
//! catalog schemas into an executable description (single-array
//! filter/apply or a two-array equi-join).

#![warn(missing_docs)]

mod ast;
mod binder;
mod lexer;
mod parser;

pub use ast::{AflArg, AflExpr, IntoTarget, Projection, SelectStmt};
pub use binder::{bind_select, rewrite_for_output, BoundSelect};
pub use lexer::{tokenize, Sym, Token};
pub use parser::{parse_afl, parse_aql};
