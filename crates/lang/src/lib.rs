//! # sj-lang: the AQL/AFL query language front-end
//!
//! The Array Data Model exposes two query surfaces (paper §2.2): the
//! declarative **AQL** (`SELECT … INTO … FROM … WHERE …`) and the
//! compositional **AFL** of nested operator calls
//! (`merge(A, redim(B, <…>[…]))`). This crate provides a lexer, parsers
//! for both surfaces, a binder that resolves a parsed SELECT against
//! catalog schemas, and a lowering pass that turns both surfaces into the
//! shared [`sj_core::PlanNode`] IR. Failures in any phase are reported as
//! [`LangError`]s carrying the failing phase and a source span.

#![warn(missing_docs)]

mod ast;
mod binder;
mod error;
mod lexer;
mod lower;
mod parser;
pub mod traced;

pub use ast::{AflArg, AflExpr, IntoTarget, Projection, SelectStmt};
pub use binder::{bind_select, BoundSelect};
pub use error::{LangError, LangPhase, Span};
pub use lexer::{tokenize, tokenize_spanned, Sym, Token};
pub use lower::{lower_afl, lower_select};
pub use parser::{parse_afl, parse_aql};
pub use traced::{
    bind_select_traced, lower_afl_traced, lower_select_traced, parse_afl_traced, parse_aql_traced,
};

/// Re-exported from the storage layer's kernel module: rewrite a
/// post-join projection so its column references resolve against the
/// join's output schema.
pub use sj_array::ops::kernels::rewrite_for_output;
