//! Binding: resolve a parsed SELECT against catalog schemas.
//!
//! Splits the statement into the executable shapes the engine supports:
//! single-array filter/apply queries and two-array equi-joins whose
//! predicates become `(left column, right column)` pairs.

use sj_array::{ArrayError, ArraySchema, BinOp, Expr};

use crate::ast::{IntoTarget, Projection, SelectStmt};

type Result<T> = std::result::Result<T, ArrayError>;

/// A bound, executable query.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundSelect {
    /// `SELECT … FROM A [WHERE filter]`.
    SingleArray {
        /// The source array.
        array: String,
        /// Conjoined filter predicate, if any.
        filter: Option<Expr>,
        /// Projections (`None` = `SELECT *`), with unqualified columns.
        projections: Option<Vec<(String, Expr)>>,
        /// Output array name, if INTO was given.
        into_name: Option<String>,
    },
    /// `SELECT … FROM A, B WHERE <equi-pairs>`.
    Join {
        /// Left array.
        left: String,
        /// Right array.
        right: String,
        /// Equi-join pairs as (left column, right column) names.
        pairs: Vec<(String, String)>,
        /// Explicit destination schema, if INTO declared one.
        output: Option<ArraySchema>,
        /// Projections to apply over the join result (`None` = all).
        projections: Option<Vec<(String, Expr)>>,
    },
}

/// Bind `stmt` against a schema catalog (`lookup` returns the schema of
/// a stored array by name).
pub fn bind_select<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match stmt.from.len() {
        1 => bind_single(stmt, lookup),
        2 => bind_join(stmt, lookup),
        n => Err(ArrayError::Parse(format!(
            "FROM must name one or two arrays, got {n}"
        ))),
    }
}

fn bind_single<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let array = stmt.from[0].clone();
    let schema = lookup(&array)
        .ok_or_else(|| ArrayError::Parse(format!("unknown array `{array}`")))?;
    let filter = conjoin(stmt.predicates.clone());
    if let Some(f) = &filter {
        // Validate column references (stripping qualifiers).
        strip_qualifiers(f, &array).bind(&schema)?;
    }
    let projections = bind_projections(&stmt.projections, |expr| {
        let stripped = strip_qualifiers(&expr, &array);
        stripped.bind(&schema).map(|_| stripped)
    })?;
    let into_name = match &stmt.into {
        None => None,
        Some(IntoTarget::Name(n)) => Some(n.clone()),
        Some(IntoTarget::Schema(s)) => Some(s.name.clone()),
    };
    Ok(BoundSelect::SingleArray {
        array,
        filter: filter.map(|f| strip_qualifiers(&f, &stmt.from[0])),
        projections,
        into_name,
    })
}

fn bind_join<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let left = stmt.from[0].clone();
    let right = stmt.from[1].clone();
    let lschema = lookup(&left)
        .ok_or_else(|| ArrayError::Parse(format!("unknown array `{left}`")))?;
    let rschema = lookup(&right)
        .ok_or_else(|| ArrayError::Parse(format!("unknown array `{right}`")))?;

    let mut pairs = Vec::new();
    for pred in &stmt.predicates {
        let Expr::Binary {
            op: BinOp::Eq,
            left: l,
            right: r,
        } = pred
        else {
            return Err(ArrayError::Parse(format!(
                "join predicates must be equality pairs, got `{pred}`"
            )));
        };
        let (Expr::Column(lc), Expr::Column(rc)) = (l.as_ref(), r.as_ref()) else {
            return Err(ArrayError::Parse(format!(
                "join predicates must compare two columns, got `{pred}`"
            )));
        };
        let a = resolve_side(lc, &left, &lschema, &right, &rschema)?;
        let b = resolve_side(rc, &left, &lschema, &right, &rschema)?;
        match (a, b) {
            ((true, lname), (false, rname)) => pairs.push((lname, rname)),
            ((false, rname), (true, lname)) => pairs.push((lname, rname)),
            _ => {
                return Err(ArrayError::Parse(format!(
                    "predicate `{pred}` does not connect the two arrays"
                )))
            }
        }
    }
    if pairs.is_empty() {
        return Err(ArrayError::Parse(
            "join query needs at least one equality predicate".into(),
        ));
    }

    let output = match &stmt.into {
        Some(IntoTarget::Schema(s)) => Some(s.clone()),
        _ => None,
    };
    let projections = bind_projections(&stmt.projections, Ok)?;
    Ok(BoundSelect::Join {
        left,
        right,
        pairs,
        output,
        projections,
    })
}

fn bind_projections<F>(
    projections: &[Projection],
    mut check: F,
) -> Result<Option<Vec<(String, Expr)>>>
where
    F: FnMut(Expr) -> Result<Expr>,
{
    if projections.iter().any(|p| matches!(p, Projection::Star)) {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(projections.len());
    for p in projections {
        let Projection::Expr { expr, name } = p else {
            continue;
        };
        out.push((name.clone(), check(expr.clone())?));
    }
    Ok(Some(out))
}

/// Determine which side a column reference belongs to. Returns
/// `(is_left, unqualified_name)`.
fn resolve_side(
    name: &str,
    left: &str,
    lschema: &ArraySchema,
    right: &str,
    rschema: &ArraySchema,
) -> Result<(bool, String)> {
    if let Some((array, col)) = name.split_once('.') {
        if array == left {
            return has_column(lschema, col).map(|_| (true, col.to_string()));
        }
        if array == right {
            return has_column(rschema, col).map(|_| (false, col.to_string()));
        }
        return Err(ArrayError::Parse(format!(
            "`{name}` references unknown array `{array}`"
        )));
    }
    if lschema.has_dim(name) || lschema.has_attr(name) {
        return Ok((true, name.to_string()));
    }
    if rschema.has_dim(name) || rschema.has_attr(name) {
        return Ok((false, name.to_string()));
    }
    Err(ArrayError::Parse(format!("unknown column `{name}`")))
}

/// AND-join a list of predicates into one expression.
fn conjoin(mut predicates: Vec<Expr>) -> Option<Expr> {
    let first = if predicates.is_empty() {
        return None;
    } else {
        predicates.remove(0)
    };
    Some(
        predicates
            .into_iter()
            .fold(first, |acc, p| Expr::binary(BinOp::And, acc, p)),
    )
}

fn has_column(schema: &ArraySchema, col: &str) -> Result<()> {
    if schema.has_dim(col) || schema.has_attr(col) {
        Ok(())
    } else {
        Err(ArrayError::Parse(format!(
            "array `{}` has no column `{col}`",
            schema.name
        )))
    }
}

/// Rewrite `Arr.col` references to bare `col` when they refer to `array`
/// (single-array queries allow qualified self-references).
fn strip_qualifiers(expr: &Expr, array: &str) -> Expr {
    match expr {
        Expr::Column(name) => match name.split_once('.') {
            Some((a, col)) if a == array => Expr::col(col),
            _ => expr.clone(),
        },
        Expr::Literal(_) => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left, array)),
            right: Box::new(strip_qualifiers(right, array)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(strip_qualifiers(e, array))),
        Expr::Not(e) => Expr::Not(Box::new(strip_qualifiers(e, array))),
    }
}

/// Rewrite a post-join projection so its column references resolve
/// against the join's output schema: `X.c` stays if the output kept the
/// qualified name, else falls back to bare `c`.
pub fn rewrite_for_output(expr: &Expr, output: &ArraySchema) -> Expr {
    match expr {
        Expr::Column(name) => {
            if output.has_dim(name) || output.has_attr(name) {
                expr.clone()
            } else if let Some((_, col)) = name.split_once('.') {
                Expr::col(col)
            } else {
                expr.clone()
            }
        }
        Expr::Literal(_) => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_for_output(left, output)),
            right: Box::new(rewrite_for_output(right, output)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(rewrite_for_output(e, output))),
        Expr::Not(e) => Expr::Not(Box::new(rewrite_for_output(e, output))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_aql;

    fn catalog(name: &str) -> Option<ArraySchema> {
        match name {
            "A" => Some(ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap()),
            "B" => Some(ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap()),
            _ => None,
        }
    }

    #[test]
    fn bind_single_array_filter() {
        let stmt = parse_aql("SELECT * FROM A WHERE v > 5").unwrap();
        let bound = bind_select(&stmt, catalog).unwrap();
        match bound {
            BoundSelect::SingleArray {
                array,
                filter,
                projections,
                into_name,
            } => {
                assert_eq!(array, "A");
                assert!(filter.is_some());
                assert!(projections.is_none());
                assert!(into_name.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_join_orients_pairs() {
        // Written backwards: B.w = A.v must still orient (A.v, B.w).
        let stmt = parse_aql("SELECT * FROM A, B WHERE B.w = A.v").unwrap();
        let BoundSelect::Join { pairs, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(pairs, vec![("v".to_string(), "w".to_string())]);
    }

    #[test]
    fn bind_join_with_bare_columns() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE i = j").unwrap();
        let BoundSelect::Join { pairs, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(pairs, vec![("i".to_string(), "j".to_string())]);
    }

    #[test]
    fn reject_single_sided_and_non_equi_join_predicates() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v = A.i").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v > B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    #[test]
    fn reject_unknown_arrays_and_columns() {
        let stmt = parse_aql("SELECT * FROM Z WHERE v > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.zzz = B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A WHERE zzz > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    #[test]
    fn qualified_self_references_stripped_in_single_queries() {
        let stmt = parse_aql("SELECT A.v FROM A WHERE A.v > 2").unwrap();
        let BoundSelect::SingleArray {
            filter, projections, ..
        } = bind_select(&stmt, catalog).unwrap()
        else {
            panic!()
        };
        assert_eq!(filter.unwrap().to_string(), "(v > 2)");
        assert_eq!(projections.unwrap()[0].1.to_string(), "v");
    }

    #[test]
    fn rewrite_for_output_prefers_exact_then_bare() {
        let out = ArraySchema::parse("C<reflectance:float, B.reflectance:float>[t=1,5,5]")
            .unwrap();
        // Band1.reflectance is not in the schema → bare name.
        let e = rewrite_for_output(&Expr::col("Band1.reflectance"), &out);
        assert_eq!(e.to_string(), "reflectance");
        // B.reflectance exists verbatim → kept.
        let e = rewrite_for_output(&Expr::col("B.reflectance"), &out);
        assert_eq!(e.to_string(), "B.reflectance");
    }

    #[test]
    fn into_schema_captured_for_joins() {
        let stmt =
            parse_aql("SELECT * INTO C<i:int, j:int>[v=1,100,10] FROM A, B WHERE A.v = B.w")
                .unwrap();
        let BoundSelect::Join { output, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(output.unwrap().name, "C");
    }
}
