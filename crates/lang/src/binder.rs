//! Binding: resolve a parsed SELECT against catalog schemas.
//!
//! Splits the statement into the executable shapes the engine supports:
//! single-array filter/apply queries and n-way equi-joins. WHERE
//! conjuncts are classified: a cross-relation equality becomes a join
//! edge, a predicate touching exactly one relation becomes that
//! relation's filter, and anything else (a non-equality spanning two
//! relations) is rejected. The binder checks the resulting join graph
//! connects every FROM relation, then resolves a left-deep join order
//! whose per-step pair names are already in each side's output
//! namespace. Failures are reported as [`LangError`]s in the `Bind`
//! phase, pointing at the FROM entry or WHERE clause that caused them.

use std::collections::HashMap;

use sj_array::{ArraySchema, BinOp, Expr};

use crate::ast::{IntoTarget, Projection, SelectStmt};
use crate::error::{LangError, Span};

type Result<T> = std::result::Result<T, LangError>;

/// One relation of a bound n-way join.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundRelation {
    /// Stored-array name.
    pub name: String,
    /// Conjunction of this relation's single-relation WHERE conjuncts,
    /// with column references stripped to base names.
    pub filter: Option<Expr>,
}

/// A bound, executable query.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundSelect {
    /// `SELECT … FROM A [WHERE filter]`.
    SingleArray {
        /// The source array.
        array: String,
        /// Conjoined filter predicate, if any.
        filter: Option<Expr>,
        /// Projections (`None` = `SELECT *`), with unqualified columns.
        projections: Option<Vec<(String, Expr)>>,
        /// Output array name, if INTO was given.
        into_name: Option<String>,
    },
    /// `SELECT … FROM A, B, … WHERE <equi-pairs and filters>`.
    Join {
        /// Relations in join order: a connected permutation of the FROM
        /// list (FROM order is kept whenever each prefix stays
        /// connected).
        relations: Vec<BoundRelation>,
        /// Left-deep join steps: `steps[k]` holds the equality pairs
        /// joining `relations[k+1]` onto the accumulated result of
        /// `relations[..=k]`, as `(left name, right name)` — the left
        /// name is in the intermediate's output namespace, the right is
        /// a base column of `relations[k+1]`.
        steps: Vec<Vec<(String, String)>>,
        /// Explicit destination schema, if INTO declared one.
        output: Option<ArraySchema>,
        /// Projections to apply over the join result (`None` = all).
        projections: Option<Vec<(String, Expr)>>,
    },
}

/// Bind `stmt` against a schema catalog (`lookup` returns the schema of
/// a stored array by name).
pub fn bind_select<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match stmt.from.len() {
        0 => Err(LangError::bind("FROM must name at least one array")),
        1 => bind_single(stmt, lookup),
        _ => bind_join(stmt, lookup),
    }
}

/// Look up the schema of `stmt.from[idx]`, pointing errors at its span.
fn resolve_from<F>(stmt: &SelectStmt, idx: usize, lookup: &F) -> Result<ArraySchema>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let name = &stmt.from[idx];
    lookup(name).ok_or_else(|| {
        LangError::bind(format!("unknown array `{name}`"))
            .with_span_opt(stmt.from_spans.get(idx).copied())
    })
}

fn bind_single<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let array = stmt.from[0].clone();
    let schema = resolve_from(stmt, 0, &lookup)?;
    let filter = conjoin(stmt.predicates.clone());
    if let Some(f) = &filter {
        // Validate column references (stripping qualifiers).
        strip_qualifiers(f, &array)
            .bind(&schema)
            .map_err(|e| bind_expr_err(e, stmt.where_span))?;
    }
    let projections = bind_projections(&stmt.projections, |expr| {
        let stripped = strip_qualifiers(&expr, &array);
        stripped
            .bind(&schema)
            .map(|_| stripped)
            .map_err(|e| bind_expr_err(e, None))
    })?;
    let into_name = match &stmt.into {
        None => None,
        Some(IntoTarget::Name(n)) => Some(n.clone()),
        Some(IntoTarget::Schema(s)) => Some(s.name.clone()),
    };
    Ok(BoundSelect::SingleArray {
        array,
        filter: filter.map(|f| strip_qualifiers(&f, &stmt.from[0])),
        projections,
        into_name,
    })
}

fn bind_join<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let n = stmt.from.len();
    let schemas: Vec<ArraySchema> = (0..n)
        .map(|i| resolve_from(stmt, i, &lookup))
        .collect::<Result<_>>()?;

    // Classify each WHERE conjunct: a cross-relation column equality is
    // a join edge; a predicate over one relation is its filter; a
    // non-equality spanning relations is unsupported.
    let mut edges: Vec<BoundEdge> = Vec::new();
    let mut filters: Vec<Option<Expr>> = vec![None; n];
    for pred in &stmt.predicates {
        if let Expr::Binary {
            op: BinOp::Eq,
            left: l,
            right: r,
        } = pred
        {
            if let (Expr::Column(lc), Expr::Column(rc)) = (l.as_ref(), r.as_ref()) {
                let a = resolve_column(lc, stmt, &schemas)?;
                let b = resolve_column(rc, stmt, &schemas)?;
                if a.0 != b.0 {
                    edges.push((a, b));
                    continue;
                }
                // Same-relation equality falls through to the filter path.
            }
        }
        // Not an edge: every referenced column must land on one relation.
        let mut rel = None;
        for col in pred.referenced_columns() {
            let (r, _) = resolve_column(&col, stmt, &schemas)?;
            match rel {
                None => rel = Some(r),
                Some(prev) if prev == r => {}
                Some(_) => {
                    return Err(LangError::bind(format!(
                        "join predicates must be equality pairs, got `{pred}`"
                    ))
                    .with_span_opt(stmt.where_span))
                }
            }
        }
        let Some(rel) = rel else {
            return Err(
                LangError::bind(format!("predicate `{pred}` references no columns"))
                    .with_span_opt(stmt.where_span),
            );
        };
        let stripped = strip_to_base(pred, stmt, &schemas, rel)?;
        filters[rel] = Some(match filters[rel].take() {
            None => stripped,
            Some(f) => Expr::binary(BinOp::And, f, stripped),
        });
    }
    if edges.is_empty() {
        return Err(LangError::bind(
            "join query needs at least one equality predicate",
        ));
    }

    // The join graph must connect every FROM relation.
    let order = connected_order(n, &edges).map_err(|stray| {
        LangError::bind(format!(
            "disconnected join graph: `{}` is not linked to `{}` by any equality predicate",
            stmt.from[stray], stmt.from[0]
        ))
        .with_span_opt(stmt.from_spans.get(stray).copied().or(stmt.where_span))
    })?;

    // Resolve the left-deep steps along `order`, tracking each base
    // column's current name through the chain of natural-join outputs.
    let mut colmap: HashMap<(usize, String), String> = HashMap::new();
    let first = order[0];
    for col in schema_columns(&schemas[first]) {
        colmap.insert((first, col.clone()), col);
    }
    let mut acc = schemas[first].clone();
    let mut steps = Vec::with_capacity(n - 1);
    let mut used = vec![false; n];
    used[first] = true;
    for &r in &order[1..] {
        let rschema = &schemas[r];
        let mut pairs = Vec::new();
        for ((ar, ac), (br, bc)) in &edges {
            let (other, ocol, rcol) = if *ar == r && used[*br] {
                (*br, bc, ac)
            } else if *br == r && used[*ar] {
                (*ar, ac, bc)
            } else {
                continue;
            };
            let left_name = colmap
                .get(&(other, ocol.clone()))
                .expect("used relations resolve every column")
                .clone();
            let pair = (left_name, rcol.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        let out = sj_core::join_schema::natural_join_schema(&acc, rschema, &pairs)
            .map_err(|e| LangError::bind(e.to_string()).with_span_opt(stmt.where_span))?;
        // Right columns: join keys collapse onto their left pair name,
        // collisions come out qualified `{right}.{col}`, the rest keep
        // their base name. Left columns always keep their names.
        for col in schema_columns(rschema) {
            let name = if let Some((l, _)) = pairs.iter().find(|(_, rc)| rc == &col) {
                l.clone()
            } else {
                let qualified = format!("{}.{col}", rschema.name);
                if schema_has(&out, &qualified) {
                    qualified
                } else {
                    col.clone()
                }
            };
            colmap.insert((r, col), name);
        }
        steps.push(pairs);
        acc = out;
        used[r] = true;
    }

    let output = match &stmt.into {
        Some(IntoTarget::Schema(s)) => Some(s.clone()),
        _ => None,
    };
    let projections = bind_projections(&stmt.projections, Ok)?;
    Ok(BoundSelect::Join {
        relations: order
            .iter()
            .map(|&i| BoundRelation {
                name: stmt.from[i].clone(),
                filter: filters[i].take(),
            })
            .collect(),
        steps,
        output,
        projections,
    })
}

/// One bound equality edge: `(relation index, column)` on each side.
type BoundEdge = ((usize, String), (usize, String));

/// Greedy connected join order: start from relation 0, repeatedly append
/// the lowest-index relation linked to the current prefix (so FROM order
/// is kept whenever it is already connected). `Err(i)` names a relation
/// no equality predicate reaches.
fn connected_order(n: usize, edges: &[BoundEdge]) -> std::result::Result<Vec<usize>, usize> {
    let mut order = vec![0usize];
    let mut used = vec![false; n];
    used[0] = true;
    while order.len() < n {
        let next = (0..n).find(|&r| {
            !used[r]
                && edges
                    .iter()
                    .any(|((a, _), (b, _))| (*a == r && used[*b]) || (*b == r && used[*a]))
        });
        match next {
            Some(r) => {
                used[r] = true;
                order.push(r);
            }
            None => return Err((0..n).find(|&r| !used[r]).expect("some relation unused")),
        }
    }
    Ok(order)
}

/// All column names of a schema, dimensions first.
fn schema_columns(schema: &ArraySchema) -> Vec<String> {
    schema
        .dims
        .iter()
        .map(|d| d.name.clone())
        .chain(schema.attrs.iter().map(|a| a.name.clone()))
        .collect()
}

fn schema_has(schema: &ArraySchema, name: &str) -> bool {
    schema.has_dim(name) || schema.has_attr(name)
}

/// Rewrite a single-relation predicate's column references to base
/// names, validating each resolves to `rel`.
fn strip_to_base(
    pred: &Expr,
    stmt: &SelectStmt,
    schemas: &[ArraySchema],
    rel: usize,
) -> Result<Expr> {
    match pred {
        Expr::Column(name) => {
            let (r, base) = resolve_column(name, stmt, schemas)?;
            debug_assert_eq!(r, rel);
            Ok(Expr::col(base))
        }
        Expr::Literal(_) => Ok(pred.clone()),
        Expr::Binary { op, left, right } => Ok(Expr::Binary {
            op: *op,
            left: Box::new(strip_to_base(left, stmt, schemas, rel)?),
            right: Box::new(strip_to_base(right, stmt, schemas, rel)?),
        }),
        Expr::Neg(e) => Ok(Expr::Neg(Box::new(strip_to_base(e, stmt, schemas, rel)?))),
        Expr::Not(e) => Ok(Expr::Not(Box::new(strip_to_base(e, stmt, schemas, rel)?))),
    }
}

fn bind_projections<F>(
    projections: &[Projection],
    mut check: F,
) -> Result<Option<Vec<(String, Expr)>>>
where
    F: FnMut(Expr) -> Result<Expr>,
{
    if projections.iter().any(|p| matches!(p, Projection::Star)) {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(projections.len());
    for p in projections {
        let Projection::Expr { expr, name } = p else {
            continue;
        };
        out.push((name.clone(), check(expr.clone())?));
    }
    Ok(Some(out))
}

/// Wrap a storage-layer expression-binding error as a bind-phase error.
fn bind_expr_err(e: sj_array::ArrayError, span: Option<Span>) -> LangError {
    LangError::bind(e.to_string())
        .with_span_opt(span)
        .with_source(e)
}

/// Resolve a (possibly qualified) column reference to `(relation index,
/// base column name)`. Bare names must be unique across the FROM list.
fn resolve_column(
    name: &str,
    stmt: &SelectStmt,
    schemas: &[ArraySchema],
) -> Result<(usize, String)> {
    let span = stmt.where_span;
    if let Some((array, col)) = name.split_once('.') {
        let Some(idx) = stmt.from.iter().position(|f| f == array) else {
            return Err(
                LangError::bind(format!("`{name}` references unknown array `{array}`"))
                    .with_span_opt(span),
            );
        };
        return has_column(&schemas[idx], col, span).map(|_| (idx, col.to_string()));
    }
    let mut hits = (0..schemas.len()).filter(|&i| schema_has(&schemas[i], name));
    match (hits.next(), hits.next()) {
        (Some(idx), None) => Ok((idx, name.to_string())),
        (Some(a), Some(b)) => Err(LangError::bind(format!(
            "column `{name}` is ambiguous: both `{}` and `{}` have it",
            stmt.from[a], stmt.from[b]
        ))
        .with_span_opt(span)),
        (None, _) => Err(LangError::bind(format!("unknown column `{name}`")).with_span_opt(span)),
    }
}

/// AND-join a list of predicates into one expression.
fn conjoin(mut predicates: Vec<Expr>) -> Option<Expr> {
    let first = if predicates.is_empty() {
        return None;
    } else {
        predicates.remove(0)
    };
    Some(
        predicates
            .into_iter()
            .fold(first, |acc, p| Expr::binary(BinOp::And, acc, p)),
    )
}

fn has_column(schema: &ArraySchema, col: &str, span: Option<Span>) -> Result<()> {
    if schema.has_dim(col) || schema.has_attr(col) {
        Ok(())
    } else {
        Err(
            LangError::bind(format!("array `{}` has no column `{col}`", schema.name))
                .with_span_opt(span),
        )
    }
}

/// Rewrite `Arr.col` references to bare `col` when they refer to `array`
/// (single-array queries allow qualified self-references).
fn strip_qualifiers(expr: &Expr, array: &str) -> Expr {
    match expr {
        Expr::Column(name) => match name.split_once('.') {
            Some((a, col)) if a == array => Expr::col(col),
            _ => expr.clone(),
        },
        Expr::Literal(_) => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left, array)),
            right: Box::new(strip_qualifiers(right, array)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(strip_qualifiers(e, array))),
        Expr::Not(e) => Expr::Not(Box::new(strip_qualifiers(e, array))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::LangPhase;
    use crate::parser::parse_aql;

    fn catalog(name: &str) -> Option<ArraySchema> {
        match name {
            "A" => Some(ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap()),
            "B" => Some(ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap()),
            _ => None,
        }
    }

    #[test]
    fn bind_single_array_filter() {
        let stmt = parse_aql("SELECT * FROM A WHERE v > 5").unwrap();
        let bound = bind_select(&stmt, catalog).unwrap();
        match bound {
            BoundSelect::SingleArray {
                array,
                filter,
                projections,
                into_name,
            } => {
                assert_eq!(array, "A");
                assert!(filter.is_some());
                assert!(projections.is_none());
                assert!(into_name.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_join_orients_pairs() {
        // Written backwards: B.w = A.v must still orient (A.v, B.w) in
        // FROM order.
        let stmt = parse_aql("SELECT * FROM A, B WHERE B.w = A.v").unwrap();
        let BoundSelect::Join { steps, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(steps, vec![vec![("v".to_string(), "w".to_string())]]);
    }

    #[test]
    fn bind_join_with_bare_columns() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE i = j").unwrap();
        let BoundSelect::Join { steps, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(steps, vec![vec![("i".to_string(), "j".to_string())]]);
    }

    #[test]
    fn reject_single_sided_and_non_equi_join_predicates() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v = A.i").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v > B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    fn catalog3(name: &str) -> Option<ArraySchema> {
        match name {
            "C" => Some(ArraySchema::parse("C<u:int>[k=1,100,10]").unwrap()),
            other => catalog(other),
        }
    }

    #[test]
    fn bind_three_way_join_chains_steps() {
        let stmt = parse_aql("SELECT * FROM A, B, C WHERE A.v = B.w AND B.w = C.u").unwrap();
        let BoundSelect::Join {
            relations, steps, ..
        } = bind_select(&stmt, catalog3).unwrap()
        else {
            panic!()
        };
        let names: Vec<&str> = relations.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
        // Step 2's left key is `v`: B.w collapsed onto it in the A⋈B
        // intermediate.
        assert_eq!(
            steps,
            vec![
                vec![("v".to_string(), "w".to_string())],
                vec![("v".to_string(), "u".to_string())],
            ]
        );
    }

    #[test]
    fn disconnected_join_graph_is_a_typed_bind_error() {
        // C has no equality reaching it: the graph is disconnected, and
        // the error points at `C` in the query text.
        let input = "SELECT * FROM A, B, C WHERE A.v = B.w";
        let stmt = parse_aql(input).unwrap();
        let err = bind_select(&stmt, catalog3).unwrap_err();
        assert_eq!(err.phase, LangPhase::Bind);
        assert!(err.to_string().contains("disconnected join graph"));
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "C");
    }

    #[test]
    fn ambiguous_bare_column_is_rejected() {
        // Both arrays have dimension `i`; a bare `i` in a join must be
        // qualified.
        let cat = |name: &str| match name {
            "A" => Some(ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap()),
            "B" => Some(ArraySchema::parse("B<w:int>[i=1,100,10]").unwrap()),
            _ => None,
        };
        let stmt = parse_aql("SELECT * FROM A, B WHERE v = w AND i > 3").unwrap();
        let err = bind_select(&stmt, cat).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn reject_unknown_arrays_and_columns() {
        let stmt = parse_aql("SELECT * FROM Z WHERE v > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.zzz = B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A WHERE zzz > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    #[test]
    fn bind_errors_carry_phase_and_spans() {
        // Unknown FROM array: span points at `Z` in the query text.
        let input = "SELECT * FROM Z WHERE v > 1";
        let stmt = parse_aql(input).unwrap();
        let err = bind_select(&stmt, catalog).unwrap_err();
        assert_eq!(err.phase, LangPhase::Bind);
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "Z");
        // Unknown column in WHERE: span covers the clause, and the
        // storage-layer cause is chained through `source()`.
        let input = "SELECT * FROM A WHERE zzz > 1";
        let stmt = parse_aql(input).unwrap();
        let err = bind_select(&stmt, catalog).unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "zzz > 1");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn qualified_self_references_stripped_in_single_queries() {
        let stmt = parse_aql("SELECT A.v FROM A WHERE A.v > 2").unwrap();
        let BoundSelect::SingleArray {
            filter,
            projections,
            ..
        } = bind_select(&stmt, catalog).unwrap()
        else {
            panic!()
        };
        assert_eq!(filter.unwrap().to_string(), "(v > 2)");
        assert_eq!(projections.unwrap()[0].1.to_string(), "v");
    }

    #[test]
    fn into_schema_captured_for_joins() {
        let stmt = parse_aql("SELECT * INTO C<i:int, j:int>[v=1,100,10] FROM A, B WHERE A.v = B.w")
            .unwrap();
        let BoundSelect::Join { output, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(output.unwrap().name, "C");
    }
}
