//! Binding: resolve a parsed SELECT against catalog schemas.
//!
//! Splits the statement into the executable shapes the engine supports:
//! single-array filter/apply queries and two-array equi-joins whose
//! predicates become `(left column, right column)` pairs. Failures are
//! reported as [`LangError`]s in the `Bind` phase, pointing at the FROM
//! entry or WHERE clause that caused them.

use sj_array::{ArraySchema, BinOp, Expr};

use crate::ast::{IntoTarget, Projection, SelectStmt};
use crate::error::{LangError, Span};

type Result<T> = std::result::Result<T, LangError>;

/// A bound, executable query.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundSelect {
    /// `SELECT … FROM A [WHERE filter]`.
    SingleArray {
        /// The source array.
        array: String,
        /// Conjoined filter predicate, if any.
        filter: Option<Expr>,
        /// Projections (`None` = `SELECT *`), with unqualified columns.
        projections: Option<Vec<(String, Expr)>>,
        /// Output array name, if INTO was given.
        into_name: Option<String>,
    },
    /// `SELECT … FROM A, B WHERE <equi-pairs>`.
    Join {
        /// Left array.
        left: String,
        /// Right array.
        right: String,
        /// Equi-join pairs as (left column, right column) names.
        pairs: Vec<(String, String)>,
        /// Explicit destination schema, if INTO declared one.
        output: Option<ArraySchema>,
        /// Projections to apply over the join result (`None` = all).
        projections: Option<Vec<(String, Expr)>>,
    },
}

/// Bind `stmt` against a schema catalog (`lookup` returns the schema of
/// a stored array by name).
pub fn bind_select<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    match stmt.from.len() {
        1 => bind_single(stmt, lookup),
        2 => bind_join(stmt, lookup),
        n => Err(LangError::bind(format!(
            "FROM must name one or two arrays, got {n}"
        ))),
    }
}

/// Look up the schema of `stmt.from[idx]`, pointing errors at its span.
fn resolve_from<F>(stmt: &SelectStmt, idx: usize, lookup: &F) -> Result<ArraySchema>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let name = &stmt.from[idx];
    lookup(name).ok_or_else(|| {
        LangError::bind(format!("unknown array `{name}`"))
            .with_span_opt(stmt.from_spans.get(idx).copied())
    })
}

fn bind_single<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let array = stmt.from[0].clone();
    let schema = resolve_from(stmt, 0, &lookup)?;
    let filter = conjoin(stmt.predicates.clone());
    if let Some(f) = &filter {
        // Validate column references (stripping qualifiers).
        strip_qualifiers(f, &array)
            .bind(&schema)
            .map_err(|e| bind_expr_err(e, stmt.where_span))?;
    }
    let projections = bind_projections(&stmt.projections, |expr| {
        let stripped = strip_qualifiers(&expr, &array);
        stripped
            .bind(&schema)
            .map(|_| stripped)
            .map_err(|e| bind_expr_err(e, None))
    })?;
    let into_name = match &stmt.into {
        None => None,
        Some(IntoTarget::Name(n)) => Some(n.clone()),
        Some(IntoTarget::Schema(s)) => Some(s.name.clone()),
    };
    Ok(BoundSelect::SingleArray {
        array,
        filter: filter.map(|f| strip_qualifiers(&f, &stmt.from[0])),
        projections,
        into_name,
    })
}

fn bind_join<F>(stmt: &SelectStmt, lookup: F) -> Result<BoundSelect>
where
    F: Fn(&str) -> Option<ArraySchema>,
{
    let left = stmt.from[0].clone();
    let right = stmt.from[1].clone();
    let lschema = resolve_from(stmt, 0, &lookup)?;
    let rschema = resolve_from(stmt, 1, &lookup)?;

    let mut pairs = Vec::new();
    for pred in &stmt.predicates {
        let Expr::Binary {
            op: BinOp::Eq,
            left: l,
            right: r,
        } = pred
        else {
            return Err(LangError::bind(format!(
                "join predicates must be equality pairs, got `{pred}`"
            ))
            .with_span_opt(stmt.where_span));
        };
        let (Expr::Column(lc), Expr::Column(rc)) = (l.as_ref(), r.as_ref()) else {
            return Err(LangError::bind(format!(
                "join predicates must compare two columns, got `{pred}`"
            ))
            .with_span_opt(stmt.where_span));
        };
        let a = resolve_side(lc, &left, &lschema, &right, &rschema, stmt.where_span)?;
        let b = resolve_side(rc, &left, &lschema, &right, &rschema, stmt.where_span)?;
        match (a, b) {
            ((true, lname), (false, rname)) => pairs.push((lname, rname)),
            ((false, rname), (true, lname)) => pairs.push((lname, rname)),
            _ => {
                return Err(LangError::bind(format!(
                    "predicate `{pred}` does not connect the two arrays"
                ))
                .with_span_opt(stmt.where_span))
            }
        }
    }
    if pairs.is_empty() {
        return Err(LangError::bind(
            "join query needs at least one equality predicate",
        ));
    }

    let output = match &stmt.into {
        Some(IntoTarget::Schema(s)) => Some(s.clone()),
        _ => None,
    };
    let projections = bind_projections(&stmt.projections, Ok)?;
    Ok(BoundSelect::Join {
        left,
        right,
        pairs,
        output,
        projections,
    })
}

fn bind_projections<F>(
    projections: &[Projection],
    mut check: F,
) -> Result<Option<Vec<(String, Expr)>>>
where
    F: FnMut(Expr) -> Result<Expr>,
{
    if projections.iter().any(|p| matches!(p, Projection::Star)) {
        return Ok(None);
    }
    let mut out = Vec::with_capacity(projections.len());
    for p in projections {
        let Projection::Expr { expr, name } = p else {
            continue;
        };
        out.push((name.clone(), check(expr.clone())?));
    }
    Ok(Some(out))
}

/// Wrap a storage-layer expression-binding error as a bind-phase error.
fn bind_expr_err(e: sj_array::ArrayError, span: Option<Span>) -> LangError {
    LangError::bind(e.to_string())
        .with_span_opt(span)
        .with_source(e)
}

/// Determine which side a column reference belongs to. Returns
/// `(is_left, unqualified_name)`.
fn resolve_side(
    name: &str,
    left: &str,
    lschema: &ArraySchema,
    right: &str,
    rschema: &ArraySchema,
    span: Option<Span>,
) -> Result<(bool, String)> {
    if let Some((array, col)) = name.split_once('.') {
        if array == left {
            return has_column(lschema, col, span).map(|_| (true, col.to_string()));
        }
        if array == right {
            return has_column(rschema, col, span).map(|_| (false, col.to_string()));
        }
        return Err(
            LangError::bind(format!("`{name}` references unknown array `{array}`"))
                .with_span_opt(span),
        );
    }
    if lschema.has_dim(name) || lschema.has_attr(name) {
        return Ok((true, name.to_string()));
    }
    if rschema.has_dim(name) || rschema.has_attr(name) {
        return Ok((false, name.to_string()));
    }
    Err(LangError::bind(format!("unknown column `{name}`")).with_span_opt(span))
}

/// AND-join a list of predicates into one expression.
fn conjoin(mut predicates: Vec<Expr>) -> Option<Expr> {
    let first = if predicates.is_empty() {
        return None;
    } else {
        predicates.remove(0)
    };
    Some(
        predicates
            .into_iter()
            .fold(first, |acc, p| Expr::binary(BinOp::And, acc, p)),
    )
}

fn has_column(schema: &ArraySchema, col: &str, span: Option<Span>) -> Result<()> {
    if schema.has_dim(col) || schema.has_attr(col) {
        Ok(())
    } else {
        Err(
            LangError::bind(format!("array `{}` has no column `{col}`", schema.name))
                .with_span_opt(span),
        )
    }
}

/// Rewrite `Arr.col` references to bare `col` when they refer to `array`
/// (single-array queries allow qualified self-references).
fn strip_qualifiers(expr: &Expr, array: &str) -> Expr {
    match expr {
        Expr::Column(name) => match name.split_once('.') {
            Some((a, col)) if a == array => Expr::col(col),
            _ => expr.clone(),
        },
        Expr::Literal(_) => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(strip_qualifiers(left, array)),
            right: Box::new(strip_qualifiers(right, array)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(strip_qualifiers(e, array))),
        Expr::Not(e) => Expr::Not(Box::new(strip_qualifiers(e, array))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::LangPhase;
    use crate::parser::parse_aql;

    fn catalog(name: &str) -> Option<ArraySchema> {
        match name {
            "A" => Some(ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap()),
            "B" => Some(ArraySchema::parse("B<w:int>[j=1,100,10]").unwrap()),
            _ => None,
        }
    }

    #[test]
    fn bind_single_array_filter() {
        let stmt = parse_aql("SELECT * FROM A WHERE v > 5").unwrap();
        let bound = bind_select(&stmt, catalog).unwrap();
        match bound {
            BoundSelect::SingleArray {
                array,
                filter,
                projections,
                into_name,
            } => {
                assert_eq!(array, "A");
                assert!(filter.is_some());
                assert!(projections.is_none());
                assert!(into_name.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_join_orients_pairs() {
        // Written backwards: B.w = A.v must still orient (A.v, B.w).
        let stmt = parse_aql("SELECT * FROM A, B WHERE B.w = A.v").unwrap();
        let BoundSelect::Join { pairs, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(pairs, vec![("v".to_string(), "w".to_string())]);
    }

    #[test]
    fn bind_join_with_bare_columns() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE i = j").unwrap();
        let BoundSelect::Join { pairs, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(pairs, vec![("i".to_string(), "j".to_string())]);
    }

    #[test]
    fn reject_single_sided_and_non_equi_join_predicates() {
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v = A.i").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.v > B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    #[test]
    fn reject_unknown_arrays_and_columns() {
        let stmt = parse_aql("SELECT * FROM Z WHERE v > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A, B WHERE A.zzz = B.w").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
        let stmt = parse_aql("SELECT * FROM A WHERE zzz > 1").unwrap();
        assert!(bind_select(&stmt, catalog).is_err());
    }

    #[test]
    fn bind_errors_carry_phase_and_spans() {
        // Unknown FROM array: span points at `Z` in the query text.
        let input = "SELECT * FROM Z WHERE v > 1";
        let stmt = parse_aql(input).unwrap();
        let err = bind_select(&stmt, catalog).unwrap_err();
        assert_eq!(err.phase, LangPhase::Bind);
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "Z");
        // Unknown column in WHERE: span covers the clause, and the
        // storage-layer cause is chained through `source()`.
        let input = "SELECT * FROM A WHERE zzz > 1";
        let stmt = parse_aql(input).unwrap();
        let err = bind_select(&stmt, catalog).unwrap_err();
        let span = err.span.unwrap();
        assert_eq!(&input[span.start..span.end], "zzz > 1");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn qualified_self_references_stripped_in_single_queries() {
        let stmt = parse_aql("SELECT A.v FROM A WHERE A.v > 2").unwrap();
        let BoundSelect::SingleArray {
            filter,
            projections,
            ..
        } = bind_select(&stmt, catalog).unwrap()
        else {
            panic!()
        };
        assert_eq!(filter.unwrap().to_string(), "(v > 2)");
        assert_eq!(projections.unwrap()[0].1.to_string(), "v");
    }

    #[test]
    fn into_schema_captured_for_joins() {
        let stmt = parse_aql("SELECT * INTO C<i:int, j:int>[v=1,100,10] FROM A, B WHERE A.v = B.w")
            .unwrap();
        let BoundSelect::Join { output, .. } = bind_select(&stmt, catalog).unwrap() else {
            panic!()
        };
        assert_eq!(output.unwrap().name, "C");
    }
}
