//! Tokenizer for AQL and AFL (paper §2.2).

use std::fmt;

use crate::error::{LangError, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively at
    /// parse time). May contain dots (`A.v1`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted).
    Str(String),
    /// A punctuation or operator symbol.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `:`
    Colon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Symbol(s) => write!(f, "{s:?}"),
        }
    }
}

/// Tokenize `input`, or report the first bad character with its span.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LangError> {
    tokenize_spanned(input).map(|(tokens, _)| tokens)
}

/// Tokenize `input` keeping, for each token, the byte span it came from.
/// The two vectors are parallel: `spans[i]` locates `tokens[i]`.
pub fn tokenize_spanned(input: &str) -> Result<(Vec<Token>, Vec<Span>), LangError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        let token = match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '(' => {
                i += 1;
                Token::Symbol(Sym::LParen)
            }
            ')' => {
                i += 1;
                Token::Symbol(Sym::RParen)
            }
            '[' => {
                i += 1;
                Token::Symbol(Sym::LBracket)
            }
            ']' => {
                i += 1;
                Token::Symbol(Sym::RBracket)
            }
            ',' => {
                i += 1;
                Token::Symbol(Sym::Comma)
            }
            ';' => {
                i += 1;
                Token::Symbol(Sym::Semicolon)
            }
            '*' => {
                i += 1;
                Token::Symbol(Sym::Star)
            }
            '+' => {
                i += 1;
                Token::Symbol(Sym::Plus)
            }
            '-' => {
                i += 1;
                Token::Symbol(Sym::Minus)
            }
            '/' => {
                i += 1;
                Token::Symbol(Sym::Slash)
            }
            '%' => {
                i += 1;
                Token::Symbol(Sym::Percent)
            }
            ':' => {
                i += 1;
                Token::Symbol(Sym::Colon)
            }
            '=' => {
                i += 1;
                Token::Symbol(Sym::Eq)
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                i += 2;
                Token::Symbol(Sym::Ne)
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    Token::Symbol(Sym::Le)
                }
                Some(&b'>') => {
                    i += 2;
                    Token::Symbol(Sym::Ne)
                }
                _ => {
                    i += 1;
                    Token::Symbol(Sym::Lt)
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    Token::Symbol(Sym::Ge)
                } else {
                    i += 1;
                    Token::Symbol(Sym::Gt)
                }
            }
            '\'' => {
                let text_start = i + 1;
                let mut j = text_start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LangError::lex("unterminated string literal")
                        .with_span(Span::new(start, bytes.len())));
                }
                i = j + 1;
                Token::Str(input[text_start..j].to_string())
            }
            c if c.is_ascii_digit() => {
                let mut is_float = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.'
                        && !is_float
                        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                    {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    Token::Float(text.parse().map_err(|e| {
                        LangError::lex(format!("bad float `{text}`: {e}"))
                            .with_span(Span::new(start, i))
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|e| {
                        LangError::lex(format!("bad integer `{text}`: {e}"))
                            .with_span(Span::new(start, i))
                    })?)
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                Token::Ident(input[start..i].to_string())
            }
            other => {
                return Err(LangError::lex(format!("unexpected character `{other}`"))
                    .with_span(Span::point(start)))
            }
        };
        tokens.push(token);
        spans.push(Span::new(start, i));
    }
    Ok((tokens, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_query() {
        let toks = tokenize("SELECT * FROM A WHERE v1 > 5").unwrap();
        assert_eq!(toks.len(), 8);
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert_eq!(toks[1], Token::Symbol(Sym::Star));
        assert_eq!(toks[6], Token::Symbol(Sym::Gt));
        assert_eq!(toks[7], Token::Int(5));
    }

    #[test]
    fn qualified_names_keep_dots() {
        let toks = tokenize("A.v1 = B.w").unwrap();
        assert_eq!(toks[0], Token::Ident("A.v1".into()));
        assert_eq!(toks[2], Token::Ident("B.w".into()));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("<= >= <> != < >").unwrap();
        use Sym::*;
        let syms: Vec<Sym> = toks
            .iter()
            .map(|t| match t {
                Token::Symbol(s) => *s,
                _ => panic!(),
            })
            .collect();
        assert_eq!(syms, vec![Le, Ge, Ne, Ne, Lt, Gt]);
    }

    #[test]
    fn numbers_and_floats() {
        let toks = tokenize("3 3.25 10.0").unwrap();
        assert_eq!(toks[0], Token::Int(3));
        assert_eq!(toks[1], Token::Float(3.25));
        assert_eq!(toks[2], Token::Float(10.0));
    }

    #[test]
    fn strings_and_errors() {
        assert_eq!(
            tokenize("'hi there'").unwrap()[0],
            Token::Str("hi there".into())
        );
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a $ b").is_err());
    }

    #[test]
    fn schema_literal_tokens() {
        let toks = tokenize("C<i:int, j:int>[v=1,128,4]").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::Colon)));
        assert!(toks.contains(&Token::Symbol(Sym::LBracket)));
    }

    #[test]
    fn spans_locate_tokens_in_source() {
        let input = "SELECT * FROM A";
        let (tokens, spans) = tokenize_spanned(input).unwrap();
        assert_eq!(tokens.len(), spans.len());
        assert_eq!(&input[spans[0].start..spans[0].end], "SELECT");
        assert_eq!(&input[spans[3].start..spans[3].end], "A");
    }

    #[test]
    fn errors_carry_spans() {
        let err = tokenize("abc $").unwrap_err();
        assert_eq!(err.span, Some(Span::point(4)));
        let err = tokenize("x 'oops").unwrap_err();
        assert_eq!(err.span, Some(Span::new(2, 7)));
    }
}
