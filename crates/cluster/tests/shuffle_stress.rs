//! Randomized stress sweep of the fault-injected shuffle simulator.
//!
//! Generates tens of thousands of random transfer multisets over a
//! 6-node cluster and replays each under a seeded fault plan with up to
//! three staggered node crashes and a 1% drop rate. The simulation must
//! always terminate in a well-defined state: a completed report, or a
//! typed `Unrecoverable`/`TransferFailed` error. A `Simulation` error
//! (the internal stuck-schedule check) or a panic is a scheduler bug —
//! this sweep caught an orphaned self-transfer being re-queued on its
//! own dead sender, which deadlocked the event loop.

use sj_cluster::{
    simulate_shuffle_with_faults, ClusterError, FaultPlan, NetworkModel, RecoveryOptions, Transfer,
};

/// Small deterministic generator so the sweep never depends on external
/// RNG state (splitmix-style multiply-add, top bits).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn random_fault_plans_always_terminate_cleanly() {
    let net = NetworkModel {
        bandwidth_bytes_per_sec: 1.0,
        latency_sec: 0.0,
    };
    let k = 6;
    let crash_nodes = [0usize, 2, 4];
    for seed in 0..20_000u64 {
        let mut r = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let n = 10 + (r.next() % 60) as usize;
        let mut transfers = Vec::with_capacity(n);
        let mut total = 0u64;
        for _ in 0..n {
            let src = (r.next() % k as u64) as usize;
            let dst = (r.next() % k as u64) as usize;
            let bytes = 1 + r.next() % 200;
            total += bytes;
            transfers.push(Transfer { src, dst, bytes });
        }
        let span = total as f64; // bandwidth 1.0 → rough serial span
        let ncrash = (r.next() % 4) as usize;
        let mut faults = FaultPlan::seeded(seed).with_drop_rate(0.01);
        for &node in crash_nodes.iter().take(ncrash) {
            let frac = (1 + r.next() % 98) as f64 / 100.0;
            faults = faults.with_crash(node, span * frac * 0.3);
        }
        let recovery = RecoveryOptions::chained(k, 3);
        match simulate_shuffle_with_faults(k, &net, &transfers, &faults, &recovery) {
            Ok(report) => {
                // Every received byte was planned (or re-planned) as a
                // network transfer; instant local recoveries may leave
                // the received total short of the planned total.
                let recv: u64 = report.recv_bytes.iter().sum();
                assert!(
                    recv <= report.network_bytes,
                    "seed {seed}: received more than was ever planned"
                );
                if !report.degraded && report.retries == 0 {
                    assert_eq!(recv, report.network_bytes, "seed {seed}");
                }
                if report.degraded {
                    assert!(!report.failed_nodes.is_empty());
                    assert_eq!(report.failed_nodes.len(), report.reassigned.len());
                }
            }
            Err(ClusterError::Unrecoverable(_)) | Err(ClusterError::TransferFailed { .. }) => {}
            Err(e) => panic!(
                "seed {seed}: simulator wedged: {e}\ntransfers: {transfers:?}\nfaults: {faults:?}"
            ),
        }
    }
}
