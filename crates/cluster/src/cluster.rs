//! The shared-nothing cluster: nodes, storage, and the system catalog.
//!
//! "the array database is distributed using a shared-nothing architecture,
//! where each node hosts one or more instances of the database. Each
//! instance has a local data partition … The entire cluster shares access
//! to a centralized system catalog that maintains information about the
//! nodes, data distribution, and array schemas. A coordinator node manages
//! the system catalog." (paper §2.1)

use std::collections::{BTreeMap, HashMap};

use sj_array::{Array, ArraySchema, Chunk};

use crate::error::{ClusterError, Result};
use crate::fault::RecoveryOptions;
use crate::network::NetworkModel;
use crate::placement::Placement;

/// One database node: an id plus its local chunk storage, keyed by array
/// name then linear chunk id. Replica copies live in a separate store so
/// primary-only accounting (cell counts, gather) is unchanged by
/// replication.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// Node id (0-based).
    pub id: usize,
    storage: HashMap<String, BTreeMap<u64, Chunk>>,
    replicas: HashMap<String, BTreeMap<u64, Chunk>>,
}

impl Node {
    /// The chunks this node holds for `array`, in chunk-id order.
    pub fn chunks_of(&self, array: &str) -> impl Iterator<Item = (u64, &Chunk)> {
        self.storage
            .get(array)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&id, c)| (id, c)))
    }

    /// Number of cells this node holds for `array`.
    pub fn cell_count(&self, array: &str) -> usize {
        self.storage
            .get(array)
            .map_or(0, |m| m.values().map(Chunk::cell_count).sum())
    }

    /// Stored bytes this node holds for `array`.
    pub fn byte_size(&self, array: &str) -> usize {
        self.storage
            .get(array)
            .map_or(0, |m| m.values().map(Chunk::byte_size).sum())
    }

    /// Number of replica (non-primary) cells this node holds for `array`.
    pub fn replica_cell_count(&self, array: &str) -> usize {
        self.replicas
            .get(array)
            .map_or(0, |m| m.values().map(Chunk::cell_count).sum())
    }
}

/// The coordinator's system catalog: schemas plus the chunk → node map
/// for every loaded array.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    schemas: HashMap<String, ArraySchema>,
    chunk_homes: HashMap<String, BTreeMap<u64, usize>>,
    replica_homes: HashMap<String, BTreeMap<u64, Vec<usize>>>,
    epoch: u64,
}

impl Catalog {
    /// Schema of array `name`.
    pub fn schema(&self, name: &str) -> Result<&ArraySchema> {
        self.schemas
            .get(name)
            .ok_or_else(|| ClusterError::NoSuchArray(name.to_string()))
    }

    /// Monotonic catalog version, bumped whenever an array is loaded or
    /// dropped. Derived state computed from stored data (cached
    /// optimizer statistics, most importantly) keys its validity on
    /// this: a matching epoch means no array has come or gone since.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The chunk-id → node map for array `name`.
    pub fn chunk_homes(&self, name: &str) -> Result<&BTreeMap<u64, usize>> {
        self.chunk_homes
            .get(name)
            .ok_or_else(|| ClusterError::NoSuchArray(name.to_string()))
    }

    /// Names of all loaded arrays, sorted.
    pub fn array_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.schemas.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The chunk-id → replica-holder map for array `name` (primary
    /// first). Arrays loaded without replication map each chunk to its
    /// primary only.
    pub fn replica_homes(&self, name: &str) -> Result<&BTreeMap<u64, Vec<usize>>> {
        self.replica_homes
            .get(name)
            .ok_or_else(|| ClusterError::NoSuchArray(name.to_string()))
    }
}

/// A simulated shared-nothing cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    catalog: Catalog,
    alive: Vec<bool>,
    /// The interconnect model used to time shuffles.
    pub network: NetworkModel,
}

impl Cluster {
    /// A cluster of `k` nodes over the given network.
    pub fn new(k: usize, network: NetworkModel) -> Self {
        assert!(k > 0, "cluster needs at least one node");
        Cluster {
            nodes: (0..k)
                .map(|id| Node {
                    id,
                    storage: HashMap::new(),
                    replicas: HashMap::new(),
                })
                .collect(),
            catalog: Catalog::default(),
            alive: vec![true; k],
            network,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with id `id`.
    pub fn node(&self, id: usize) -> Result<&Node> {
        self.nodes.get(id).ok_or(ClusterError::NoSuchNode(id))
    }

    /// All nodes, in id order (node `i` is at index `i`).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The system catalog (coordinator state).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Load an array, distributing its chunks per `placement` (no
    /// replication: each chunk's only copy is its primary).
    pub fn load_array(&mut self, array: Array, placement: &Placement) -> Result<()> {
        self.load_array_replicated(array, placement, 1)
    }

    /// Load an array with `replicas`-way chained-declustering
    /// replication: each chunk's primary lands per `placement`, and
    /// `replicas - 1` copies land on the next nodes mod `k`. Replicas
    /// are invisible to primary accounting (`per_node_cells`, `gather`)
    /// until a failure promotes them.
    pub fn load_array_replicated(
        &mut self,
        array: Array,
        placement: &Placement,
        replicas: usize,
    ) -> Result<()> {
        let name = array.schema.name.clone();
        if self.catalog.schemas.contains_key(&name) {
            return Err(ClusterError::ArrayExists(name));
        }
        let total_chunks = array.schema.total_chunks();
        let k = self.node_count();
        let schema = array.schema.clone();
        let mut homes = BTreeMap::new();
        let mut replica_map = BTreeMap::new();
        for (id, chunk) in array.into_chunks() {
            let holders = placement.replica_nodes(id, total_chunks, k, replicas);
            let primary = holders[0];
            homes.insert(id, primary);
            for &holder in &holders[1..] {
                self.nodes[holder]
                    .replicas
                    .entry(name.clone())
                    .or_default()
                    .insert(id, chunk.clone());
            }
            replica_map.insert(id, holders);
            self.nodes[primary]
                .storage
                .entry(name.clone())
                .or_default()
                .insert(id, chunk);
        }
        self.catalog.schemas.insert(name.clone(), schema);
        self.catalog.chunk_homes.insert(name.clone(), homes);
        self.catalog.replica_homes.insert(name, replica_map);
        self.catalog.epoch += 1;
        Ok(())
    }

    /// Remove an array from every node and the catalog.
    pub fn drop_array(&mut self, name: &str) -> Result<()> {
        if self.catalog.schemas.remove(name).is_none() {
            return Err(ClusterError::NoSuchArray(name.to_string()));
        }
        self.catalog.chunk_homes.remove(name);
        self.catalog.replica_homes.remove(name);
        for node in &mut self.nodes {
            node.storage.remove(name);
            node.replicas.remove(name);
        }
        self.catalog.epoch += 1;
        Ok(())
    }

    /// Access one stored chunk of `array` wherever it lives.
    pub fn chunk(&self, array: &str, chunk_id: u64) -> Result<&Chunk> {
        let homes = self.catalog.chunk_homes(array)?;
        let &node = homes.get(&chunk_id).ok_or(ClusterError::MissingChunk {
            array: array.to_string(),
            chunk: chunk_id,
        })?;
        self.nodes[node]
            .storage
            .get(array)
            .and_then(|m| m.get(&chunk_id))
            .ok_or(ClusterError::MissingChunk {
                array: array.to_string(),
                chunk: chunk_id,
            })
    }

    /// Reassemble the full array from all nodes (coordinator-side gather;
    /// used by tests and result collection, not by distributed planning).
    pub fn gather(&self, name: &str) -> Result<Array> {
        let schema = self.catalog.schema(name)?.clone();
        let mut array = Array::new(schema);
        for node in &self.nodes {
            if let Some(chunks) = node.storage.get(name) {
                for chunk in chunks.values() {
                    array.insert_chunk(chunk.clone())?;
                }
            }
        }
        Ok(array)
    }

    /// Per-node cell counts for `array` — the distribution statistic the
    /// coordinator reports to the physical planner.
    pub fn per_node_cells(&self, array: &str) -> Result<Vec<usize>> {
        self.catalog.schema(array)?;
        Ok(self.nodes.iter().map(|n| n.cell_count(array)).collect())
    }

    /// True while node `id` has not failed.
    pub fn is_alive(&self, id: usize) -> bool {
        self.alive.get(id).copied().unwrap_or(false)
    }

    /// True once any node has failed.
    pub fn degraded(&self) -> bool {
        self.alive.iter().any(|&a| !a)
    }

    /// Node ids that have failed, ascending.
    pub fn failed_nodes(&self) -> Vec<usize> {
        (0..self.node_count()).filter(|&j| !self.alive[j]).collect()
    }

    /// Kill node `id`: its primary and replica chunks are lost, and for
    /// every chunk it was primary for, the first live replica holder is
    /// promoted to primary (catalog updated, replica copy becomes the
    /// stored copy). Fails with [`ClusterError::NoReplica`] if any such
    /// chunk has no live replica — the cluster is then corrupt and the
    /// caller should treat the data as gone.
    pub fn fail_node(&mut self, id: usize) -> Result<()> {
        if id >= self.node_count() {
            return Err(ClusterError::NoSuchNode(id));
        }
        if !self.alive[id] {
            return Ok(());
        }
        self.alive[id] = false;
        // Everything the node held — primary or replica — is gone.
        let lost_primaries: Vec<(String, Vec<u64>)> = self.nodes[id]
            .storage
            .iter()
            .map(|(name, m)| (name.clone(), m.keys().copied().collect()))
            .collect();
        self.nodes[id].storage.clear();
        self.nodes[id].replicas.clear();
        // Promote a live replica for each orphaned primary chunk.
        for (array, chunks) in lost_primaries {
            for chunk_id in chunks {
                self.promote_replica(&array, chunk_id, id)?;
            }
        }
        // Drop the dead node from every replica-holder list.
        for homes in self.catalog.replica_homes.values_mut() {
            for holders in homes.values_mut() {
                holders.retain(|&h| h != id);
            }
        }
        Ok(())
    }

    fn promote_replica(&mut self, array: &str, chunk_id: u64, dead: usize) -> Result<()> {
        let holders = self
            .catalog
            .replica_homes
            .get(array)
            .and_then(|m| m.get(&chunk_id))
            .cloned()
            .unwrap_or_default();
        let successor = holders
            .iter()
            .copied()
            .find(|&h| h != dead && self.alive[h])
            .ok_or_else(|| ClusterError::NoReplica {
                array: array.to_string(),
                chunk: chunk_id,
            })?;
        let chunk = self.nodes[successor]
            .replicas
            .get_mut(array)
            .and_then(|m| m.remove(&chunk_id))
            .ok_or_else(|| ClusterError::MissingChunk {
                array: array.to_string(),
                chunk: chunk_id,
            })?;
        self.nodes[successor]
            .storage
            .entry(array.to_string())
            .or_default()
            .insert(chunk_id, chunk);
        self.catalog
            .chunk_homes
            .get_mut(array)
            .expect("promoting chunk of uncataloged array")
            .insert(chunk_id, successor);
        // The successor moves to the front of the holder list (it is the
        // primary now).
        if let Some(holders) = self
            .catalog
            .replica_homes
            .get_mut(array)
            .and_then(|m| m.get_mut(&chunk_id))
        {
            holders.retain(|&h| h != successor);
            holders.insert(0, successor);
        }
        Ok(())
    }

    /// Recovery routing for the shuffle simulator, derived from the
    /// catalog's replica holders across all loaded arrays:
    /// `alt_sources[j]` lists the live nodes that hold replicas of node
    /// `j`'s primary chunks, ordered by coverage (chunks held, then
    /// lowest id). Empty for unreplicated nodes.
    pub fn recovery_options(&self) -> RecoveryOptions {
        let k = self.node_count();
        // coverage[j][h] = chunks primared on j with a replica on h.
        let mut coverage: Vec<HashMap<usize, usize>> = vec![HashMap::new(); k];
        for (array, homes) in &self.catalog.replica_homes {
            let primaries = &self.catalog.chunk_homes[array];
            for (chunk_id, holders) in homes {
                let primary = primaries[chunk_id];
                for &h in holders {
                    if h != primary && self.alive[h] {
                        *coverage[primary].entry(h).or_default() += 1;
                    }
                }
            }
        }
        RecoveryOptions {
            alt_sources: coverage
                .into_iter()
                .map(|cov| {
                    let mut alts: Vec<(usize, usize)> = cov.into_iter().collect();
                    alts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    alts.into_iter().map(|(h, _)| h).collect()
                })
                .collect(),
        }
    }

    /// Move one chunk to a different node, updating the catalog.
    pub fn move_chunk(&mut self, array: &str, chunk_id: u64, dst: usize) -> Result<()> {
        if dst >= self.node_count() {
            return Err(ClusterError::NoSuchNode(dst));
        }
        if !self.alive[dst] {
            return Err(ClusterError::NodeDown(dst));
        }
        let homes = self
            .catalog
            .chunk_homes
            .get_mut(array)
            .ok_or_else(|| ClusterError::NoSuchArray(array.to_string()))?;
        let src = *homes.get(&chunk_id).ok_or(ClusterError::MissingChunk {
            array: array.to_string(),
            chunk: chunk_id,
        })?;
        if src == dst {
            return Ok(());
        }
        let chunk = self.nodes[src]
            .storage
            .get_mut(array)
            .and_then(|m| m.remove(&chunk_id))
            .ok_or(ClusterError::MissingChunk {
                array: array.to_string(),
                chunk: chunk_id,
            })?;
        self.nodes[dst]
            .storage
            .entry(array.to_string())
            .or_default()
            .insert(chunk_id, chunk);
        homes.insert(chunk_id, dst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::Value;

    fn sample_array(name: &str) -> Array {
        let schema = ArraySchema::parse(&format!("{name}<v:int>[i=1,80,10]")).unwrap();
        Array::from_cells(schema, (1..=80).map(|i| (vec![i], vec![Value::Int(i)]))).unwrap()
    }

    #[test]
    fn load_round_robin_distributes_chunks() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        // 8 chunks over 4 nodes = 2 each, 10 cells per chunk.
        let cells = cluster.per_node_cells("A").unwrap();
        assert_eq!(cells, vec![20, 20, 20, 20]);
        let homes = cluster.catalog().chunk_homes("A").unwrap();
        assert_eq!(homes.len(), 8);
        assert_eq!(homes[&5], 1);
    }

    #[test]
    fn duplicate_load_rejected() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        assert!(matches!(
            cluster.load_array(sample_array("A"), &Placement::RoundRobin),
            Err(ClusterError::ArrayExists(_))
        ));
    }

    #[test]
    fn gather_reassembles_everything() {
        let a = sample_array("A");
        let mut cluster = Cluster::new(3, NetworkModel::default());
        cluster.load_array(a.clone(), &Placement::Hash).unwrap();
        let g = cluster.gather("A").unwrap();
        assert_eq!(g.cell_count(), a.cell_count());
        assert_eq!(g.chunk_count(), a.chunk_count());
        for i in [1i64, 40, 80] {
            assert_eq!(g.get(&[i]).unwrap(), a.get(&[i]).unwrap());
        }
    }

    #[test]
    fn chunk_lookup_follows_catalog() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        let c = cluster.chunk("A", 3).unwrap();
        assert_eq!(c.cell_count(), 10);
        assert!(cluster.chunk("A", 99).is_err());
        assert!(cluster.chunk("B", 0).is_err());
    }

    #[test]
    fn move_chunk_updates_catalog_and_storage() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        let before = cluster.per_node_cells("A").unwrap();
        cluster.move_chunk("A", 0, 1).unwrap();
        let after = cluster.per_node_cells("A").unwrap();
        assert_eq!(before.iter().sum::<usize>(), after.iter().sum::<usize>());
        assert_eq!(after[1], before[1] + 10);
        assert_eq!(
            *cluster.catalog().chunk_homes("A").unwrap().get(&0).unwrap(),
            1
        );
        // Moving to the same node is a no-op.
        cluster.move_chunk("A", 0, 1).unwrap();
        // Bad destination rejected.
        assert!(cluster.move_chunk("A", 0, 7).is_err());
    }

    #[test]
    fn drop_array_clears_all_state() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::Block)
            .unwrap();
        cluster.drop_array("A").unwrap();
        assert!(cluster.gather("A").is_err());
        assert!(cluster.drop_array("A").is_err());
        assert_eq!(cluster.node(0).unwrap().cell_count("A"), 0);
    }

    #[test]
    fn replicated_load_keeps_primary_accounting() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array_replicated(sample_array("A"), &Placement::RoundRobin, 2)
            .unwrap();
        // Primary view identical to unreplicated round-robin.
        assert_eq!(cluster.per_node_cells("A").unwrap(), vec![20, 20, 20, 20]);
        // Each node additionally mirrors its predecessor's 20 cells.
        for n in cluster.nodes() {
            assert_eq!(n.replica_cell_count("A"), 20);
        }
        let homes = cluster.catalog().replica_homes("A").unwrap();
        assert_eq!(homes[&1], vec![1, 2]);
        // Gather ignores replicas (no double counting).
        assert_eq!(cluster.gather("A").unwrap().cell_count(), 80);
    }

    #[test]
    fn fail_node_promotes_replicas_and_degrades() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array_replicated(sample_array("A"), &Placement::RoundRobin, 2)
            .unwrap();
        assert!(!cluster.degraded());
        cluster.fail_node(1).unwrap();
        assert!(cluster.degraded());
        assert!(!cluster.is_alive(1));
        assert_eq!(cluster.failed_nodes(), vec![1]);
        // Node 1's chunks (ids 1 and 5) promoted on node 2.
        let homes = cluster.catalog().chunk_homes("A").unwrap();
        assert_eq!(homes[&1], 2);
        assert_eq!(homes[&5], 2);
        // No cells lost: gather still reassembles the full array.
        assert_eq!(cluster.gather("A").unwrap().cell_count(), 80);
        assert_eq!(cluster.per_node_cells("A").unwrap(), vec![20, 0, 40, 20]);
        // Failing the same node again is a no-op.
        cluster.fail_node(1).unwrap();
        // Moving a chunk onto the dead node is rejected.
        assert!(matches!(
            cluster.move_chunk("A", 0, 1),
            Err(ClusterError::NodeDown(1))
        ));
    }

    #[test]
    fn fail_node_without_replica_reports_lost_chunk() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        let err = cluster.fail_node(0).unwrap_err();
        assert!(matches!(err, ClusterError::NoReplica { .. }), "{err}");
    }

    #[test]
    fn recovery_options_follow_replica_coverage() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array_replicated(sample_array("A"), &Placement::RoundRobin, 3)
            .unwrap();
        let r = cluster.recovery_options();
        // Node 0's chunks are mirrored on nodes 1 and 2 equally; ties
        // break toward the lower id.
        assert_eq!(r.alt_sources[0], vec![1, 2]);
        assert_eq!(r.alt_sources[3], vec![0, 1]);
        // Unreplicated arrays yield no alternates.
        let mut bare = Cluster::new(4, NetworkModel::default());
        bare.load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        assert!(bare.recovery_options().alt_sources[0].is_empty());
    }

    #[test]
    fn explicit_placement_creates_location_skew() {
        // All chunks on node 0 — the hotspot scenario.
        let map: HashMap<u64, usize> = (0..8).map(|c| (c, 0usize)).collect();
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::Explicit(map))
            .unwrap();
        assert_eq!(cluster.per_node_cells("A").unwrap(), vec![80, 0, 0, 0]);
    }
}
