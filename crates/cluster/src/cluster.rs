//! The shared-nothing cluster: nodes, storage, and the system catalog.
//!
//! "the array database is distributed using a shared-nothing architecture,
//! where each node hosts one or more instances of the database. Each
//! instance has a local data partition … The entire cluster shares access
//! to a centralized system catalog that maintains information about the
//! nodes, data distribution, and array schemas. A coordinator node manages
//! the system catalog." (paper §2.1)

use std::collections::{BTreeMap, HashMap};

use sj_array::{Array, ArraySchema, Chunk};

use crate::error::{ClusterError, Result};
use crate::network::NetworkModel;
use crate::placement::Placement;

/// One database node: an id plus its local chunk storage, keyed by array
/// name then linear chunk id.
#[derive(Debug, Clone, Default)]
pub struct Node {
    /// Node id (0-based).
    pub id: usize,
    storage: HashMap<String, BTreeMap<u64, Chunk>>,
}

impl Node {
    /// The chunks this node holds for `array`, in chunk-id order.
    pub fn chunks_of(&self, array: &str) -> impl Iterator<Item = (u64, &Chunk)> {
        self.storage
            .get(array)
            .into_iter()
            .flat_map(|m| m.iter().map(|(&id, c)| (id, c)))
    }

    /// Number of cells this node holds for `array`.
    pub fn cell_count(&self, array: &str) -> usize {
        self.storage
            .get(array)
            .map_or(0, |m| m.values().map(Chunk::cell_count).sum())
    }

    /// Stored bytes this node holds for `array`.
    pub fn byte_size(&self, array: &str) -> usize {
        self.storage
            .get(array)
            .map_or(0, |m| m.values().map(Chunk::byte_size).sum())
    }
}

/// The coordinator's system catalog: schemas plus the chunk → node map
/// for every loaded array.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    schemas: HashMap<String, ArraySchema>,
    chunk_homes: HashMap<String, BTreeMap<u64, usize>>,
}

impl Catalog {
    /// Schema of array `name`.
    pub fn schema(&self, name: &str) -> Result<&ArraySchema> {
        self.schemas
            .get(name)
            .ok_or_else(|| ClusterError::NoSuchArray(name.to_string()))
    }

    /// The chunk-id → node map for array `name`.
    pub fn chunk_homes(&self, name: &str) -> Result<&BTreeMap<u64, usize>> {
        self.chunk_homes
            .get(name)
            .ok_or_else(|| ClusterError::NoSuchArray(name.to_string()))
    }

    /// Names of all loaded arrays, sorted.
    pub fn array_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.schemas.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// A simulated shared-nothing cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    catalog: Catalog,
    /// The interconnect model used to time shuffles.
    pub network: NetworkModel,
}

impl Cluster {
    /// A cluster of `k` nodes over the given network.
    pub fn new(k: usize, network: NetworkModel) -> Self {
        assert!(k > 0, "cluster needs at least one node");
        Cluster {
            nodes: (0..k)
                .map(|id| Node {
                    id,
                    storage: HashMap::new(),
                })
                .collect(),
            catalog: Catalog::default(),
            network,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with id `id`.
    pub fn node(&self, id: usize) -> Result<&Node> {
        self.nodes.get(id).ok_or(ClusterError::NoSuchNode(id))
    }

    /// All nodes, in id order (node `i` is at index `i`).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The system catalog (coordinator state).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Load an array, distributing its chunks per `placement`.
    pub fn load_array(&mut self, array: Array, placement: &Placement) -> Result<()> {
        let name = array.schema.name.clone();
        if self.catalog.schemas.contains_key(&name) {
            return Err(ClusterError::ArrayExists(name));
        }
        let total_chunks = array.schema.total_chunks();
        let k = self.node_count();
        let schema = array.schema.clone();
        let mut homes = BTreeMap::new();
        for (id, chunk) in array.into_chunks() {
            let node = placement.node_for(id, total_chunks, k);
            homes.insert(id, node);
            self.nodes[node]
                .storage
                .entry(name.clone())
                .or_default()
                .insert(id, chunk);
        }
        self.catalog.schemas.insert(name.clone(), schema);
        self.catalog.chunk_homes.insert(name, homes);
        Ok(())
    }

    /// Remove an array from every node and the catalog.
    pub fn drop_array(&mut self, name: &str) -> Result<()> {
        if self.catalog.schemas.remove(name).is_none() {
            return Err(ClusterError::NoSuchArray(name.to_string()));
        }
        self.catalog.chunk_homes.remove(name);
        for node in &mut self.nodes {
            node.storage.remove(name);
        }
        Ok(())
    }

    /// Access one stored chunk of `array` wherever it lives.
    pub fn chunk(&self, array: &str, chunk_id: u64) -> Result<&Chunk> {
        let homes = self.catalog.chunk_homes(array)?;
        let &node = homes.get(&chunk_id).ok_or(ClusterError::MissingChunk {
            array: array.to_string(),
            chunk: chunk_id,
        })?;
        self.nodes[node]
            .storage
            .get(array)
            .and_then(|m| m.get(&chunk_id))
            .ok_or(ClusterError::MissingChunk {
                array: array.to_string(),
                chunk: chunk_id,
            })
    }

    /// Reassemble the full array from all nodes (coordinator-side gather;
    /// used by tests and result collection, not by distributed planning).
    pub fn gather(&self, name: &str) -> Result<Array> {
        let schema = self.catalog.schema(name)?.clone();
        let mut array = Array::new(schema);
        for node in &self.nodes {
            if let Some(chunks) = node.storage.get(name) {
                for chunk in chunks.values() {
                    array.insert_chunk(chunk.clone())?;
                }
            }
        }
        Ok(array)
    }

    /// Per-node cell counts for `array` — the distribution statistic the
    /// coordinator reports to the physical planner.
    pub fn per_node_cells(&self, array: &str) -> Result<Vec<usize>> {
        self.catalog.schema(array)?;
        Ok(self.nodes.iter().map(|n| n.cell_count(array)).collect())
    }

    /// Move one chunk to a different node, updating the catalog.
    pub fn move_chunk(&mut self, array: &str, chunk_id: u64, dst: usize) -> Result<()> {
        if dst >= self.node_count() {
            return Err(ClusterError::NoSuchNode(dst));
        }
        let homes =
            self.catalog
                .chunk_homes
                .get_mut(array)
                .ok_or_else(|| ClusterError::NoSuchArray(array.to_string()))?;
        let src = *homes.get(&chunk_id).ok_or(ClusterError::MissingChunk {
            array: array.to_string(),
            chunk: chunk_id,
        })?;
        if src == dst {
            return Ok(());
        }
        let chunk = self.nodes[src]
            .storage
            .get_mut(array)
            .and_then(|m| m.remove(&chunk_id))
            .ok_or(ClusterError::MissingChunk {
                array: array.to_string(),
                chunk: chunk_id,
            })?;
        self.nodes[dst]
            .storage
            .entry(array.to_string())
            .or_default()
            .insert(chunk_id, chunk);
        homes.insert(chunk_id, dst);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_array::Value;

    fn sample_array(name: &str) -> Array {
        let schema = ArraySchema::parse(&format!("{name}<v:int>[i=1,80,10]")).unwrap();
        Array::from_cells(schema, (1..=80).map(|i| (vec![i], vec![Value::Int(i)]))).unwrap()
    }

    #[test]
    fn load_round_robin_distributes_chunks() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        // 8 chunks over 4 nodes = 2 each, 10 cells per chunk.
        let cells = cluster.per_node_cells("A").unwrap();
        assert_eq!(cells, vec![20, 20, 20, 20]);
        let homes = cluster.catalog().chunk_homes("A").unwrap();
        assert_eq!(homes.len(), 8);
        assert_eq!(homes[&5], 1);
    }

    #[test]
    fn duplicate_load_rejected() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        assert!(matches!(
            cluster.load_array(sample_array("A"), &Placement::RoundRobin),
            Err(ClusterError::ArrayExists(_))
        ));
    }

    #[test]
    fn gather_reassembles_everything() {
        let a = sample_array("A");
        let mut cluster = Cluster::new(3, NetworkModel::default());
        cluster.load_array(a.clone(), &Placement::Hash).unwrap();
        let g = cluster.gather("A").unwrap();
        assert_eq!(g.cell_count(), a.cell_count());
        assert_eq!(g.chunk_count(), a.chunk_count());
        for i in [1i64, 40, 80] {
            assert_eq!(g.get(&[i]).unwrap(), a.get(&[i]).unwrap());
        }
    }

    #[test]
    fn chunk_lookup_follows_catalog() {
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        let c = cluster.chunk("A", 3).unwrap();
        assert_eq!(c.cell_count(), 10);
        assert!(cluster.chunk("A", 99).is_err());
        assert!(cluster.chunk("B", 0).is_err());
    }

    #[test]
    fn move_chunk_updates_catalog_and_storage() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::RoundRobin)
            .unwrap();
        let before = cluster.per_node_cells("A").unwrap();
        cluster.move_chunk("A", 0, 1).unwrap();
        let after = cluster.per_node_cells("A").unwrap();
        assert_eq!(before.iter().sum::<usize>(), after.iter().sum::<usize>());
        assert_eq!(after[1], before[1] + 10);
        assert_eq!(*cluster.catalog().chunk_homes("A").unwrap().get(&0).unwrap(), 1);
        // Moving to the same node is a no-op.
        cluster.move_chunk("A", 0, 1).unwrap();
        // Bad destination rejected.
        assert!(cluster.move_chunk("A", 0, 7).is_err());
    }

    #[test]
    fn drop_array_clears_all_state() {
        let mut cluster = Cluster::new(2, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::Block)
            .unwrap();
        cluster.drop_array("A").unwrap();
        assert!(cluster.gather("A").is_err());
        assert!(cluster.drop_array("A").is_err());
        assert_eq!(cluster.node(0).unwrap().cell_count("A"), 0);
    }

    #[test]
    fn explicit_placement_creates_location_skew() {
        // All chunks on node 0 — the hotspot scenario.
        let map: HashMap<u64, usize> = (0..8).map(|c| (c, 0usize)).collect();
        let mut cluster = Cluster::new(4, NetworkModel::default());
        cluster
            .load_array(sample_array("A"), &Placement::Explicit(map))
            .unwrap();
        assert_eq!(cluster.per_node_cells("A").unwrap(), vec![80, 0, 0, 0]);
    }
}
