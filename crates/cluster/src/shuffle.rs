//! Discrete-event simulation of the data-alignment shuffle.
//!
//! Implements the paper's greedy lock-based shuffle schedule (§3.4): the
//! coordinator keeps a write lock per host; a sender must hold the
//! destination's write lock for the duration of a slice transfer. If a
//! sender cannot acquire the lock for its next slice, it tries its other
//! slices, and once it runs out of free destinations it polls until one
//! frees up. Senders transmit one slice at a time; a host can send and
//! receive simultaneously (full-duplex links into a switched fabric).
//!
//! The simulation yields the *makespan* of the alignment phase — the
//! virtual time at which the last slice lands — plus per-node send and
//! receive loads, which is exactly what the physical cost model
//! approximates analytically (paper §5.1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{ClusterError, Result};
use crate::network::NetworkModel;

/// One slice transfer to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// The outcome of simulating one shuffle.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleReport {
    /// Virtual seconds from shuffle start until the last transfer lands.
    pub makespan: f64,
    /// Bytes moved over the network (local transfers excluded).
    pub network_bytes: u64,
    /// Bytes that stayed local (src == dst).
    pub local_bytes: u64,
    /// Per-node total bytes sent over the network.
    pub sent_bytes: Vec<u64>,
    /// Per-node total bytes received over the network.
    pub recv_bytes: Vec<u64>,
    /// Number of network transfers performed.
    pub network_transfers: usize,
}

impl ShuffleReport {
    /// An empty report for a cluster of `k` nodes (no transfers).
    pub fn empty(k: usize) -> Self {
        ShuffleReport {
            makespan: 0.0,
            network_bytes: 0,
            local_bytes: 0,
            sent_bytes: vec![0; k],
            recv_bytes: vec![0; k],
            network_transfers: 0,
        }
    }
}

#[derive(Debug, PartialEq)]
struct Completion {
    finish: f64,
    sender: usize,
    dst: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on finish time (BinaryHeap is a max-heap): reverse.
        other
            .finish
            .total_cmp(&self.finish)
            .then_with(|| other.sender.cmp(&self.sender))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulate the data-alignment shuffle for `transfers` on a `k`-node
/// cluster under `network`, using the greedy write-lock schedule.
pub fn simulate_shuffle(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
) -> Result<ShuffleReport> {
    let mut report = ShuffleReport::empty(k);
    // Per-sender queues of pending network transfers, in submission order.
    let mut pending: Vec<Vec<Transfer>> = vec![Vec::new(); k];
    for t in transfers {
        if t.src >= k {
            return Err(ClusterError::NoSuchNode(t.src));
        }
        if t.dst >= k {
            return Err(ClusterError::NoSuchNode(t.dst));
        }
        if t.src == t.dst {
            report.local_bytes += t.bytes;
            continue;
        }
        report.network_bytes += t.bytes;
        report.sent_bytes[t.src] += t.bytes;
        report.recv_bytes[t.dst] += t.bytes;
        report.network_transfers += 1;
        pending[t.src].push(*t);
    }
    // Queues are drained front-to-back; reverse so pop-from-back walks
    // the original order.
    for q in &mut pending {
        q.reverse();
    }

    let mut locked = vec![false; k];
    let mut sender_busy = vec![false; k];
    let mut events: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    // Try to start one transfer for `sender`: the first pending slice
    // whose destination lock is free (the greedy "try the next slice"
    // rule from §3.4).
    fn try_dispatch(
        sender: usize,
        now: f64,
        pending: &mut [Vec<Transfer>],
        locked: &mut [bool],
        sender_busy: &mut [bool],
        network: &NetworkModel,
        events: &mut BinaryHeap<Completion>,
    ) {
        if sender_busy[sender] {
            return;
        }
        let queue = &mut pending[sender];
        // Scan from the back (front of the logical queue).
        let Some(idx) = queue.iter().rposition(|t| !locked[t.dst]) else {
            return;
        };
        let t = queue.remove(idx);
        locked[t.dst] = true;
        sender_busy[sender] = true;
        events.push(Completion {
            finish: now + network.transfer_time(t.bytes),
            sender,
            dst: t.dst,
        });
    }

    for s in 0..k {
        try_dispatch(
            s,
            now,
            &mut pending,
            &mut locked,
            &mut sender_busy,
            network,
            &mut events,
        );
    }

    while let Some(done) = events.pop() {
        now = done.finish;
        locked[done.dst] = false;
        sender_busy[done.sender] = false;
        // The freed lock (and freed sender) may unblock any idle sender;
        // poll them in node order, completing sender first for fairness.
        try_dispatch(
            done.sender,
            now,
            &mut pending,
            &mut locked,
            &mut sender_busy,
            network,
            &mut events,
        );
        for s in 0..k {
            try_dispatch(
                s,
                now,
                &mut pending,
                &mut locked,
                &mut sender_busy,
                network,
                &mut events,
            );
        }
    }

    if pending.iter().any(|q| !q.is_empty()) {
        return Err(ClusterError::Simulation(
            "shuffle ended with undispatched transfers".into(),
        ));
    }
    report.makespan = now;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        // 1 byte/sec, no latency: transfer time == byte count.
        NetworkModel {
            bandwidth_bytes_per_sec: 1.0,
            latency_sec: 0.0,
        }
    }

    #[test]
    fn empty_shuffle_is_free() {
        let r = simulate_shuffle(4, &net(), &[]).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.network_bytes, 0);
    }

    #[test]
    fn local_transfers_cost_nothing() {
        let r = simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 0,
                bytes: 1_000,
            }],
        )
        .unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.local_bytes, 1_000);
        assert_eq!(r.network_transfers, 0);
    }

    #[test]
    fn single_transfer_time() {
        let r = simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 1,
                bytes: 50,
            }],
        )
        .unwrap();
        assert!((r.makespan - 50.0).abs() < 1e-9);
        assert_eq!(r.sent_bytes, vec![50, 0]);
        assert_eq!(r.recv_bytes, vec![0, 50]);
    }

    #[test]
    fn parallel_disjoint_transfers_overlap() {
        // 0→1 and 2→3 can run simultaneously.
        let r = simulate_shuffle(
            4,
            &net(),
            &[
                Transfer { src: 0, dst: 1, bytes: 100 },
                Transfer { src: 2, dst: 3, bytes: 100 },
            ],
        )
        .unwrap();
        assert!((r.makespan - 100.0).abs() < 1e-9);
    }

    #[test]
    fn receiver_lock_serializes_converging_transfers() {
        // Two senders target node 2: second must wait for the lock.
        let r = simulate_shuffle(
            3,
            &net(),
            &[
                Transfer { src: 0, dst: 2, bytes: 100 },
                Transfer { src: 1, dst: 2, bytes: 100 },
            ],
        )
        .unwrap();
        assert!((r.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn sender_serializes_its_own_transfers() {
        // One sender, two receivers: sends go one at a time.
        let r = simulate_shuffle(
            3,
            &net(),
            &[
                Transfer { src: 0, dst: 1, bytes: 100 },
                Transfer { src: 0, dst: 2, bytes: 100 },
            ],
        )
        .unwrap();
        assert!((r.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_sender_skips_to_free_destination() {
        // Sender 0 queues [→2 (long-blocked? no) ...] scenario:
        // sender 1 grabs node 2 first is not deterministic; instead test
        // that total work completes and makespan is within greedy bounds.
        let transfers = [
            Transfer { src: 0, dst: 2, bytes: 100 },
            Transfer { src: 0, dst: 1, bytes: 50 },
            Transfer { src: 1, dst: 2, bytes: 100 },
        ];
        let r = simulate_shuffle(3, &net(), &transfers).unwrap();
        // Node 2 receives 200 bytes serially => makespan >= 200.
        assert!(r.makespan >= 200.0 - 1e-9);
        // Greedy overlap should keep it well under fully-serial (250).
        assert!(r.makespan <= 250.0 + 1e-9);
        assert_eq!(r.network_bytes, 250);
    }

    #[test]
    fn full_duplex_send_and_receive_overlap() {
        // 0→1 and 1→0 simultaneously: both done at t=100.
        let r = simulate_shuffle(
            2,
            &net(),
            &[
                Transfer { src: 0, dst: 1, bytes: 100 },
                Transfer { src: 1, dst: 0, bytes: 100 },
            ],
        )
        .unwrap();
        assert!((r.makespan - 100.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_one_congestion_vs_all_to_all() {
        // The paper's §2.3.2 observation: transmitting everything to one
        // host creates congestion; spreading to all hosts is faster even
        // when more bytes move.
        let k = 4;
        // All-to-one: nodes 1..3 each send 300 bytes to node 0.
        let to_one: Vec<Transfer> = (1..k)
            .map(|s| Transfer { src: s, dst: 0, bytes: 300 })
            .collect();
        let r1 = simulate_shuffle(k, &net(), &to_one).unwrap();
        // All-to-all: every node sends 100 bytes to every other node
        // (more total bytes: 12 * 100 = 1200 > 900).
        let mut all: Vec<Transfer> = Vec::new();
        for s in 0..k {
            for d in 0..k {
                if s != d {
                    all.push(Transfer { src: s, dst: d, bytes: 100 });
                }
            }
        }
        let r2 = simulate_shuffle(k, &net(), &all).unwrap();
        assert!(r2.network_bytes > r1.network_bytes);
        assert!(
            r2.makespan < r1.makespan,
            "all-to-all ({}) should beat all-to-one ({})",
            r2.makespan,
            r1.makespan
        );
    }

    #[test]
    fn invalid_node_ids_rejected() {
        assert!(simulate_shuffle(
            2,
            &net(),
            &[Transfer { src: 0, dst: 5, bytes: 1 }]
        )
        .is_err());
        assert!(simulate_shuffle(
            2,
            &net(),
            &[Transfer { src: 9, dst: 0, bytes: 1 }]
        )
        .is_err());
    }

    #[test]
    fn makespan_at_least_max_node_load() {
        // Analytical lower bound from the paper's cost model: the busiest
        // link bounds the makespan.
        let transfers = [
            Transfer { src: 0, dst: 1, bytes: 500 },
            Transfer { src: 0, dst: 2, bytes: 300 },
            Transfer { src: 3, dst: 1, bytes: 400 },
            Transfer { src: 2, dst: 3, bytes: 100 },
        ];
        let r = simulate_shuffle(4, &net(), &transfers).unwrap();
        let max_send = *r.sent_bytes.iter().max().unwrap() as f64;
        let max_recv = *r.recv_bytes.iter().max().unwrap() as f64;
        assert!(r.makespan + 1e-9 >= max_send.max(max_recv));
    }
}
