//! Discrete-event simulation of the data-alignment shuffle.
//!
//! Implements the paper's greedy lock-based shuffle schedule (§3.4): the
//! coordinator keeps a write lock per host; a sender must hold the
//! destination's write lock for the duration of a slice transfer. If a
//! sender cannot acquire the lock for its next slice, it tries its other
//! slices, and once it runs out of free destinations it polls until one
//! frees up. Senders transmit one slice at a time; a host can send and
//! receive simultaneously (full-duplex links into a switched fabric).
//!
//! The simulation yields the *makespan* of the alignment phase — the
//! virtual time at which the last slice lands — plus per-node send and
//! receive loads, which is exactly what the physical cost model
//! approximates analytically (paper §5.1).
//!
//! # Fault injection
//!
//! [`simulate_shuffle_with_faults`] additionally threads a [`FaultPlan`]
//! through the event loop, which the paper's framework does not model:
//!
//! - **Drops and corruption** — every transfer carries a checksum; a
//!   dropped or corrupted attempt is retransmitted with exponential
//!   backoff while the sender holds both locks, up to
//!   `FaultPlan::max_retries` attempts (then the shuffle fails with a
//!   typed [`ClusterError::TransferFailed`]).
//! - **Timeouts** — an attempt whose expected duration exceeds
//!   `transfer_timeout` is aborted at the timeout and retried, re-sourced
//!   from a faster live replica when [`RecoveryOptions`] knows one.
//! - **Node crashes** — at the crash timestamp, in-flight transfers
//!   touching the dead node abort; its unsent slices are re-sourced from
//!   replica nodes; everything destined for it (including slices that
//!   had already landed, and its local data) is re-routed to a
//!   substitute node chosen by the coordinator (least receive load,
//!   lowest id) and retransmitted from live sources. The substitution
//!   is recorded in `ShuffleReport::reassigned` so the executor can
//!   re-home the affected join units.
//!
//! With `FaultPlan::none()` the loop takes the exact fault-free
//! arithmetic path: no RNG draws, slowdown factor 1.0, no recovery
//! bookkeeping — reports are bit-identical to the plain simulation.
//!
//! Accounting under faults: `network_bytes`/`network_transfers` count
//! the *planned* payload (plus recovery retransmissions of landed data);
//! `sent_bytes` counts bytes a node actually pushed onto the wire
//! (each attempt, including retransmissions); `recv_bytes` counts bytes
//! successfully received; `recovery_bytes` isolates everything moved
//! *because of* faults.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{ClusterError, Result};
use crate::fault::{FaultPlan, NodeCrash, RecoveryOptions, ReplanPolicy};
use crate::network::NetworkModel;
use sj_telemetry::QueryContext;
use sj_workload::Rng64;

/// One slice transfer to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// The outcome of simulating one shuffle.
#[derive(Debug, Clone, PartialEq)]
pub struct ShuffleReport {
    /// Virtual seconds from shuffle start until the last transfer lands.
    pub makespan: f64,
    /// Bytes moved over the network (local transfers excluded).
    pub network_bytes: u64,
    /// Bytes that stayed local (src == dst).
    pub local_bytes: u64,
    /// Per-node total bytes sent over the network.
    pub sent_bytes: Vec<u64>,
    /// Per-node total bytes received over the network.
    pub recv_bytes: Vec<u64>,
    /// Number of network transfers performed.
    pub network_transfers: usize,
    /// Retransmission attempts (drops, corruption, timeouts).
    pub retries: u64,
    /// Transfers moved to a replica source or substitute destination.
    pub reroutes: u64,
    /// Extra bytes moved over the network because of faults.
    pub recovery_bytes: u64,
    /// Transfers whose payload failed its checksum on arrival.
    pub checksum_failures: u64,
    /// Transfers lost in flight.
    pub dropped_transfers: u64,
    /// Attempts aborted by the per-transfer timeout.
    pub timeouts: u64,
    /// Nodes that died during (or right after) the shuffle, in crash
    /// order.
    pub failed_nodes: Vec<usize>,
    /// Dead destination → substitute node, in crash order. The executor
    /// re-homes join units through this map.
    pub reassigned: Vec<(usize, usize)>,
    /// True when the cluster lost at least one node.
    pub degraded: bool,
    /// Mid-shuffle straggler re-plan actions taken (see [`ReplanPolicy`]).
    pub replans: u64,
    /// Bytes re-routed away from flagged stragglers by re-planning.
    pub replanned_bytes: u64,
    /// One record per re-plan action, in decision order.
    pub replan_events: Vec<ReplanEvent>,
}

/// One mid-shuffle straggler re-plan decision, taken at a deterministic
/// re-plan barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanEvent {
    /// Virtual time of the barrier that took the decision.
    pub at_seconds: f64,
    /// The flagged straggler (donor) node.
    pub node: usize,
    /// The substitute (recipient) node its remaining traffic moved to.
    pub substitute: usize,
    /// Bytes re-routed by this decision.
    pub moved_bytes: u64,
    /// Slices (transfers) re-routed by this decision.
    pub moved_slices: u64,
    /// Why the node was flagged (e.g. `"straggler"`).
    pub cause: String,
}

impl ShuffleReport {
    /// An empty report for a cluster of `k` nodes (no transfers).
    pub fn empty(k: usize) -> Self {
        ShuffleReport {
            makespan: 0.0,
            network_bytes: 0,
            local_bytes: 0,
            sent_bytes: vec![0; k],
            recv_bytes: vec![0; k],
            network_transfers: 0,
            retries: 0,
            reroutes: 0,
            recovery_bytes: 0,
            checksum_failures: 0,
            dropped_transfers: 0,
            timeouts: 0,
            failed_nodes: Vec::new(),
            reassigned: Vec::new(),
            degraded: false,
            replans: 0,
            replanned_bytes: 0,
            replan_events: Vec::new(),
        }
    }
}

/// A transfer in the scheduler: `src` is where it is sourced *now*
/// (recovery may move it to a replica), `orig_src` the node whose slice
/// data it carries (the key into `RecoveryOptions::alt_sources`).
#[derive(Debug, Clone, Copy)]
struct Pend {
    src: usize,
    orig_src: usize,
    dst: usize,
    bytes: u64,
    attempts: u32,
}

#[derive(Debug, PartialEq)]
struct Completion {
    finish: f64,
    sender: usize,
    id: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on finish time (BinaryHeap is a max-heap): reverse.
        // Sender uniqueness (one in-flight transfer per sender) makes
        // the id tiebreak unreachable; it is kept for total-order
        // hygiene.
        other
            .finish
            .total_cmp(&self.finish)
            .then_with(|| other.sender.cmp(&self.sender))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulate the data-alignment shuffle for `transfers` on a `k`-node
/// cluster under `network`, using the greedy write-lock schedule.
pub fn simulate_shuffle(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
) -> Result<ShuffleReport> {
    simulate_shuffle_with_faults(
        k,
        network,
        transfers,
        &FaultPlan::none(),
        &RecoveryOptions::none(k),
    )
}

/// Simulate the shuffle under an injected [`FaultPlan`], recovering via
/// `recovery` (replica alternates per node). See the module docs for
/// the full failure/recovery protocol.
pub fn simulate_shuffle_with_faults(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
    faults: &FaultPlan,
    recovery: &RecoveryOptions,
) -> Result<ShuffleReport> {
    simulate_shuffle_guarded(
        k,
        network,
        transfers,
        faults,
        recovery,
        &ReplanPolicy::disabled(),
        &QueryContext::unbounded(),
    )
}

/// The full-control entry point: [`simulate_shuffle_with_faults`] plus
/// a query-lifecycle guard and mid-shuffle straggler re-planning.
///
/// `ctx` is polled once per simulation event (and advanced by the
/// event's virtual-time delta when it runs on a virtual clock), so a
/// cancellation or deadline expiry surfaces as
/// [`ClusterError::Interrupted`] at the next event boundary — at a
/// deterministic virtual instant, independent of executor threads.
///
/// When `replan.is_enabled()`, the simulation also pauses at barriers
/// every `replan.check_interval` virtual seconds, estimates per-node
/// per-byte wire time from its own delivered-traffic accounting (plus
/// an elapsed-time lower bound for in-flight transfers, so a stalled
/// node is caught even before it delivers anything), and drains the
/// worst node exceeding `replan.slowdown_factor` × the cluster median
/// onto a substitute via the crash-recovery machinery — without marking
/// the node dead. The substitution lands in `ShuffleReport::reassigned`
/// (re-homing join units exactly like a crash) and is itemized in
/// `ShuffleReport::replan_events`.
///
/// With `replan` disabled and an unbounded `ctx`, reports are
/// bit-identical to [`simulate_shuffle_with_faults`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_shuffle_guarded(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
    faults: &FaultPlan,
    recovery: &RecoveryOptions,
    replan: &ReplanPolicy,
    ctx: &QueryContext,
) -> Result<ShuffleReport> {
    let mut sim = Sim::new(k, network, faults, recovery, replan, ctx, transfers)?;
    sim.run()?;
    Ok(sim.report)
}

/// [`simulate_shuffle_guarded`], recording the outcome onto `span`
/// exactly like [`simulate_shuffle_with_faults_traced`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_shuffle_guarded_traced(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
    faults: &FaultPlan,
    recovery: &RecoveryOptions,
    replan: &ReplanPolicy,
    ctx: &QueryContext,
    span: &sj_telemetry::SpanGuard,
) -> Result<ShuffleReport> {
    let report = simulate_shuffle_guarded(k, network, transfers, faults, recovery, replan, ctx)?;
    if span.enabled() {
        record_shuffle_report(&report, faults, span);
    }
    Ok(report)
}

/// [`simulate_shuffle_with_faults`], recording the outcome onto `span`
/// (a `shuffle` telemetry span). The simulation itself is untouched —
/// recording happens once, after the event loop — so results are
/// bit-identical to the untraced call. Per-node traffic, crashes, and
/// destination reassignments become child spans; scalar totals become
/// fields. The span tree is the single source of truth the legacy
/// [`ShuffleReport`] view is rebuilt from, so every field is typed
/// (`u64`/`f64`) and recorded exactly.
pub fn simulate_shuffle_with_faults_traced(
    k: usize,
    network: &NetworkModel,
    transfers: &[Transfer],
    faults: &FaultPlan,
    recovery: &RecoveryOptions,
    span: &sj_telemetry::SpanGuard,
) -> Result<ShuffleReport> {
    let report = simulate_shuffle_with_faults(k, network, transfers, faults, recovery)?;
    if span.enabled() {
        record_shuffle_report(&report, faults, span);
    }
    Ok(report)
}

/// Write one [`ShuffleReport`] onto a `shuffle` span.
fn record_shuffle_report(
    report: &ShuffleReport,
    faults: &FaultPlan,
    span: &sj_telemetry::SpanGuard,
) {
    span.field("makespan_seconds", report.makespan);
    span.field("network_bytes", report.network_bytes);
    span.field("local_bytes", report.local_bytes);
    span.field("network_transfers", report.network_transfers);
    span.field("retries", report.retries);
    span.field("reroutes", report.reroutes);
    span.field("recovery_bytes", report.recovery_bytes);
    span.field("checksum_failures", report.checksum_failures);
    span.field("dropped_transfers", report.dropped_transfers);
    span.field("timeouts", report.timeouts);
    span.field("degraded", report.degraded);
    span.field("injected", !faults.is_none());
    span.field("replans", report.replans);
    span.field("replanned_bytes", report.replanned_bytes);
    for (node, (&sent, &recv)) in report.sent_bytes.iter().zip(&report.recv_bytes).enumerate() {
        let n = span.child("node");
        n.field("node", node);
        n.field("sent_bytes", sent);
        n.field("recv_bytes", recv);
    }
    for &node in &report.failed_nodes {
        let c = span.child("crash");
        c.field("node", node);
    }
    for &(from, to) in &report.reassigned {
        let r = span.child("reassign");
        r.field("from", from);
        r.field("to", to);
    }
    for ev in &report.replan_events {
        let r = span.child("replan");
        r.field("at_seconds", ev.at_seconds);
        r.field("from", ev.node);
        r.field("to", ev.substitute);
        r.field("moved_bytes", ev.moved_bytes);
        r.field("moved_slices", ev.moved_slices);
        r.field("cause", ev.cause.as_str());
    }
}

struct Sim<'a> {
    k: usize,
    network: &'a NetworkModel,
    faults: &'a FaultPlan,
    recovery: &'a RecoveryOptions,
    replan: &'a ReplanPolicy,
    ctx: &'a QueryContext,
    rng: Rng64,
    /// Per-sender queues of pending transfers; the *back* of each Vec is
    /// the logical front (dispatch scans with `rposition`).
    pending: Vec<Vec<Pend>>,
    /// Per-destination log of delivered transfers (includes local data),
    /// consulted when a destination dies and its inputs must be rebuilt.
    landed: Vec<Vec<Pend>>,
    locked: Vec<bool>,
    busy: Vec<bool>,
    dead: Vec<bool>,
    events: BinaryHeap<Completion>,
    /// In-flight slots: the transfer, its timed-out flag, and the
    /// virtual time its current attempt started (progress-monitor
    /// input for the straggler detector).
    inflight: Vec<Option<(Pend, bool, f64)>>,
    cancelled: Vec<bool>,
    crashes: Vec<NodeCrash>,
    next_crash: usize,
    now: f64,
    report: ShuffleReport,
    /// Scratch for [`Sim::pick_substitute`]'s per-node load tallies,
    /// reused across substitute decisions instead of cloning
    /// `recv_bytes` each time.
    load_scratch: Vec<u64>,
    /// Per-node best (minimum) observed per-byte wire time over
    /// delivered attempts, attributed to both endpoints. The *minimum*
    /// is what makes the signal robust: a transfer's wire time reflects
    /// the slower endpoint, so a fast node partnered with a straggler
    /// still shows its true speed on its other transfers — only a node
    /// whose every transfer is slow looks slow. `f64::INFINITY` until
    /// the node's first delivery.
    best_per_byte: Vec<f64>,
    /// Virtual time of the next re-plan barrier.
    next_barrier: f64,
    /// Re-plan actions taken so far (bounded by `replan.max_replans`).
    replans_done: u32,
}

impl<'a> Sim<'a> {
    fn new(
        k: usize,
        network: &'a NetworkModel,
        faults: &'a FaultPlan,
        recovery: &'a RecoveryOptions,
        replan: &'a ReplanPolicy,
        ctx: &'a QueryContext,
        transfers: &[Transfer],
    ) -> Result<Self> {
        let mut report = ShuffleReport::empty(k);
        let mut pending: Vec<Vec<Pend>> = vec![Vec::new(); k];
        let mut landed: Vec<Vec<Pend>> = vec![Vec::new(); k];
        for t in transfers {
            if t.src >= k {
                return Err(ClusterError::NoSuchNode(t.src));
            }
            if t.dst >= k {
                return Err(ClusterError::NoSuchNode(t.dst));
            }
            let p = Pend {
                src: t.src,
                orig_src: t.src,
                dst: t.dst,
                bytes: t.bytes,
                attempts: 0,
            };
            if t.src == t.dst {
                report.local_bytes += t.bytes;
                // Local data still dies with its node: remember it so a
                // crash can rebuild it on the substitute from replicas.
                landed[t.dst].push(p);
                continue;
            }
            report.network_bytes += t.bytes;
            report.network_transfers += 1;
            pending[t.src].push(p);
        }
        // Queues are drained front-to-back; reverse so pop-from-back
        // walks the original order.
        for q in &mut pending {
            q.reverse();
        }
        for c in &faults.crashes {
            if c.node >= k {
                return Err(ClusterError::NoSuchNode(c.node));
            }
        }
        Ok(Sim {
            k,
            network,
            faults,
            recovery,
            replan,
            ctx,
            rng: faults.rng(),
            pending,
            landed,
            locked: vec![false; k],
            busy: vec![false; k],
            dead: vec![false; k],
            events: BinaryHeap::new(),
            inflight: Vec::new(),
            cancelled: Vec::new(),
            crashes: faults.sorted_crashes(),
            next_crash: 0,
            now: 0.0,
            report,
            load_scratch: Vec::with_capacity(k),
            best_per_byte: vec![f64::INFINITY; k],
            next_barrier: replan.check_interval,
            replans_done: 0,
        })
    }

    /// Advance virtual time to `t`, mirroring the delta onto the query
    /// context's virtual clock (a no-op under the real clock) so
    /// deadlines measured in simulated seconds fire deterministically.
    fn advance_now(&mut self, t: f64) {
        if t > self.now {
            self.ctx.advance_virtual(t - self.now);
            self.now = t;
        }
    }

    /// Expected wire time of one attempt, including straggler slowdown.
    fn effective_time(&self, p: &Pend) -> f64 {
        self.network.transfer_time(p.bytes)
            * self.faults.slowdown(p.src).max(self.faults.slowdown(p.dst))
    }

    /// Try to start one transfer for `sender`: the first pending slice
    /// whose destination lock is free (the greedy "try the next slice"
    /// rule from §3.4).
    fn try_dispatch(&mut self, sender: usize) {
        if self.busy[sender] || self.dead[sender] {
            return;
        }
        let dead = &self.dead;
        let locked = &self.locked;
        let queue = &mut self.pending[sender];
        // Scan from the back (front of the logical queue).
        let Some(idx) = queue.iter().rposition(|t| !locked[t.dst] && !dead[t.dst]) else {
            return;
        };
        let p = queue.remove(idx);
        self.locked[p.dst] = true;
        self.busy[sender] = true;
        self.report.sent_bytes[p.src] += p.bytes;
        let eff = self.effective_time(&p);
        // An attempt that will blow the timeout is aborted early —
        // unless the retry budget is spent, in which case the slow path
        // is accepted (degrade gracefully rather than spin forever).
        let timed_out = match self.faults.transfer_timeout {
            Some(limit) => eff > limit && p.attempts < self.faults.max_retries,
            None => false,
        };
        let finish = if timed_out {
            self.now + self.faults.transfer_timeout.unwrap_or(eff)
        } else {
            self.now + eff
        };
        let id = self.inflight.len();
        self.inflight.push(Some((p, timed_out, self.now)));
        self.cancelled.push(false);
        self.events.push(Completion { finish, sender, id });
    }

    fn dispatch_all(&mut self) {
        for s in 0..self.k {
            self.try_dispatch(s);
        }
    }

    /// Re-home a transfer whose current source died: the first live
    /// replica of the node whose slice data it carries takes over.
    fn resource(&self, p: Pend) -> Result<Pend> {
        let alt = self
            .recovery
            .live_alternate(p.orig_src, &self.dead)
            .ok_or_else(|| {
                ClusterError::Unrecoverable(format!(
                    "node {} died with no live replica for node {}'s slices",
                    p.src, p.orig_src
                ))
            })?;
        Ok(Pend { src: alt, ..p })
    }

    /// The coordinator's substitute for a dead (or drained) destination:
    /// the live node with the least receive load (landed + outstanding),
    /// lowest id on ties; `exclude` bars the straggler being drained
    /// from substituting for itself.
    fn pick_substitute(&mut self, exclude: Option<usize>) -> Result<usize> {
        let load = &mut self.load_scratch;
        load.clear();
        load.extend_from_slice(&self.report.recv_bytes);
        for q in &self.pending {
            for p in q {
                load[p.dst] += p.bytes;
            }
        }
        for (id, slot) in self.inflight.iter().enumerate() {
            if let Some((p, _, _)) = slot {
                if !self.cancelled[id] {
                    load[p.dst] += p.bytes;
                }
            }
        }
        (0..self.k)
            .filter(|&j| !self.dead[j] && Some(j) != exclude)
            .min_by_key(|&j| (load[j], j))
            .ok_or_else(|| {
                ClusterError::Unrecoverable("no live node can substitute for the lost one".into())
            })
    }

    /// Abort every in-flight transfer touching `node`, freeing its
    /// locks and counting the wasted attempts as recovery traffic.
    /// Shared by crash recovery and straggler draining.
    fn abort_inflight_touching(&mut self, node: usize) -> Vec<Pend> {
        let mut orphans: Vec<Pend> = Vec::new();
        for id in 0..self.inflight.len() {
            if self.cancelled[id] {
                continue;
            }
            let Some((p, _, _)) = self.inflight[id] else {
                continue;
            };
            if p.src != node && p.dst != node {
                continue;
            }
            self.cancelled[id] = true;
            self.inflight[id] = None;
            self.locked[p.dst] = false;
            self.busy[p.src] = false;
            self.report.recovery_bytes += p.bytes;
            orphans.push(p);
        }
        orphans
    }

    /// Kill node `d` at the current virtual time and re-plan: re-source
    /// its unsent slices, re-target everything headed to it, and rebuild
    /// what it had already received (or held locally) on a substitute.
    fn process_crash(&mut self, d: usize) -> Result<()> {
        if self.dead[d] {
            return Ok(());
        }
        self.dead[d] = true;
        self.report.degraded = true;
        self.report.failed_nodes.push(d);

        // Abort in-flight transfers touching the dead node.
        let orphans = self.abort_inflight_touching(d);

        // Re-source the dead node's unsent slices from replicas. They
        // join the front of the replica's queue (recovery first).
        let unsent: Vec<Pend> = std::mem::take(&mut self.pending[d]);
        for p in unsent.into_iter().rev() {
            let r = self.resource(p)?;
            self.report.reroutes += 1;
            self.pending[r.src].push(r);
        }
        for p in orphans.iter().filter(|p| p.src == d && p.dst != d) {
            let r = self.resource(*p)?;
            self.report.reroutes += 1;
            self.pending[r.src].push(r);
        }

        // The coordinator re-plans the remaining schedule: everything
        // destined for the dead node goes to a substitute instead.
        let sub = self.pick_substitute(None)?;
        self.report.reassigned.push((d, sub));
        for q in &mut self.pending {
            for p in q.iter_mut() {
                if p.dst == d {
                    p.dst = sub;
                    self.report.reroutes += 1;
                }
            }
        }
        let mut to_sub: Vec<Pend> = Vec::new();
        for p in orphans.into_iter().filter(|p| p.dst == d) {
            to_sub.push(Pend { dst: sub, ..p });
        }
        // Slices that had already landed on the dead node (and its local
        // data) are rebuilt on the substitute from live holders.
        let lost: Vec<Pend> = std::mem::take(&mut self.landed[d]);
        for p in lost {
            to_sub.push(Pend {
                dst: sub,
                attempts: 0,
                ..p
            });
        }
        for p in to_sub.into_iter() {
            // A dead source (the dead node itself for an orphaned
            // self-transfer, or an earlier casualty for landed data)
            // must be re-homed to a live replica before re-queueing —
            // a dead sender's queue never dispatches.
            let p = if self.dead[p.src] {
                self.resource(p)?
            } else {
                p
            };
            self.report.reroutes += 1;
            if p.src == p.dst {
                // The substitute already holds a copy: an instant local
                // recovery, no wire cost.
                self.report.local_bytes += p.bytes;
                self.report.makespan = self.report.makespan.max(self.now);
                self.landed[p.dst].push(p);
            } else {
                self.report.recovery_bytes += p.bytes;
                self.report.network_bytes += p.bytes;
                self.report.network_transfers += 1;
                self.pending[p.src].push(p);
            }
        }
        self.dispatch_all();
        Ok(())
    }

    /// True when `node` still has traffic a re-plan could move: unsent
    /// slices of its own, pending or in-flight transfers headed to it,
    /// or landed inputs a re-homed join unit would need forwarded.
    fn node_has_remaining(&self, node: usize) -> bool {
        if !self.pending[node].is_empty() {
            return true;
        }
        if self.pending.iter().any(|q| q.iter().any(|p| p.dst == node)) {
            return true;
        }
        self.inflight.iter().enumerate().any(|(id, slot)| {
            !self.cancelled[id] && matches!(slot, Some((p, _, _)) if p.src == node || p.dst == node)
        })
    }

    /// One deterministic re-plan barrier: estimate per-node per-byte
    /// wire time from the simulation's own accounting and drain the
    /// worst straggler onto a substitute. Pure function of simulation
    /// state — no wall clocks, no RNG — so every run replays it
    /// bit-identically.
    fn maybe_replan(&mut self) -> Result<()> {
        if self.replans_done >= self.replan.max_replans {
            return Ok(());
        }
        // Measured per-byte time per live node: the best delivered
        // sample where one exists, else an elapsed-time lower bound
        // from the node's in-flight attempts (a badly stalled node may
        // have delivered nothing by the first barrier — its in-flight
        // elapsed time is evidence all the same).
        let mut per_byte: Vec<Option<f64>> = vec![None; self.k];
        for (j, slot_out) in per_byte.iter_mut().enumerate() {
            if self.dead[j] {
                continue;
            }
            if self.best_per_byte[j].is_finite() {
                *slot_out = Some(self.best_per_byte[j]);
                continue;
            }
            let mut bound: Option<f64> = None;
            for (id, slot) in self.inflight.iter().enumerate() {
                if self.cancelled[id] {
                    continue;
                }
                let Some((p, _, started)) = slot else {
                    continue;
                };
                if (p.src == j || p.dst == j) && p.bytes > 0 {
                    let lower = (self.now - started) / p.bytes as f64;
                    bound = Some(bound.map_or(lower, |b: f64| b.max(lower)));
                }
            }
            *slot_out = bound.filter(|&b| b > 0.0);
        }
        let mut known: Vec<f64> = per_byte.iter().flatten().copied().collect();
        if known.len() < 2 {
            return Ok(());
        }
        known.sort_by(f64::total_cmp);
        // Lower-middle median: with half the cluster entangled with a
        // straggler (its counterparties inherit its wire times), the
        // upper middle would drift toward the straggler's rate and mask
        // it.
        let median = known[(known.len() - 1) / 2];
        if median <= 0.0 {
            return Ok(());
        }
        let mut worst: Option<(usize, f64)> = None;
        for (j, rate) in per_byte.iter().enumerate() {
            let Some(rate) = rate else { continue };
            if *rate > self.replan.slowdown_factor * median && self.node_has_remaining(j) {
                let factor = *rate / median;
                if worst.is_none_or(|(_, w)| factor > w) {
                    worst = Some((j, factor));
                }
            }
        }
        let Some((slow, factor)) = worst else {
            return Ok(());
        };
        self.replan_node(slow, factor)
    }

    /// Drain the flagged straggler: abort its in-flight transfers,
    /// re-source its unsent slices onto faster live replicas where one
    /// exists, re-target its remaining inbound traffic to a substitute,
    /// and forward its landed inputs there — the crash-recovery drain,
    /// minus the death. The `(straggler, substitute)` pair lands in
    /// `reassigned` so the executor re-homes join units exactly as it
    /// would after a crash.
    fn replan_node(&mut self, slow: usize, factor: f64) -> Result<()> {
        let sub = self.pick_substitute(Some(slow))?;
        let mut moved_bytes: u64 = 0;
        let mut moved_slices: u64 = 0;

        let orphans = self.abort_inflight_touching(slow);

        // Outbound: the straggler is alive, so its slices only move when
        // a strictly faster live replica can serve them.
        let unsent: Vec<Pend> = std::mem::take(&mut self.pending[slow]);
        let mut keep: Vec<Pend> = Vec::with_capacity(unsent.len());
        for p in unsent {
            match self.recovery.live_alternate(p.orig_src, &self.dead) {
                Some(alt)
                    if alt != slow && self.faults.slowdown(alt) < self.faults.slowdown(p.src) =>
                {
                    self.report.reroutes += 1;
                    moved_bytes += p.bytes;
                    moved_slices += 1;
                    self.pending[alt].push(Pend { src: alt, ..p });
                }
                _ => keep.push(p),
            }
        }
        self.pending[slow] = keep;

        // Inbound: everything still headed to the straggler goes to the
        // substitute instead.
        for q in &mut self.pending {
            for p in q.iter_mut() {
                if p.dst == slow {
                    p.dst = sub;
                    self.report.reroutes += 1;
                    moved_bytes += p.bytes;
                    moved_slices += 1;
                }
            }
        }
        let mut to_sub: Vec<Pend> = Vec::new();
        for p in orphans {
            if p.dst == slow {
                to_sub.push(Pend { dst: sub, ..p });
            } else {
                // Aborted outbound attempt: prefer a faster live
                // replica, else the straggler re-sends it itself.
                let mut p = p;
                if let Some(alt) = self.recovery.live_alternate(p.orig_src, &self.dead) {
                    if alt != slow && self.faults.slowdown(alt) < self.faults.slowdown(p.src) {
                        self.report.reroutes += 1;
                        moved_bytes += p.bytes;
                        moved_slices += 1;
                        p.src = alt;
                    }
                }
                self.pending[p.src].push(p);
            }
        }
        // Landed inputs (and the straggler's local data) are forwarded
        // to the substitute so the re-homed join units find their inputs
        // there; replicas of the original source serve the copy when
        // they are faster than the straggler.
        let lost: Vec<Pend> = std::mem::take(&mut self.landed[slow]);
        for p in lost {
            to_sub.push(Pend {
                dst: sub,
                attempts: 0,
                ..p
            });
        }
        for p in to_sub.into_iter() {
            let mut p = p;
            if self.dead[p.src] {
                // An earlier casualty held this copy; a live replica
                // must serve it (exactly the crash-recovery rule).
                p = self.resource(p)?;
            } else if let Some(alt) = self.recovery.live_alternate(p.orig_src, &self.dead) {
                if self.faults.slowdown(alt) < self.faults.slowdown(p.src) {
                    p.src = alt;
                }
            }
            self.report.reroutes += 1;
            moved_bytes += p.bytes;
            moved_slices += 1;
            if p.src == p.dst {
                // The substitute already holds a copy: an instant local
                // hand-off, no wire cost.
                self.report.local_bytes += p.bytes;
                self.report.makespan = self.report.makespan.max(self.now);
                self.landed[p.dst].push(p);
            } else {
                self.report.recovery_bytes += p.bytes;
                self.report.network_bytes += p.bytes;
                self.report.network_transfers += 1;
                self.pending[p.src].push(p);
            }
        }

        self.replans_done += 1;
        self.report.replans += 1;
        self.report.replanned_bytes += moved_bytes;
        self.report.reassigned.push((slow, sub));
        self.report.replan_events.push(ReplanEvent {
            at_seconds: self.now,
            node: slow,
            substitute: sub,
            moved_bytes,
            moved_slices,
            cause: format!("straggler x{factor:.2}"),
        });
        self.dispatch_all();
        Ok(())
    }

    /// Handle one completion event: a successful landing, a detected
    /// drop/corruption (retransmit with backoff, locks held), or a
    /// timeout (abort, maybe re-source from a faster replica).
    fn process_completion(&mut self, done: Completion) -> Result<()> {
        self.advance_now(done.finish);
        let (mut p, timed_out, started) = self.inflight[done.id]
            .take()
            .expect("completion for vacated transfer slot");

        if timed_out {
            self.report.timeouts += 1;
            self.report.retries += 1;
            self.report.recovery_bytes += p.bytes;
            self.locked[p.dst] = false;
            self.busy[p.src] = false;
            p.attempts += 1;
            // Prefer a strictly faster live replica; otherwise retry in
            // place (the final attempt runs to completion regardless).
            if let Some(alt) = self.recovery.live_alternate(p.orig_src, &self.dead) {
                if self.faults.slowdown(alt) < self.faults.slowdown(p.src) {
                    self.report.reroutes += 1;
                    p.src = alt;
                }
            }
            self.pending[p.src].push(p);
            self.try_dispatch(done.sender);
            self.dispatch_all();
            return Ok(());
        }

        // The receiver verifies the payload checksum; a dropped transfer
        // never arrives, a corrupted one arrives and fails the check.
        let failed = if self.faults.drop_rate > 0.0 && self.rng.gen_f64() < self.faults.drop_rate {
            self.report.dropped_transfers += 1;
            true
        } else if self.faults.corrupt_rate > 0.0 && self.rng.gen_f64() < self.faults.corrupt_rate {
            self.report.checksum_failures += 1;
            true
        } else {
            false
        };

        if failed {
            if p.attempts >= self.faults.max_retries {
                return Err(ClusterError::TransferFailed {
                    src: p.src,
                    dst: p.dst,
                    attempts: p.attempts + 1,
                });
            }
            p.attempts += 1;
            self.report.retries += 1;
            self.report.recovery_bytes += p.bytes;
            self.report.sent_bytes[p.src] += p.bytes;
            // Retransmit immediately, locks held, after exponential
            // backoff; retries run to completion (no timeout re-check).
            let finish = self.now + self.faults.backoff(p.attempts) + self.effective_time(&p);
            let id = self.inflight.len();
            self.inflight.push(Some((p, false, self.now)));
            self.cancelled.push(false);
            self.events.push(Completion {
                finish,
                sender: done.sender,
                id,
            });
            return Ok(());
        }

        // Delivered.
        self.locked[p.dst] = false;
        self.busy[p.src] = false;
        self.report.recv_bytes[p.dst] += p.bytes;
        self.report.makespan = self.report.makespan.max(self.now);
        if self.replan.is_enabled() && p.bytes > 0 {
            // Progress-monitor accounting: this attempt's per-byte wire
            // time is a speed sample for both endpoints.
            let rate = (self.now - started) / p.bytes as f64;
            self.best_per_byte[p.src] = self.best_per_byte[p.src].min(rate);
            self.best_per_byte[p.dst] = self.best_per_byte[p.dst].min(rate);
        }
        self.landed[p.dst].push(p);
        // The freed lock (and freed sender) may unblock any idle sender;
        // poll them in node order, completing sender first for fairness.
        self.try_dispatch(done.sender);
        self.dispatch_all();
        Ok(())
    }

    fn run(&mut self) -> Result<()> {
        self.dispatch_all();
        loop {
            // The per-transfer lifecycle checkpoint: cancellation or
            // deadline expiry unwinds here, between events, with no
            // locks held and nothing half-applied.
            self.ctx.check().map_err(ClusterError::Interrupted)?;
            // Clear tombstoned events off the top of the heap.
            while let Some(top) = self.events.peek() {
                if self.cancelled[top.id] {
                    self.events.pop();
                } else {
                    break;
                }
            }
            let next_finish = self.events.peek().map(|c| c.finish);
            let crash_due = self.next_crash < self.crashes.len();
            // A re-plan barrier fires strictly before the next
            // completion and no later than the next crash; barriers
            // only matter while transfers are still in flight and the
            // re-plan budget lasts.
            if self.replan.is_enabled() && self.replans_done < self.replan.max_replans {
                if let Some(f) = next_finish {
                    let b = self.next_barrier;
                    let beats_crash = !crash_due || b < self.crashes[self.next_crash].at_seconds;
                    if b < f && beats_crash {
                        self.advance_now(b);
                        self.next_barrier += self.replan.check_interval;
                        self.maybe_replan()?;
                        continue;
                    }
                }
            }
            match (next_finish, crash_due) {
                (None, false) => break,
                // A crash fires before the next completion (ties break
                // toward the crash: the failure preempts the landing).
                (Some(f), true) if self.crashes[self.next_crash].at_seconds <= f => {
                    let c = self.crashes[self.next_crash];
                    self.next_crash += 1;
                    self.advance_now(c.at_seconds);
                    self.process_crash(c.node)?;
                }
                (Some(_), _) => {
                    let done = self.events.pop().expect("peeked event vanished");
                    self.process_completion(done)?;
                }
                (None, true) => {
                    // Crash with the network idle — possibly after the
                    // last transfer landed. Still re-plans (re-homes the
                    // dead node's data) and marks the run degraded.
                    let c = self.crashes[self.next_crash];
                    self.next_crash += 1;
                    self.advance_now(c.at_seconds);
                    self.process_crash(c.node)?;
                }
            }
        }
        let stuck: Vec<usize> = (0..self.k)
            .filter(|&s| !self.pending[s].is_empty())
            .collect();
        if !stuck.is_empty() {
            return Err(ClusterError::Simulation(format!(
                "shuffle ended with undispatched transfers on nodes {stuck:?}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        // 1 byte/sec, no latency: transfer time == byte count.
        NetworkModel {
            bandwidth_bytes_per_sec: 1.0,
            latency_sec: 0.0,
        }
    }

    #[test]
    fn empty_shuffle_is_free() {
        let r = simulate_shuffle(4, &net(), &[]).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.network_bytes, 0);
    }

    #[test]
    fn local_transfers_cost_nothing() {
        let r = simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 0,
                bytes: 1_000,
            }],
        )
        .unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.local_bytes, 1_000);
        assert_eq!(r.network_transfers, 0);
    }

    #[test]
    fn single_transfer_time() {
        let r = simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 1,
                bytes: 50,
            }],
        )
        .unwrap();
        assert!((r.makespan - 50.0).abs() < 1e-9);
        assert_eq!(r.sent_bytes, vec![50, 0]);
        assert_eq!(r.recv_bytes, vec![0, 50]);
    }

    #[test]
    fn parallel_disjoint_transfers_overlap() {
        // 0→1 and 2→3 can run simultaneously.
        let r = simulate_shuffle(
            4,
            &net(),
            &[
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 100,
                },
                Transfer {
                    src: 2,
                    dst: 3,
                    bytes: 100,
                },
            ],
        )
        .unwrap();
        assert!((r.makespan - 100.0).abs() < 1e-9);
    }

    #[test]
    fn receiver_lock_serializes_converging_transfers() {
        // Two senders target node 2: second must wait for the lock.
        let r = simulate_shuffle(
            3,
            &net(),
            &[
                Transfer {
                    src: 0,
                    dst: 2,
                    bytes: 100,
                },
                Transfer {
                    src: 1,
                    dst: 2,
                    bytes: 100,
                },
            ],
        )
        .unwrap();
        assert!((r.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn sender_serializes_its_own_transfers() {
        // One sender, two receivers: sends go one at a time.
        let r = simulate_shuffle(
            3,
            &net(),
            &[
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 100,
                },
                Transfer {
                    src: 0,
                    dst: 2,
                    bytes: 100,
                },
            ],
        )
        .unwrap();
        assert!((r.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_sender_skips_to_free_destination() {
        // Sender 0 queues [→2 (long-blocked? no) ...] scenario:
        // sender 1 grabs node 2 first is not deterministic; instead test
        // that total work completes and makespan is within greedy bounds.
        let transfers = [
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 1,
                bytes: 50,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 100,
            },
        ];
        let r = simulate_shuffle(3, &net(), &transfers).unwrap();
        // Node 2 receives 200 bytes serially => makespan >= 200.
        assert!(r.makespan >= 200.0 - 1e-9);
        // Greedy overlap should keep it well under fully-serial (250).
        assert!(r.makespan <= 250.0 + 1e-9);
        assert_eq!(r.network_bytes, 250);
    }

    #[test]
    fn full_duplex_send_and_receive_overlap() {
        // 0→1 and 1→0 simultaneously: both done at t=100.
        let r = simulate_shuffle(
            2,
            &net(),
            &[
                Transfer {
                    src: 0,
                    dst: 1,
                    bytes: 100,
                },
                Transfer {
                    src: 1,
                    dst: 0,
                    bytes: 100,
                },
            ],
        )
        .unwrap();
        assert!((r.makespan - 100.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_one_congestion_vs_all_to_all() {
        // The paper's §2.3.2 observation: transmitting everything to one
        // host creates congestion; spreading to all hosts is faster even
        // when more bytes move.
        let k = 4;
        // All-to-one: nodes 1..3 each send 300 bytes to node 0.
        let to_one: Vec<Transfer> = (1..k)
            .map(|s| Transfer {
                src: s,
                dst: 0,
                bytes: 300,
            })
            .collect();
        let r1 = simulate_shuffle(k, &net(), &to_one).unwrap();
        // All-to-all: every node sends 100 bytes to every other node
        // (more total bytes: 12 * 100 = 1200 > 900).
        let mut all: Vec<Transfer> = Vec::new();
        for s in 0..k {
            for d in 0..k {
                if s != d {
                    all.push(Transfer {
                        src: s,
                        dst: d,
                        bytes: 100,
                    });
                }
            }
        }
        let r2 = simulate_shuffle(k, &net(), &all).unwrap();
        assert!(r2.network_bytes > r1.network_bytes);
        assert!(
            r2.makespan < r1.makespan,
            "all-to-all ({}) should beat all-to-one ({})",
            r2.makespan,
            r1.makespan
        );
    }

    #[test]
    fn invalid_node_ids_rejected() {
        assert!(simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 5,
                bytes: 1
            }]
        )
        .is_err());
        assert!(simulate_shuffle(
            2,
            &net(),
            &[Transfer {
                src: 9,
                dst: 0,
                bytes: 1
            }]
        )
        .is_err());
    }

    #[test]
    fn makespan_at_least_max_node_load() {
        // Analytical lower bound from the paper's cost model: the busiest
        // link bounds the makespan.
        let transfers = [
            Transfer {
                src: 0,
                dst: 1,
                bytes: 500,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 300,
            },
            Transfer {
                src: 3,
                dst: 1,
                bytes: 400,
            },
            Transfer {
                src: 2,
                dst: 3,
                bytes: 100,
            },
        ];
        let r = simulate_shuffle(4, &net(), &transfers).unwrap();
        let max_send = *r.sent_bytes.iter().max().unwrap() as f64;
        let max_recv = *r.recv_bytes.iter().max().unwrap() as f64;
        assert!(r.makespan + 1e-9 >= max_send.max(max_recv));
    }

    // ---- Scheduler edge cases. -----------------------------------------

    #[test]
    fn zero_byte_transfers_complete_instantly() {
        let transfers = [
            Transfer {
                src: 0,
                dst: 1,
                bytes: 0,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 0,
            },
            Transfer {
                src: 2,
                dst: 0,
                bytes: 0,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 0,
            },
        ];
        let r = simulate_shuffle(3, &net(), &transfers).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.network_bytes, 0);
        assert_eq!(r.network_transfers, 4);
    }

    #[test]
    fn single_node_cluster_is_all_local() {
        let transfers = [
            Transfer {
                src: 0,
                dst: 0,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 0,
                bytes: 200,
            },
        ];
        let r = simulate_shuffle(1, &net(), &transfers).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.local_bytes, 300);
        assert_eq!(r.network_transfers, 0);
        assert_eq!(r.sent_bytes, vec![0]);
    }

    #[test]
    fn all_senders_blocked_on_one_receiver_make_progress() {
        // Three senders, every slice headed to node 3: the write lock
        // admits one at a time, the rest poll. The schedule must drain
        // fully serialized, never deadlocked.
        let mut transfers = Vec::new();
        for s in 0..3 {
            for _ in 0..4 {
                transfers.push(Transfer {
                    src: s,
                    dst: 3,
                    bytes: 10,
                });
            }
        }
        let r = simulate_shuffle(4, &net(), &transfers).unwrap();
        assert!((r.makespan - 120.0).abs() < 1e-9);
        assert_eq!(r.recv_bytes[3], 120);
        assert_eq!(r.network_transfers, 12);
    }

    #[test]
    fn makespan_is_monotone_in_added_transfers() {
        // Adding a transfer to the workload never shrinks the makespan
        // under the greedy schedule (checked over growing prefixes of a
        // deterministic pseudo-random workload).
        let k = 4;
        let mut rng = Rng64::seed_from_u64(42);
        let transfers: Vec<Transfer> = (0..24)
            .map(|_| {
                let src = rng.gen_range(0..k);
                let mut dst = rng.gen_range(0..k);
                if dst == src {
                    dst = (dst + 1) % k;
                }
                Transfer {
                    src,
                    dst,
                    bytes: rng.gen_range(1u64..=500),
                }
            })
            .collect();
        let mut prev = 0.0;
        for len in 0..=transfers.len() {
            let r = simulate_shuffle(k, &net(), &transfers[..len]).unwrap();
            assert!(
                r.makespan + 1e-9 >= prev,
                "makespan shrank from {prev} to {} at prefix {len}",
                r.makespan
            );
            prev = r.makespan;
        }
    }

    // ---- Fault injection. ----------------------------------------------

    fn spread_transfers(k: usize, bytes: u64) -> Vec<Transfer> {
        let mut transfers = Vec::new();
        for s in 0..k {
            for d in 0..k {
                if s != d {
                    transfers.push(Transfer {
                        src: s,
                        dst: d,
                        bytes,
                    });
                }
            }
        }
        transfers
    }

    #[test]
    fn faultless_plan_is_bit_identical_to_plain_simulation() {
        // Zero-overhead guarantee: FaultPlan::none() takes the exact
        // fault-free arithmetic path.
        let transfers = spread_transfers(4, 137);
        let plain = simulate_shuffle(4, &net(), &transfers).unwrap();
        let faulty = simulate_shuffle_with_faults(
            4,
            &net(),
            &transfers,
            &FaultPlan::none(),
            &RecoveryOptions::chained(4, 2),
        )
        .unwrap();
        assert_eq!(plain, faulty);
        assert!(!faulty.degraded);
        assert_eq!(faulty.retries, 0);
        assert_eq!(faulty.reroutes, 0);
        assert_eq!(faulty.recovery_bytes, 0);
    }

    #[test]
    fn drop_rate_forces_retries_and_inflates_makespan() {
        let transfers = spread_transfers(3, 100);
        let clean = simulate_shuffle(3, &net(), &transfers).unwrap();
        let plan = FaultPlan::seeded(11).with_drop_rate(0.4);
        let r =
            simulate_shuffle_with_faults(3, &net(), &transfers, &plan, &RecoveryOptions::none(3))
                .unwrap();
        assert!(r.retries > 0, "40% drop over 6 transfers must retry");
        assert_eq!(r.retries, r.dropped_transfers);
        assert!(r.recovery_bytes >= 100 * r.retries);
        assert!(r.makespan > clean.makespan);
        assert!(!r.degraded, "drops alone do not degrade the cluster");
        // Every payload still arrives exactly once.
        assert_eq!(r.recv_bytes, clean.recv_bytes);
    }

    #[test]
    fn corruption_is_detected_and_retransmitted() {
        let transfers = spread_transfers(3, 100);
        let plan = FaultPlan::seeded(5).with_corrupt_rate(0.4);
        let r =
            simulate_shuffle_with_faults(3, &net(), &transfers, &plan, &RecoveryOptions::none(3))
                .unwrap();
        assert!(r.checksum_failures > 0);
        assert_eq!(r.retries, r.checksum_failures);
        assert_eq!(r.dropped_transfers, 0);
        assert_eq!(r.recv_bytes.iter().sum::<u64>(), 600);
    }

    #[test]
    fn retry_exhaustion_is_a_typed_error() {
        let plan = FaultPlan::seeded(3)
            .with_drop_rate(0.99)
            .with_max_retries(2);
        let err = simulate_shuffle_with_faults(
            2,
            &net(),
            &[Transfer {
                src: 0,
                dst: 1,
                bytes: 10,
            }],
            &plan,
            &RecoveryOptions::none(2),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                ClusterError::TransferFailed {
                    src: 0,
                    dst: 1,
                    attempts: 3
                }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn sender_crash_resources_from_replica() {
        // Node 0 has a long queue; it dies mid-shuffle and node 1 (its
        // chained replica) takes over the unsent slices.
        let transfers = [
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 3,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 3,
                bytes: 100,
            },
        ];
        let plan = FaultPlan::none().with_crash(0, 150.0);
        let r = simulate_shuffle_with_faults(
            4,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(4, 2),
        )
        .unwrap();
        assert!(r.degraded);
        assert_eq!(r.failed_nodes, vec![0]);
        assert!(r.reroutes > 0, "unsent slices must move to the replica");
        assert!(
            r.recovery_bytes > 0,
            "the aborted in-flight send is re-sent"
        );
        // All 400 bytes still land on nodes 2 and 3.
        assert_eq!(r.recv_bytes[2] + r.recv_bytes[3], 400);
        assert!(r.makespan > 200.0, "recovery costs time");
    }

    #[test]
    fn sender_crash_without_replica_is_unrecoverable() {
        let transfers = [
            Transfer {
                src: 0,
                dst: 1,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
        ];
        let plan = FaultPlan::none().with_crash(0, 50.0);
        let err =
            simulate_shuffle_with_faults(3, &net(), &transfers, &plan, &RecoveryOptions::none(3))
                .unwrap_err();
        assert!(matches!(err, ClusterError::Unrecoverable(_)), "{err}");
    }

    #[test]
    fn dead_destination_gets_a_substitute() {
        // Node 2 is the hot receiver; it dies halfway. Already-landed
        // slices are rebuilt on the substitute and the rest re-targeted.
        let transfers = [
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 1,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 0,
                dst: 2,
                bytes: 100,
            },
            Transfer {
                src: 2,
                dst: 2,
                bytes: 40,
            }, // local data dies too
        ];
        let plan = FaultPlan::none().with_crash(2, 150.0);
        let r = simulate_shuffle_with_faults(
            4,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(4, 2),
        )
        .unwrap();
        assert!(r.degraded);
        assert_eq!(r.reassigned.len(), 1);
        let (dead, sub) = r.reassigned[0];
        assert_eq!(dead, 2);
        assert_eq!(sub, 0, "least-loaded live node stands in");
        // Node 0 originally sent the lost slices, so as substitute it
        // rebuilds them locally at zero wire cost; only node 1's slice
        // (100) and node 2's local data (40, re-served by its replica
        // on node 3) cross the network.
        assert_eq!(r.recv_bytes[sub], 140);
        assert_eq!(r.local_bytes, 240, "40 original + 200 rebuilt in place");
        assert_eq!(
            r.recovery_bytes, 140,
            "aborted in-flight + replica re-serve"
        );
    }

    #[test]
    fn crash_after_last_transfer_still_degrades_and_reassigns() {
        let transfers = [Transfer {
            src: 0,
            dst: 1,
            bytes: 10,
        }];
        let plan = FaultPlan::none().with_crash(1, 1_000.0);
        let r = simulate_shuffle_with_faults(
            3,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(3, 2),
        )
        .unwrap();
        assert!(r.degraded);
        assert_eq!(r.failed_nodes, vec![1]);
        assert_eq!(r.reassigned.len(), 1);
        // The landed payload is rebuilt on the substitute.
        let (_, sub) = r.reassigned[0];
        assert!(r.recv_bytes[sub] > 0 || r.local_bytes > 0);
    }

    #[test]
    fn orphaned_self_transfer_on_dead_node_is_resourced() {
        // Two crashes in sequence: the first re-targets node 2's pending
        // transfer onto node 2 itself (substitute), making it an
        // in-flight self-send; the second kills node 2 mid-flight. The
        // orphan's source is the dead node, so it must be re-homed to a
        // replica (here node 1, which also *is* the substitute — an
        // instant local recovery). A regression guard: this used to
        // re-queue the orphan on the dead sender and deadlock the
        // simulation.
        let transfers = [
            Transfer {
                src: 2,
                dst: 1,
                bytes: 50,
            },
            Transfer {
                src: 2,
                dst: 0,
                bytes: 100,
            },
        ];
        let plan = FaultPlan::none().with_crash(0, 5.0).with_crash(2, 100.0);
        let r = simulate_shuffle_with_faults(
            3,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(3, 3),
        )
        .unwrap();
        assert!(r.degraded);
        assert_eq!(r.failed_nodes, vec![0, 2]);
        // Crash 1: node 2 is the least-loaded live node (node 1 already
        // has 50 inbound bytes), so the 100-byte transfer re-targets to
        // itself. Crash 2: node 1 is the only live node left; it holds
        // node 2's replica, so the rebuild is local.
        assert_eq!(r.reassigned, vec![(0, 2), (2, 1)]);
        assert_eq!(r.recv_bytes[1], 50);
        assert_eq!(r.local_bytes, 100);
    }

    #[test]
    fn straggler_scales_makespan() {
        let transfers = [Transfer {
            src: 0,
            dst: 1,
            bytes: 100,
        }];
        let plan = FaultPlan::none().with_straggler(0, 3.0);
        let r =
            simulate_shuffle_with_faults(2, &net(), &transfers, &plan, &RecoveryOptions::none(2))
                .unwrap();
        assert!((r.makespan - 300.0).abs() < 1e-9);
    }

    #[test]
    fn timeout_resources_transfer_from_faster_replica() {
        // Node 0's link is 10× slow; its data is mirrored on node 1.
        // With a 150s timeout the 1000s attempt aborts and node 1
        // re-serves the slice at full speed.
        let transfers = [Transfer {
            src: 0,
            dst: 2,
            bytes: 100,
        }];
        let plan = FaultPlan::none()
            .with_straggler(0, 10.0)
            .with_timeout(150.0);
        let r = simulate_shuffle_with_faults(
            3,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(3, 2),
        )
        .unwrap();
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.reroutes, 1);
        // 150 (aborted) + 100 (replica resend) — far under the 1000s
        // straggler path.
        assert!((r.makespan - 250.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.recv_bytes[2], 100);
    }

    #[test]
    fn timeout_without_replica_eventually_accepts_slow_path() {
        let transfers = [Transfer {
            src: 0,
            dst: 1,
            bytes: 100,
        }];
        let plan = FaultPlan::none()
            .with_straggler(0, 10.0)
            .with_timeout(150.0)
            .with_max_retries(2);
        let r =
            simulate_shuffle_with_faults(2, &net(), &transfers, &plan, &RecoveryOptions::none(2))
                .unwrap();
        // Two aborted attempts, then the full slow send is accepted.
        assert_eq!(r.timeouts, 2);
        assert!(r.makespan > 1_000.0);
        assert_eq!(r.recv_bytes[1], 100);
    }

    #[test]
    fn same_fault_seed_replays_identically() {
        let transfers = spread_transfers(4, 250);
        let run = || {
            let plan = FaultPlan::seeded(21)
                .with_drop_rate(0.1)
                .with_corrupt_rate(0.05)
                .with_crash(1, 400.0);
            simulate_shuffle_with_faults(
                4,
                &net(),
                &transfers,
                &plan,
                &RecoveryOptions::chained(4, 3),
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    use sj_telemetry::{CancelHandle, ClockSource, Interrupt, VirtualClock};

    #[test]
    fn disabled_replan_and_unbounded_ctx_are_bit_identical_to_legacy() {
        let transfers = spread_transfers(4, 137);
        let plan = FaultPlan::seeded(9).with_drop_rate(0.1).with_crash(2, 50.0);
        let recovery = RecoveryOptions::chained(4, 3);
        let legacy = simulate_shuffle_with_faults(4, &net(), &transfers, &plan, &recovery).unwrap();
        let guarded = simulate_shuffle_guarded(
            4,
            &net(),
            &transfers,
            &plan,
            &recovery,
            &ReplanPolicy::disabled(),
            &QueryContext::unbounded(),
        )
        .unwrap();
        assert_eq!(legacy, guarded);
        assert_eq!(guarded.replans, 0);
        assert!(guarded.replan_events.is_empty());
    }

    #[test]
    fn replan_drains_straggler_onto_substitute_and_cuts_makespan() {
        // Node 0's link is 10× slow, everyone sends it a slice, and its
        // chunks are mirrored on node 1. Without re-planning the whole
        // inbound load pays the 10× factor; with barriers every 50s the
        // monitor flags node 0 and re-routes its remaining traffic.
        let k = 4;
        let mut transfers = spread_transfers(k, 100);
        transfers.push(Transfer {
            src: 0,
            dst: 0,
            bytes: 100,
        });
        let plan = FaultPlan::none().with_straggler(0, 10.0);
        let recovery = RecoveryOptions::chained(k, 3);
        let slow = simulate_shuffle_with_faults(k, &net(), &transfers, &plan, &recovery).unwrap();
        let replanned = simulate_shuffle_guarded(
            k,
            &net(),
            &transfers,
            &plan,
            &recovery,
            &ReplanPolicy::enabled(2.0, 50.0, 2),
            &QueryContext::unbounded(),
        )
        .unwrap();
        assert!(replanned.replans >= 1, "monitor must flag the straggler");
        assert_eq!(replanned.replan_events.len(), replanned.replans as usize);
        let ev = &replanned.replan_events[0];
        assert_eq!(ev.node, 0, "node 0 is the straggler");
        assert_ne!(ev.substitute, 0);
        assert!(ev.moved_bytes > 0);
        assert!(ev.cause.starts_with("straggler"));
        assert!(
            replanned
                .reassigned
                .iter()
                .any(|&(from, to)| from == 0 && to == ev.substitute),
            "re-plan must ride the unit-reassignment path"
        );
        assert!(
            replanned.makespan * 1.5 < slow.makespan,
            "re-planning must cut the straggled makespan >= 1.5x: {} vs {}",
            replanned.makespan,
            slow.makespan
        );
        // Same seed, same policy: the decision replays bit-identically.
        let again = simulate_shuffle_guarded(
            k,
            &net(),
            &transfers,
            &plan,
            &recovery,
            &ReplanPolicy::enabled(2.0, 50.0, 2),
            &QueryContext::unbounded(),
        )
        .unwrap();
        assert_eq!(replanned, again);
    }

    #[test]
    fn replan_without_straggler_changes_nothing() {
        // Barriers fire but the monitor sees uniform rates: no action,
        // and the report matches the legacy run bit-for-bit.
        let transfers = spread_transfers(4, 137);
        let legacy = simulate_shuffle(4, &net(), &transfers).unwrap();
        let guarded = simulate_shuffle_guarded(
            4,
            &net(),
            &transfers,
            &FaultPlan::none(),
            &RecoveryOptions::chained(4, 2),
            &ReplanPolicy::enabled(2.0, 40.0, 3),
            &QueryContext::unbounded(),
        )
        .unwrap();
        assert_eq!(legacy, guarded);
    }

    #[test]
    fn replan_budget_is_bounded() {
        let mut plan = FaultPlan::none();
        for node in 0..2 {
            plan = plan.with_straggler(node, 10.0);
        }
        let transfers = spread_transfers(4, 100);
        let r = simulate_shuffle_guarded(
            4,
            &net(),
            &transfers,
            &plan,
            &RecoveryOptions::chained(4, 3),
            &ReplanPolicy::enabled(1.5, 20.0, 1),
            &QueryContext::unbounded(),
        )
        .unwrap();
        assert!(r.replans <= 1, "max_replans must bound the actions");
    }

    #[test]
    fn cancellation_interrupts_mid_shuffle() {
        let transfers = spread_transfers(4, 1_000);
        let ctx = QueryContext::unbounded();
        ctx.cancel_handle().cancel_after(3);
        let err = simulate_shuffle_guarded(
            4,
            &net(),
            &transfers,
            &FaultPlan::none(),
            &RecoveryOptions::none(4),
            &ReplanPolicy::disabled(),
            &ctx,
        )
        .unwrap_err();
        assert_eq!(err, ClusterError::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn virtual_deadline_interrupts_at_deterministic_sim_instant() {
        // 12 spread transfers of 1000 bytes: the clean makespan is
        // thousands of seconds, so a 1500s virtual deadline must fire
        // mid-shuffle — at the same event regardless of anything
        // outside the single-threaded simulation.
        let transfers = spread_transfers(4, 1_000);
        let run = || {
            let clock = VirtualClock::new();
            let ctx = QueryContext::new(
                CancelHandle::new(),
                Some(1_500.0),
                ClockSource::Virtual(clock),
            );
            simulate_shuffle_guarded(
                4,
                &net(),
                &transfers,
                &FaultPlan::none(),
                &RecoveryOptions::none(4),
                &ReplanPolicy::disabled(),
                &ctx,
            )
        };
        let err = run().unwrap_err();
        assert_eq!(err, ClusterError::Interrupted(Interrupt::DeadlineExceeded));
        assert_eq!(run().unwrap_err(), err);
    }
}
