//! The network model: a fully switched, shared-nothing interconnect.
//!
//! "the cluster's sole shared resource [is] network bandwidth" (paper §1).
//! Every node has one full-duplex link into a non-blocking switch: a node
//! can send and receive simultaneously (paper §5.1: "nodes can both send
//! and receive data across the network at the same time"), but each link
//! carries one transfer at a time in each direction — enforced by the
//! coordinator's per-host write locks (§3.4).

/// Parameters of the simulated interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Sustained per-link bandwidth in bytes per (virtual) second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer setup latency in seconds.
    pub latency_sec: f64,
}

impl NetworkModel {
    /// A model resembling gigabit Ethernet (~117 MB/s effective, 0.5 ms
    /// per-transfer setup), the class of hardware in the paper's testbed.
    pub fn gigabit() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 117.0e6,
            latency_sec: 0.5e-3,
        }
    }

    /// A model scaled for experiments against this repository's
    /// interpreted execution engine.
    ///
    /// The paper's testbed pairs a C++ engine (~0.1 µs of compute per
    /// cell) with gigabit Ethernet (~0.3 µs per 32-byte cell): the
    /// network is the scarcer resource by a factor of ~3. This profile
    /// tunes the virtual link so the same t : m ratio holds against this
    /// repository's engine (measured ~0.2 µs of comparison work per
    /// cell), keeping planner trade-offs in the paper's regime
    /// (see DESIGN.md §4, substitution 1).
    pub fn scaled_to_engine() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 60.0e6,
            latency_sec: 5.0e-6,
        }
    }

    /// Time to push `bytes` through one link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::gigabit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let net = NetworkModel {
            bandwidth_bytes_per_sec: 100.0,
            latency_sec: 1.0,
        };
        assert_eq!(net.transfer_time(0), 0.0);
        assert!((net.transfer_time(100) - 2.0).abs() < 1e-12);
        assert!((net.transfer_time(200) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn gigabit_profile_is_sane() {
        let net = NetworkModel::gigabit();
        // 117 MB should take about a second.
        let t = net.transfer_time(117_000_000);
        assert!(t > 0.9 && t < 1.1, "unexpected transfer time {t}");
    }
}
