//! Initial data-placement strategies.
//!
//! How an array's chunks are spread over cluster nodes before any query
//! runs. The paper's experiments start from the engine's default
//! distribution (round-robin over chunk ids, SciDB's default) and the
//! workload generators use `Explicit` placements to set up specific skew
//! scenarios.

use std::collections::HashMap;

/// A strategy for assigning chunks to nodes at load time.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Chunk with linear id `c` goes to node `c % k` (SciDB default).
    RoundRobin,
    /// Contiguous runs of chunk ids per node: the first `⌈n/k⌉` chunks on
    /// node 0, the next on node 1, and so on.
    Block,
    /// Chunks hashed to nodes (decorrelates chunk position from node).
    Hash,
    /// Chunks hashed to nodes with a salt, so two arrays loaded with
    /// different salts get *independent* layouts — as separate arrays do
    /// in a real engine. Essential for data-alignment experiments: with
    /// identical placements every D:D join is accidentally collocated.
    HashSalted(u64),
    /// Explicit chunk-id → node map; unmapped chunks fall back to
    /// round-robin.
    Explicit(HashMap<u64, usize>),
}

impl Placement {
    /// The node that should hold chunk `chunk_id`, with `total_chunks`
    /// known chunks on a `k`-node cluster.
    pub fn node_for(&self, chunk_id: u64, total_chunks: u64, k: usize) -> usize {
        let k64 = k as u64;
        match self {
            Placement::RoundRobin => (chunk_id % k64) as usize,
            Placement::Block => {
                let per = total_chunks.div_ceil(k64).max(1);
                ((chunk_id / per).min(k64 - 1)) as usize
            }
            Placement::Hash => Placement::HashSalted(0).node_for(chunk_id, total_chunks, k),
            Placement::HashSalted(salt) => {
                // Fibonacci hashing of the salted chunk id.
                let h = (chunk_id ^ salt.rotate_left(17)).wrapping_mul(0x9E3779B97F4A7C15);
                ((h >> 32) % k64) as usize
            }
            Placement::Explicit(map) => map
                .get(&chunk_id)
                .copied()
                .unwrap_or((chunk_id % k64) as usize)
                .min(k - 1),
        }
    }

    /// The nodes that should hold chunk `chunk_id` under `replicas`-way
    /// replication: the primary (per [`Placement::node_for`]) first,
    /// then `replicas - 1` chained-declustering copies on the next
    /// nodes mod `k`. Never returns duplicates; on a cluster smaller
    /// than the replication factor every node holds a copy.
    pub fn replica_nodes(
        &self,
        chunk_id: u64,
        total_chunks: u64,
        k: usize,
        replicas: usize,
    ) -> Vec<usize> {
        let primary = self.node_for(chunk_id, total_chunks, k);
        (0..replicas.max(1).min(k))
            .map(|i| (primary + i) % k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = Placement::RoundRobin;
        assert_eq!(p.node_for(0, 8, 4), 0);
        assert_eq!(p.node_for(5, 8, 4), 1);
        assert_eq!(p.node_for(7, 8, 4), 3);
    }

    #[test]
    fn block_partitions_contiguously() {
        let p = Placement::Block;
        // 8 chunks over 4 nodes: 2 per node.
        assert_eq!(p.node_for(0, 8, 4), 0);
        assert_eq!(p.node_for(1, 8, 4), 0);
        assert_eq!(p.node_for(2, 8, 4), 1);
        assert_eq!(p.node_for(7, 8, 4), 3);
        // Uneven: 5 chunks over 4 nodes → per = 2.
        assert_eq!(p.node_for(4, 5, 4), 2);
    }

    #[test]
    fn block_clamps_to_last_node() {
        let p = Placement::Block;
        // total_chunks smaller than claimed id must not go out of range.
        assert_eq!(p.node_for(100, 8, 4), 3);
    }

    #[test]
    fn hash_spreads_over_all_nodes() {
        let p = Placement::Hash;
        let mut seen = vec![0usize; 4];
        for c in 0..64 {
            seen[p.node_for(c, 64, 4)] += 1;
        }
        for &s in &seen {
            assert!(s > 4, "hash placement badly unbalanced: {seen:?}");
        }
    }

    #[test]
    fn salted_hash_decorrelates_layouts() {
        let a = Placement::HashSalted(1);
        let b = Placement::HashSalted(2);
        let same = (0..256)
            .filter(|&c| a.node_for(c, 256, 4) == b.node_for(c, 256, 4))
            .count();
        // Independent layouts agree on ~1/k of the chunks, not all.
        assert!(same < 128, "salted placements too correlated: {same}/256");
        // Deterministic per salt.
        assert_eq!(a.node_for(7, 256, 4), a.node_for(7, 256, 4));
    }

    #[test]
    fn explicit_with_fallback() {
        let mut map = HashMap::new();
        map.insert(3u64, 2usize);
        let p = Placement::Explicit(map);
        assert_eq!(p.node_for(3, 8, 4), 2);
        assert_eq!(p.node_for(5, 8, 4), 1); // fallback round-robin
    }

    #[test]
    fn replica_nodes_chain_from_primary() {
        let p = Placement::RoundRobin;
        assert_eq!(p.replica_nodes(2, 8, 4, 3), vec![2, 3, 0]);
        assert_eq!(p.replica_nodes(3, 8, 4, 1), vec![3]);
        // Replication factor clamped to the cluster size, no duplicates.
        assert_eq!(p.replica_nodes(1, 8, 2, 5), vec![1, 0]);
    }

    #[test]
    fn explicit_out_of_range_clamped() {
        let mut map = HashMap::new();
        map.insert(0u64, 99usize);
        let p = Placement::Explicit(map);
        assert_eq!(p.node_for(0, 8, 4), 3);
    }
}
