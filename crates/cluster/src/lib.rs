//! # sj-cluster: a simulated shared-nothing array-database cluster
//!
//! The execution-environment substrate of *Skew-Aware Join Optimization
//! for Array Databases* (SIGMOD 2015, §2.1, §3.4): nodes with local chunk
//! partitions, a coordinator-managed system catalog, and a switched
//! network whose data-alignment shuffles are timed by a discrete-event
//! simulation of the paper's greedy per-host write-lock schedule.
//!
//! The simulation design keeps the two quantities the paper's physical
//! planners trade off — the per-node network load and the per-node
//! comparison load — faithful at laptop scale: cell comparison runs as
//! real compute, while network time is derived from the actual bytes each
//! slice transfer moves under the lock-based schedule.

#![warn(missing_docs)]

mod cluster;
mod error;
mod fault;
mod network;
mod placement;
mod shuffle;

pub use cluster::{Catalog, Cluster, Node};
pub use error::{ClusterError, Result};
pub use fault::{FaultPlan, NodeCrash, RecoveryOptions, ReplanPolicy, Straggler};
pub use network::NetworkModel;
pub use placement::Placement;
pub use shuffle::{
    simulate_shuffle, simulate_shuffle_guarded, simulate_shuffle_guarded_traced,
    simulate_shuffle_with_faults, simulate_shuffle_with_faults_traced, ReplanEvent, ShuffleReport,
    Transfer,
};
