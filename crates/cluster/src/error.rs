//! Error types for the cluster simulator.

use std::fmt;

/// Errors produced by cluster operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Referenced a node id outside the cluster.
    NoSuchNode(usize),
    /// Referenced an array name not present in the catalog.
    NoSuchArray(String),
    /// An array with this name is already loaded.
    ArrayExists(String),
    /// A chunk id was not found where the catalog said it should be.
    MissingChunk {
        /// Array the chunk belongs to.
        array: String,
        /// Linear chunk id.
        chunk: u64,
    },
    /// The underlying storage engine reported an error.
    Storage(String),
    /// A simulation invariant was violated (internal bug surface).
    Simulation(String),
    /// Referenced a node that has failed.
    NodeDown(usize),
    /// A transfer exhausted its retry budget.
    TransferFailed {
        /// Sending node of the doomed transfer.
        src: usize,
        /// Receiving node of the doomed transfer.
        dst: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A node died and no live replica could take over its data.
    Unrecoverable(String),
    /// A chunk lost its primary and has no replica to promote.
    NoReplica {
        /// Array the chunk belongs to.
        array: String,
        /// Linear chunk id.
        chunk: u64,
    },
    /// The query's lifecycle context interrupted the operation
    /// (cooperative cancellation or deadline expiry).
    Interrupted(sj_telemetry::Interrupt),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSuchNode(id) => write!(f, "no such node: {id}"),
            ClusterError::NoSuchArray(name) => write!(f, "no such array: `{name}`"),
            ClusterError::ArrayExists(name) => write!(f, "array `{name}` already loaded"),
            ClusterError::MissingChunk { array, chunk } => {
                write!(f, "chunk {chunk} of array `{array}` missing from its node")
            }
            ClusterError::Storage(msg) => write!(f, "storage error: {msg}"),
            ClusterError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            ClusterError::NodeDown(id) => write!(f, "node {id} is down"),
            ClusterError::TransferFailed { src, dst, attempts } => write!(
                f,
                "transfer {src} -> {dst} failed after {attempts} attempts"
            ),
            ClusterError::Unrecoverable(msg) => write!(f, "unrecoverable failure: {msg}"),
            ClusterError::NoReplica { array, chunk } => write!(
                f,
                "chunk {chunk} of array `{array}` lost its primary and has no replica"
            ),
            ClusterError::Interrupted(cause) => write!(f, "interrupted: {cause}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<sj_array::ArrayError> for ClusterError {
    fn from(e: sj_array::ArrayError) -> Self {
        ClusterError::Storage(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
