//! Error types for the cluster simulator.

use std::fmt;

/// Errors produced by cluster operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Referenced a node id outside the cluster.
    NoSuchNode(usize),
    /// Referenced an array name not present in the catalog.
    NoSuchArray(String),
    /// An array with this name is already loaded.
    ArrayExists(String),
    /// A chunk id was not found where the catalog said it should be.
    MissingChunk {
        /// Array the chunk belongs to.
        array: String,
        /// Linear chunk id.
        chunk: u64,
    },
    /// The underlying storage engine reported an error.
    Storage(String),
    /// A simulation invariant was violated (internal bug surface).
    Simulation(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSuchNode(id) => write!(f, "no such node: {id}"),
            ClusterError::NoSuchArray(name) => write!(f, "no such array: `{name}`"),
            ClusterError::ArrayExists(name) => write!(f, "array `{name}` already loaded"),
            ClusterError::MissingChunk { array, chunk } => {
                write!(f, "chunk {chunk} of array `{array}` missing from its node")
            }
            ClusterError::Storage(msg) => write!(f, "storage error: {msg}"),
            ClusterError::Simulation(msg) => write!(f, "simulation error: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<sj_array::ArrayError> for ClusterError {
    fn from(e: sj_array::ArrayError) -> Self {
        ClusterError::Storage(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ClusterError>;
