//! Deterministic fault injection for the cluster simulator.
//!
//! The paper's shuffle framework (§3.4, §5.1) assumes every slice
//! transfer lands and every node survives the alignment phase. This
//! module removes that assumption: a [`FaultPlan`] describes node
//! crashes at virtual timestamps, per-transfer drop and corruption
//! probabilities, and per-node straggler slowdowns. The plan is seeded
//! (xoshiro256++ via [`sj_workload::Rng64`]) so that every run with the
//! same plan replays bit-identically, at any executor thread count —
//! the fault decisions live entirely inside the single-threaded
//! discrete-event simulation and are drawn in event order.
//!
//! [`RecoveryOptions`] is the coordinator-side half: for each node it
//! lists the replica nodes able to re-serve that node's slices after a
//! crash (derived from the catalog's k-replica chunk homes, or from the
//! chained-declustering layout directly).

use sj_workload::Rng64;

/// A scheduled node crash at a virtual timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCrash {
    /// Node that dies.
    pub node: usize,
    /// Virtual seconds after shuffle start at which it dies.
    pub at_seconds: f64,
}

/// A per-node straggler: the node's link runs `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Slowed node.
    pub node: usize,
    /// Slowdown multiplier (≥ 1.0; 1.0 means no slowdown).
    pub factor: f64,
}

/// A deterministic, replayable fault schedule for one shuffle.
///
/// `FaultPlan::none()` is the identity: the simulation takes exactly
/// the fault-free code path and produces bit-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-transfer drop/corruption draws.
    pub seed: u64,
    /// Node crashes, processed in timestamp order.
    pub crashes: Vec<NodeCrash>,
    /// Probability that a transfer is lost in flight.
    pub drop_rate: f64,
    /// Probability that a transfer lands with a corrupted payload
    /// (detected by the receiver's checksum, triggering a retransmit).
    pub corrupt_rate: f64,
    /// Per-node link slowdowns.
    pub stragglers: Vec<Straggler>,
    /// Per-transfer timeout in virtual seconds: an attempt expected to
    /// exceed this is aborted and retried (possibly from a faster
    /// replica). `None` disables timeouts.
    pub transfer_timeout: Option<f64>,
    /// Bounded retries per transfer before the shuffle gives up
    /// (drops/corruption) or accepts the slow path (timeouts).
    pub max_retries: u32,
    /// Base retry backoff in virtual seconds; attempt `a` waits
    /// `retry_backoff · 2^(a-1)` before retransmitting.
    pub retry_backoff: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashes: Vec::new(),
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            stragglers: Vec::new(),
            transfer_timeout: None,
            max_retries: 8,
            retry_backoff: 1e-4,
        }
    }

    /// An empty plan with the probabilistic draws seeded by `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// True when the plan injects nothing (the fault-free fast path).
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stragglers.is_empty()
            && self.transfer_timeout.is_none()
    }

    /// Add a node crash at `at_seconds`.
    pub fn with_crash(mut self, node: usize, at_seconds: f64) -> Self {
        self.crashes.push(NodeCrash { node, at_seconds });
        self
    }

    /// Set the per-transfer drop probability.
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop rate must be in [0, 1)");
        self.drop_rate = p;
        self
    }

    /// Set the per-transfer corruption probability.
    pub fn with_corrupt_rate(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "corrupt rate must be in [0, 1)");
        self.corrupt_rate = p;
        self
    }

    /// Slow node `node`'s link by `factor`.
    pub fn with_straggler(mut self, node: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.stragglers.push(Straggler { node, factor });
        self
    }

    /// Set the per-transfer timeout.
    pub fn with_timeout(mut self, seconds: f64) -> Self {
        self.transfer_timeout = Some(seconds);
        self
    }

    /// Cap retransmission attempts.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Generate a random fault plan for a `k`-node cluster: `failures`
    /// node crashes at uniform times in `[0, horizon)` on distinct
    /// uniformly-drawn nodes, plus the given drop rate. Deterministic
    /// per seed — the same seed always yields the same plan.
    pub fn random(seed: u64, k: usize, failures: usize, horizon: f64, drop_rate: f64) -> Self {
        assert!(failures < k, "at least one node must survive");
        let mut rng = Rng64::seed_from_u64(seed);
        let mut plan = FaultPlan::seeded(seed).with_drop_rate(drop_rate);
        let mut victims: Vec<usize> = Vec::with_capacity(failures);
        while victims.len() < failures {
            let node = rng.gen_range(0..k);
            if !victims.contains(&node) {
                victims.push(node);
            }
        }
        for node in victims {
            let at = rng.gen_range(0.0..horizon.max(f64::MIN_POSITIVE));
            plan = plan.with_crash(node, at);
        }
        plan
    }

    /// The slowdown multiplier for `node` (1.0 when not a straggler).
    pub fn slowdown(&self, node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.factor)
            .fold(1.0, f64::max)
    }

    /// Backoff before retransmission attempt `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.retry_backoff * (1u64 << (attempt.saturating_sub(1)).min(20)) as f64
    }

    /// The plan's crashes sorted by (time, node) — the order the
    /// simulation processes them in.
    pub fn sorted_crashes(&self) -> Vec<NodeCrash> {
        let mut crashes = self.crashes.clone();
        crashes.sort_by(|a, b| {
            a.at_seconds
                .total_cmp(&b.at_seconds)
                .then(a.node.cmp(&b.node))
        });
        crashes
    }

    /// A fresh RNG for this plan's probabilistic draws.
    pub(crate) fn rng(&self) -> Rng64 {
        Rng64::seed_from_u64(self.seed)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Mid-shuffle straggler re-planning policy.
///
/// When enabled, the shuffle simulation pauses at deterministic
/// *re-plan barriers* (multiples of `check_interval` in virtual time),
/// estimates each node's delivered throughput from the simulation's own
/// per-node accounting, and — when a node's observed per-byte time
/// exceeds `slowdown_factor` × the cluster median — drains that node's
/// remaining traffic onto a substitute via the crash-recovery
/// reassignment path (without marking the node dead). Decisions are
/// functions of simulation state only, so they replay bit-identically
/// at any executor thread count and per seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanPolicy {
    /// A node is flagged when its measured per-byte wire time exceeds
    /// this multiple of the cluster-median per-byte time (> 1.0).
    pub slowdown_factor: f64,
    /// Virtual seconds between re-plan barriers (> 0 when enabled).
    pub check_interval: f64,
    /// Maximum number of re-plan actions per shuffle; 0 disables
    /// re-planning entirely.
    pub max_replans: u32,
}

impl ReplanPolicy {
    /// Re-planning off: the simulation takes exactly the legacy code
    /// path and produces bit-identical reports.
    pub fn disabled() -> Self {
        ReplanPolicy {
            slowdown_factor: 2.0,
            check_interval: 0.0,
            max_replans: 0,
        }
    }

    /// Re-planning on with the given detection threshold and barrier
    /// spacing, allowing up to `max_replans` migrations.
    pub fn enabled(slowdown_factor: f64, check_interval: f64, max_replans: u32) -> Self {
        ReplanPolicy {
            slowdown_factor,
            check_interval,
            max_replans,
        }
    }

    /// True when barriers should be scheduled at all.
    pub fn is_enabled(&self) -> bool {
        self.max_replans > 0 && self.check_interval > 0.0
    }
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy::disabled()
    }
}

/// Coordinator-side recovery routing: which nodes can stand in for a
/// dead one.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOptions {
    /// `alt_sources[j]` = nodes able to re-serve node `j`'s slices
    /// (nodes holding replicas of `j`'s chunks), in preference order.
    /// Empty when node `j`'s data is unreplicated — a crash of `j`
    /// while it still has data to send is then unrecoverable.
    pub alt_sources: Vec<Vec<usize>>,
}

impl RecoveryOptions {
    /// No replicas anywhere (crash of a node with pending sends fails
    /// the shuffle).
    pub fn none(k: usize) -> Self {
        RecoveryOptions {
            alt_sources: vec![Vec::new(); k],
        }
    }

    /// Chained declustering with `replicas` total copies: node `j`'s
    /// data is mirrored on nodes `j+1 … j+replicas-1 (mod k)`.
    pub fn chained(k: usize, replicas: usize) -> Self {
        RecoveryOptions {
            alt_sources: (0..k)
                .map(|j| (1..replicas.min(k)).map(|i| (j + i) % k).collect())
                .collect(),
        }
    }

    /// The first alternate for `node` that is still alive.
    pub fn live_alternate(&self, node: usize, dead: &[bool]) -> Option<usize> {
        self.alt_sources
            .get(node)?
            .iter()
            .copied()
            .find(|&a| !dead.get(a).copied().unwrap_or(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::seeded(7).is_none());
        assert!(!FaultPlan::none().with_drop_rate(0.01).is_none());
        assert!(!FaultPlan::none().with_crash(0, 1.0).is_none());
        assert!(!FaultPlan::none().with_straggler(1, 2.0).is_none());
        assert!(!FaultPlan::none().with_timeout(5.0).is_none());
    }

    #[test]
    fn random_plans_replay_per_seed() {
        let a = FaultPlan::random(42, 8, 3, 100.0, 0.05);
        let b = FaultPlan::random(42, 8, 3, 100.0, 0.05);
        assert_eq!(a, b);
        assert_eq!(a.crashes.len(), 3);
        let nodes: Vec<usize> = a.crashes.iter().map(|c| c.node).collect();
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "crash nodes must be distinct: {nodes:?}");
        let c = FaultPlan::random(43, 8, 3, 100.0, 0.05);
        assert_ne!(a, c);
    }

    #[test]
    fn slowdown_takes_worst_factor() {
        let p = FaultPlan::none()
            .with_straggler(2, 3.0)
            .with_straggler(2, 5.0);
        assert_eq!(p.slowdown(2), 5.0);
        assert_eq!(p.slowdown(0), 1.0);
    }

    #[test]
    fn backoff_doubles() {
        let p = FaultPlan::none();
        assert!((p.backoff(1) - 1e-4).abs() < 1e-12);
        assert!((p.backoff(2) - 2e-4).abs() < 1e-12);
        assert!((p.backoff(3) - 4e-4).abs() < 1e-12);
    }

    #[test]
    fn chained_recovery_walks_ring() {
        let r = RecoveryOptions::chained(4, 3);
        assert_eq!(r.alt_sources[0], vec![1, 2]);
        assert_eq!(r.alt_sources[3], vec![0, 1]);
        let dead = vec![false, true, false, false];
        assert_eq!(r.live_alternate(0, &dead), Some(2));
        assert_eq!(r.live_alternate(3, &dead), Some(0));
        assert_eq!(RecoveryOptions::none(4).live_alternate(0, &dead), None);
    }

    #[test]
    fn sorted_crashes_order_by_time_then_node() {
        let p = FaultPlan::none()
            .with_crash(3, 5.0)
            .with_crash(1, 2.0)
            .with_crash(0, 5.0);
        let s = p.sorted_crashes();
        assert_eq!(s.iter().map(|c| c.node).collect::<Vec<_>>(), vec![1, 0, 3]);
    }
}
