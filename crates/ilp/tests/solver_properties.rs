//! Property tests: the branch & bound solver against brute-force
//! enumeration on small random integer programs.

#![cfg(feature = "proptest")]

use proptest::prelude::*;
use sj_ilp::{Cmp, IlpSolver, LinExpr, Model, SolveStatus};
use std::time::Duration;

/// A small random ILP: `nb` binaries, one knapsack-style ≤ constraint,
/// one covering ≥ constraint, random objective.
fn random_model(
    nb: usize,
    obj: Vec<i32>,
    weights: Vec<i32>,
    cap: i32,
    cover: Vec<i32>,
    need: i32,
) -> Model {
    let mut m = Model::minimize();
    let xs: Vec<_> = (0..nb).map(|i| m.binary(format!("x{i}"))).collect();
    let w = xs
        .iter()
        .zip(&weights)
        .fold(LinExpr::new(), |e, (&v, &c)| e.add(v, c as f64));
    m.constrain(w, Cmp::Le, cap as f64);
    let c = xs
        .iter()
        .zip(&cover)
        .fold(LinExpr::new(), |e, (&v, &k)| e.add(v, k as f64));
    m.constrain(c, Cmp::Ge, need as f64);
    let o = xs
        .iter()
        .zip(&obj)
        .fold(LinExpr::new(), |e, (&v, &k)| e.add(v, k as f64));
    m.set_objective(o);
    m
}

/// Brute-force optimum over all 2^nb assignments; None if infeasible.
fn brute_force(m: &Model, nb: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for code in 0u32..(1 << nb) {
        let x: Vec<f64> = (0..nb).map(|i| ((code >> i) & 1) as f64).collect();
        if m.is_feasible(&x, 1e-9) {
            let v = m.objective_value(&x);
            best = Some(best.map_or(v, |b: f64| b.min(v)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bb_matches_brute_force(
        nb in 2usize..=8,
        obj in proptest::collection::vec(-9i32..=9, 8),
        weights in proptest::collection::vec(0i32..=9, 8),
        cap in 0i32..=30,
        cover in proptest::collection::vec(0i32..=9, 8),
        need in 0i32..=20,
    ) {
        let m = random_model(
            nb,
            obj[..nb].to_vec(),
            weights[..nb].to_vec(),
            cap,
            cover[..nb].to_vec(),
            need,
        );
        let expected = brute_force(&m, nb);
        let sol = IlpSolver::with_budget(Duration::from_secs(20)).solve(&m);
        match expected {
            None => prop_assert!(
                matches!(sol.status, SolveStatus::Infeasible),
                "solver said {:?} on an infeasible model", sol.status
            ),
            Some(opt) => {
                prop_assert_eq!(sol.status, SolveStatus::Optimal);
                prop_assert!(
                    (sol.objective - opt).abs() < 1e-6,
                    "solver found {} but brute force found {opt}", sol.objective
                );
                prop_assert!(m.is_feasible(&sol.values, 1e-6));
                // Reported bound is a valid lower bound.
                prop_assert!(sol.bound <= sol.objective + 1e-6);
            }
        }
    }

    /// The LP relaxation value never exceeds the integer optimum.
    #[test]
    fn lp_relaxation_is_a_lower_bound(
        nb in 2usize..=6,
        obj in proptest::collection::vec(-9i32..=9, 6),
        weights in proptest::collection::vec(0i32..=9, 6),
        cap in 0i32..=25,
        cover in proptest::collection::vec(0i32..=9, 6),
        need in 0i32..=15,
    ) {
        let m = random_model(
            nb,
            obj[..nb].to_vec(),
            weights[..nb].to_vec(),
            cap,
            cover[..nb].to_vec(),
            need,
        );
        if let Some(opt) = brute_force(&m, nb) {
            let lp = sj_ilp::solve_lp(&m);
            prop_assert_eq!(lp.status, sj_ilp::LpStatus::Optimal);
            prop_assert!(
                lp.objective <= opt + 1e-6,
                "LP relaxation {} above integer optimum {opt}", lp.objective
            );
        }
    }
}
