//! Best-first branch & bound over LP relaxations, with a time budget.
//!
//! Mirrors how the paper uses SCIP (§5.2, §6.2): the solver is *anytime* —
//! given a workload-specific time budget it returns the best incumbent
//! found so far, and on large or flat instances it may fail to close the
//! optimality gap (the paper observes exactly this at 1024 join units and
//! under uniform data).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::model::{Model, Solution, SolveStatus, VarKind};
use crate::simplex::{solve_relaxation, LpStatus};

const INT_TOL: f64 = 1e-6;

/// Configurable branch-and-bound ILP solver.
#[derive(Debug, Clone)]
pub struct IlpSolver {
    /// Wall-clock budget; the incumbent at expiry is returned.
    pub time_budget: Duration,
    /// Stop when `(incumbent - bound) / max(|incumbent|, 1)` is below this.
    pub gap_tolerance: f64,
    /// Hard cap on explored nodes.
    pub max_nodes: usize,
    /// Optional warm-start solution (checked for feasibility before use).
    pub initial_incumbent: Option<Vec<f64>>,
}

impl Default for IlpSolver {
    fn default() -> Self {
        IlpSolver {
            time_budget: Duration::from_secs(60),
            gap_tolerance: 1e-6,
            max_nodes: 1_000_000,
            initial_incumbent: None,
        }
    }
}

struct BbNode {
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for BbNode {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for BbNode {}
impl Ord for BbNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on bound: best-first search.
        other.bound.total_cmp(&self.bound)
    }
}
impl PartialOrd for BbNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl IlpSolver {
    /// A solver with the given time budget.
    pub fn with_budget(time_budget: Duration) -> Self {
        IlpSolver {
            time_budget,
            ..IlpSolver::default()
        }
    }

    /// Solve `model`, minimizing its objective.
    pub fn solve(&self, model: &Model) -> Solution {
        let start = Instant::now();
        let _n = model.num_vars();
        let root_lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let root_upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        if let Some(warm) = &self.initial_incumbent {
            if model.is_feasible(warm, 1e-6) {
                let obj = model.objective.eval(warm);
                incumbent = Some((warm.clone(), obj));
            }
        }

        let root = solve_relaxation(model, &root_lower, &root_upper);
        match root.status {
            LpStatus::Infeasible => {
                return Solution {
                    status: SolveStatus::Infeasible,
                    values: Vec::new(),
                    objective: f64::INFINITY,
                    bound: f64::INFINITY,
                    nodes_explored: 1,
                }
            }
            LpStatus::Unbounded => {
                return Solution {
                    status: SolveStatus::Unbounded,
                    values: Vec::new(),
                    objective: f64::NEG_INFINITY,
                    bound: f64::NEG_INFINITY,
                    nodes_explored: 1,
                }
            }
            LpStatus::Optimal => {}
        }

        let mut heap: BinaryHeap<BbNode> = BinaryHeap::new();
        heap.push(BbNode {
            bound: root.objective,
            lower: root_lower,
            upper: root_upper,
        });

        let mut nodes_explored = 0usize;
        let mut best_bound = root.objective;
        let mut hit_budget = false;
        // Whether the *search* produced an incumbent (vs only holding the
        // caller's warm start): a budget break before any own progress is
        // reported as BudgetExhausted even when a warm start was supplied,
        // so callers can tell "the solver planned" from "my warm start
        // came straight back".
        let mut improved = false;

        while let Some(node) = heap.pop() {
            best_bound = node.bound;
            if let Some((_, inc_obj)) = &incumbent {
                let gap = (inc_obj - node.bound) / inc_obj.abs().max(1.0);
                if gap <= self.gap_tolerance {
                    // Everything remaining is no better than the incumbent.
                    let (values, objective) = incumbent.unwrap();
                    return Solution {
                        status: SolveStatus::Optimal,
                        values,
                        // The incumbent itself bounds the optimum; simplex
                        // epsilon can push node bounds marginally above it.
                        bound: node.bound.min(objective),
                        objective,
                        nodes_explored,
                    };
                }
            }
            if nodes_explored >= self.max_nodes || start.elapsed() >= self.time_budget {
                hit_budget = true;
                break;
            }
            nodes_explored += 1;

            let lp = solve_relaxation(model, &node.lower, &node.upper);
            if lp.status != LpStatus::Optimal {
                continue; // infeasible subtree
            }
            if let Some((_, inc_obj)) = &incumbent {
                if lp.objective >= inc_obj - 1e-9 {
                    continue; // dominated subtree
                }
            }

            // Most-fractional binary branching.
            let mut branch_var: Option<usize> = None;
            let mut most_frac = INT_TOL;
            for (j, v) in model.vars.iter().enumerate() {
                if v.kind != VarKind::Binary {
                    continue;
                }
                let frac = (lp.x[j] - lp.x[j].round()).abs();
                if frac > most_frac {
                    most_frac = frac;
                    branch_var = Some(j);
                }
            }

            match branch_var {
                None => {
                    // Integral: candidate incumbent. Round binaries exactly.
                    let mut x = lp.x.clone();
                    for (j, v) in model.vars.iter().enumerate() {
                        if v.kind == VarKind::Binary {
                            x[j] = x[j].round();
                        }
                    }
                    let obj = model.objective.eval(&x);
                    let better = incumbent.as_ref().is_none_or(|(_, inc)| obj < inc - 1e-12);
                    if better && model.is_feasible(&x, 1e-5) {
                        incumbent = Some((x, obj));
                        improved = true;
                    }
                }
                Some(j) => {
                    let frac_val = lp.x[j];
                    // Child x_j = 0.
                    let mut up0 = node.upper.clone();
                    up0[j] = 0.0;
                    // Child x_j = 1.
                    let mut lo1 = node.lower.clone();
                    lo1[j] = 1.0;
                    // Use the parent LP objective as the child bound
                    // (valid: children are restrictions). Explore the
                    // branch nearer the fractional value first by giving
                    // it the same bound; heap order handles the rest.
                    let _ = frac_val;
                    heap.push(BbNode {
                        bound: lp.objective,
                        lower: node.lower.clone(),
                        upper: up0,
                    });
                    heap.push(BbNode {
                        bound: lp.objective,
                        lower: lo1,
                        upper: node.upper.clone(),
                    });
                }
            }
        }

        match incumbent {
            Some((values, objective)) => {
                // A budget/node-cap break leaves the popped node's subtree
                // unexplored, so an empty heap proves nothing then.
                let proved = !hit_budget
                    && (heap.is_empty()
                        || (objective - best_bound) / objective.abs().max(1.0)
                            <= self.gap_tolerance);
                Solution {
                    status: if proved {
                        SolveStatus::Optimal
                    } else if hit_budget && !improved {
                        SolveStatus::BudgetExhausted
                    } else {
                        SolveStatus::Feasible
                    },
                    values,
                    objective,
                    // A found solution caps the lower bound (guards against
                    // simplex epsilon pushing stale node bounds above it).
                    bound: best_bound.min(objective),
                    nodes_explored,
                }
            }
            None => Solution {
                // An exhausted tree with no integral point is a *proof* of
                // infeasibility; only a budget/node-cap break leaves the
                // question open.
                status: if hit_budget {
                    SolveStatus::BudgetExhausted
                } else {
                    SolveStatus::Infeasible
                },
                values: Vec::new(),
                objective: f64::INFINITY,
                bound: if hit_budget {
                    best_bound
                } else {
                    f64::INFINITY
                },
                nodes_explored,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr, Model};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 10.0);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, 3.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let s = IlpSolver::default().solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn knapsack_requires_branching() {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries.
        // Optimum: a=1, c=1 (weight 3 ≤ 5... b also fits? 2+3+1=6 > 5).
        // a=1, b=1 → weight 5, value 9; a=1,c=1 → weight 3, value 8;
        // best is a=1,b=1 → 9.
        let mut m = Model::minimize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.constrain(
            LinExpr::new().add(a, 2.0).add(b, 3.0).add(c, 1.0),
            Cmp::Le,
            5.0,
        );
        m.set_objective(LinExpr::new().add(a, -5.0).add(b, -4.0).add(c, -3.0));
        let s = IlpSolver::default().solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective, -9.0);
        assert_close(s.values[a.index()], 1.0);
        assert_close(s.values[b.index()], 1.0);
        assert_close(s.values[c.index()], 0.0);
    }

    #[test]
    fn assignment_with_min_max_objective() {
        // 3 units with costs [4, 3, 2] over 2 nodes, minimize the max
        // node load. Optimum: {4} vs {3,2} → max 5.
        let costs = [4.0, 3.0, 2.0];
        let mut m = Model::minimize();
        let x: Vec<Vec<_>> = (0..3)
            .map(|i| (0..2).map(|j| m.binary(format!("x{i}{j}"))).collect())
            .collect();
        let g = m.continuous("g", 0.0, f64::INFINITY);
        for xi in x.iter() {
            let expr = xi.iter().fold(LinExpr::new(), |e, &v| e.add(v, 1.0));
            m.constrain(expr, Cmp::Eq, 1.0);
        }
        for j in 0..2 {
            let mut expr = LinExpr::new().add(g, 1.0);
            for (i, xi) in x.iter().enumerate() {
                expr = expr.add(xi[j], -costs[i]);
            }
            m.constrain(expr, Cmp::Ge, 0.0);
        }
        m.set_objective(LinExpr::new().add(g, 1.0));
        let s = IlpSolver::default().solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn infeasible_integer_model() {
        // x + y = 1.5 with x, y binary has LP solutions but no integer one
        // ... actually x=1,y=0.5 is fractional; integer infeasible.
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.binary("y");
        m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Eq, 1.5);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let s = IlpSolver::default().solve(&m);
        // No integral point exists; solver must not fabricate one.
        assert!(matches!(
            s.status,
            SolveStatus::Infeasible | SolveStatus::BudgetExhausted
        ));
        assert!(s.values.is_empty());
    }

    #[test]
    fn lp_infeasible_model() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, 2.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        assert_eq!(
            IlpSolver::default().solve(&m).status,
            SolveStatus::Infeasible
        );
    }

    #[test]
    fn warm_start_incumbent_survives_zero_budget() {
        // With no time to explore, the warm start is returned.
        let costs = [4.0, 3.0, 2.0];
        let mut m = Model::minimize();
        let x: Vec<Vec<_>> = (0..3)
            .map(|i| (0..2).map(|j| m.binary(format!("x{i}{j}"))).collect())
            .collect();
        let g = m.continuous("g", 0.0, 100.0);
        for xi in x.iter() {
            let expr = xi.iter().fold(LinExpr::new(), |e, &v| e.add(v, 1.0));
            m.constrain(expr, Cmp::Eq, 1.0);
        }
        for j in 0..2 {
            let mut expr = LinExpr::new().add(g, 1.0);
            for (i, xi) in x.iter().enumerate() {
                expr = expr.add(xi[j], -costs[i]);
            }
            m.constrain(expr, Cmp::Ge, 0.0);
        }
        m.set_objective(LinExpr::new().add(g, 1.0));
        // All units on node 0: g = 9.
        let mut warm = vec![0.0; m.num_vars()];
        for (i, xi) in x.iter().enumerate() {
            let _ = i;
            warm[xi[0].index()] = 1.0;
        }
        warm[g.index()] = 9.0;
        let solver = IlpSolver {
            time_budget: Duration::ZERO,
            initial_incumbent: Some(warm),
            ..IlpSolver::default()
        };
        let s = solver.solve(&m);
        // No time to explore: the solver reports that its budget expired
        // before it produced anything of its own, but still hands the
        // warm start back so anytime callers have a plan to run.
        assert_eq!(s.status, SolveStatus::BudgetExhausted);
        assert!(s.objective <= 9.0 + 1e-6);
        assert!(!s.values.is_empty(), "warm start is still returned");
    }

    #[test]
    fn infeasible_warm_start_rejected() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Eq, 1.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let solver = IlpSolver {
            initial_incumbent: Some(vec![0.0]), // violates x = 1
            ..IlpSolver::default()
        };
        let s = solver.solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], 1.0);
    }

    #[test]
    fn bound_is_valid_lower_bound() {
        let mut m = Model::minimize();
        let a = m.binary("a");
        let b = m.binary("b");
        m.constrain(LinExpr::new().add(a, 1.0).add(b, 1.0), Cmp::Ge, 1.0);
        m.set_objective(LinExpr::new().add(a, 2.0).add(b, 3.0));
        let s = IlpSolver::default().solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective, 2.0);
        assert!(s.bound <= s.objective + 1e-9);
    }

    #[test]
    fn larger_assignment_solves_to_optimality() {
        // 8 units, 3 nodes, min-max load. Costs sum to 36; best max ≈ 12.
        let costs = [9.0, 8.0, 7.0, 5.0, 3.0, 2.0, 1.0, 1.0];
        let k = 3;
        let mut m = Model::minimize();
        let x: Vec<Vec<_>> = (0..costs.len())
            .map(|i| (0..k).map(|j| m.binary(format!("x{i}{j}"))).collect())
            .collect();
        let g = m.continuous("g", 0.0, f64::INFINITY);
        for xi in x.iter() {
            let expr = xi.iter().fold(LinExpr::new(), |e, &v| e.add(v, 1.0));
            m.constrain(expr, Cmp::Eq, 1.0);
        }
        for j in 0..k {
            let mut expr = LinExpr::new().add(g, 1.0);
            for (i, xi) in x.iter().enumerate() {
                expr = expr.add(xi[j], -costs[i]);
            }
            m.constrain(expr, Cmp::Ge, 0.0);
        }
        m.set_objective(LinExpr::new().add(g, 1.0));
        let s = IlpSolver::with_budget(Duration::from_secs(20)).solve(&m);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective, 12.0);
    }
}
