//! # sj-ilp: a from-scratch integer linear program solver
//!
//! The paper's physical join planner formulates its analytical cost model
//! as an integer linear program and solves it with SCIP (§5.2). This crate
//! is the in-repo substitute: a [`Model`] builder, a dense two-phase
//! bounded-variable [simplex](solve_lp) for LP relaxations, and a
//! time-budgeted best-first [branch & bound](IlpSolver).
//!
//! Like the paper's use of SCIP, the solver is *anytime*: it accepts a
//! warm-start incumbent, honours a wall-clock budget, and returns the best
//! feasible solution found when the budget expires — including the
//! possibility of returning nothing on hard instances, which the paper
//! observes for 1024 join units under slight skew (§6.2.2).

#![warn(missing_docs)]

mod branch_bound;
mod model;
mod simplex;

pub use branch_bound::IlpSolver;
pub use model::{Cmp, Constraint, LinExpr, Model, Solution, SolveStatus, VarId, VarKind, Variable};
pub use simplex::{solve_lp, solve_relaxation, LpResult, LpStatus};
