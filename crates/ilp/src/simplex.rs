//! Dense two-phase primal simplex with implicit variable upper bounds.
//!
//! Solves the LP relaxations that drive the branch-and-bound solver.
//! Variables carry `[lower, upper]` bounds handled *implicitly* (the
//! bounded-variable simplex): nonbasic variables rest at either bound and
//! the ratio test admits bound flips, so binary variables cost no extra
//! tableau rows. Degeneracy is handled by switching from Dantzig to
//! Bland's rule after a stall, which guarantees termination.

// Tableau algebra reads most clearly with explicit row/column indices;
// iterator adaptors obscure the pivot arithmetic here.
#![allow(clippy::needless_range_loop)]

use crate::model::{Cmp, Model};

const EPS: f64 = 1e-7;
const PIVOT_EPS: f64 = 1e-9;

/// LP termination status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

/// Result of an LP solve, in the *original* variable space.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Termination status.
    pub status: LpStatus,
    /// Variable values (meaningful only when `status == Optimal`).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
}

/// Solve the LP relaxation of `model` with per-variable bound overrides.
///
/// `lower`/`upper` replace the model's variable bounds (branch-and-bound
/// uses this to fix binaries); lengths must equal the variable count.
pub fn solve_relaxation(model: &Model, lower: &[f64], upper: &[f64]) -> LpResult {
    assert_eq!(lower.len(), model.num_vars());
    assert_eq!(upper.len(), model.num_vars());
    for (l, u) in lower.iter().zip(upper) {
        if *l > u + EPS {
            return LpResult {
                status: LpStatus::Infeasible,
                x: Vec::new(),
                objective: f64::INFINITY,
            };
        }
    }
    Simplex::build(model, lower, upper).solve(model)
}

/// Solve the LP relaxation with the model's own bounds.
pub fn solve_lp(model: &Model) -> LpResult {
    let lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    solve_relaxation(model, &lower, &upper)
}

struct Simplex {
    /// Tableau: `m` rows × `ncols` columns (structural + slack + artificial).
    t: Vec<Vec<f64>>,
    /// Current right-hand side: value of the basic variable in each row.
    xb: Vec<f64>,
    /// Basic variable per row.
    basis: Vec<usize>,
    /// Upper bound per column (lower bounds are all shifted to 0).
    ub: Vec<f64>,
    /// Whether a nonbasic column currently rests at its upper bound.
    at_upper: Vec<bool>,
    /// Columns that may never enter the basis (artificials after phase 1).
    banned: Vec<bool>,
    /// Number of structural columns (the model's variables).
    nstruct: usize,
    /// Column index where artificials start.
    art_start: usize,
    /// Shift applied to each structural variable (its lower bound).
    shift: Vec<f64>,
}

impl Simplex {
    fn build(model: &Model, lower: &[f64], upper: &[f64]) -> Simplex {
        let n = model.num_vars();
        let m = model.num_constraints();
        let shift: Vec<f64> = lower.to_vec();
        // Row data in shifted space, normalized to rhs >= 0.
        struct Row {
            a: Vec<f64>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(m);
        for c in &model.constraints {
            let mut a = vec![0.0; n];
            for &(v, coeff) in &c.expr.terms {
                a[v.0] += coeff;
            }
            // expr + const (cmp) rhs  →  a·x (cmp) rhs - const; shift x.
            let mut rhs = c.rhs - c.expr.constant;
            for (j, &s) in shift.iter().enumerate() {
                rhs -= a[j] * s;
            }
            let mut cmp = c.cmp;
            if rhs < 0.0 {
                for v in &mut a {
                    *v = -*v;
                }
                rhs = -rhs;
                cmp = match cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
            rows.push(Row { a, cmp, rhs });
        }

        // Column layout: structural | slack/surplus (one per row) | artificials.
        let nslack = m;
        let nart = rows.iter().filter(|r| !matches!(r.cmp, Cmp::Le)).count();
        let ncols = n + nslack + nart;
        let art_start = n + nslack;

        let mut t = vec![vec![0.0; ncols]; m];
        let mut xb = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut ub = vec![f64::INFINITY; ncols];
        for j in 0..n {
            ub[j] = upper[j] - shift[j];
        }
        let mut next_art = art_start;
        for (i, row) in rows.iter().enumerate() {
            t[i][..n].copy_from_slice(&row.a);
            xb[i] = row.rhs;
            match row.cmp {
                Cmp::Le => {
                    t[i][n + i] = 1.0;
                    basis[i] = n + i;
                }
                Cmp::Ge => {
                    t[i][n + i] = -1.0;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }

        Simplex {
            t,
            xb,
            basis,
            ub,
            at_upper: vec![false; ncols],
            banned: vec![false; ncols],
            nstruct: n,
            art_start,
            shift,
        }
    }

    fn ncols(&self) -> usize {
        self.ub.len()
    }

    /// Reduced-cost row for cost vector `c` under the current basis.
    fn reduced_costs(&self, c: &[f64]) -> Vec<f64> {
        let mut d = c.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = c[b];
            if cb != 0.0 {
                for j in 0..self.ncols() {
                    d[j] -= cb * self.t[i][j];
                }
            }
        }
        d
    }

    /// Run the simplex loop for reduced costs `d`, mutating the basis.
    /// Returns `false` if the LP is unbounded in this phase.
    fn iterate(&mut self, d: &mut [f64]) -> bool {
        let ncols = self.ncols();
        let m = self.basis.len();
        let max_iters = 200 * (m + ncols).max(50);
        let bland_after = 10 * (m + ncols).max(50);
        let mut is_basic = vec![false; ncols];
        for &b in &self.basis {
            is_basic[b] = true;
        }
        for iter in 0..max_iters {
            let use_bland = iter >= bland_after;
            // Entering column.
            let mut entering: Option<usize> = None;
            let mut best = EPS;
            for j in 0..ncols {
                if is_basic[j] || self.banned[j] {
                    continue;
                }
                let eligible = if self.at_upper[j] {
                    d[j] > EPS
                } else {
                    d[j] < -EPS
                };
                if !eligible {
                    continue;
                }
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if d[j].abs() > best {
                    best = d[j].abs();
                    entering = Some(j);
                }
            }
            let Some(e) = entering else {
                return true; // optimal for this phase
            };
            let sigma = if self.at_upper[e] { -1.0 } else { 1.0 };

            // Ratio test.
            let mut tstar = self.ub[e]; // bound-flip limit (may be INF)
            let mut pivot_row: Option<usize> = None;
            let mut leave_at_upper = false;
            for i in 0..m {
                let w = sigma * self.t[i][e];
                if w > PIVOT_EPS {
                    let limit = self.xb[i] / w;
                    if limit < tstar - EPS
                        || (limit < tstar + EPS
                            && pivot_row.is_some_and(|r| self.basis[i] < self.basis[r]))
                    {
                        tstar = limit.max(0.0);
                        pivot_row = Some(i);
                        leave_at_upper = false;
                    }
                } else if w < -PIVOT_EPS {
                    let ubb = self.ub[self.basis[i]];
                    if ubb.is_finite() {
                        let limit = (ubb - self.xb[i]) / (-w);
                        if limit < tstar - EPS
                            || (limit < tstar + EPS
                                && pivot_row.is_some_and(|r| self.basis[i] < self.basis[r]))
                        {
                            tstar = limit.max(0.0);
                            pivot_row = Some(i);
                            leave_at_upper = true;
                        }
                    }
                }
            }
            if tstar.is_infinite() {
                return false; // unbounded
            }

            match pivot_row {
                None => {
                    // Bound flip: entering moves to its other bound.
                    for i in 0..m {
                        self.xb[i] -= sigma * tstar * self.t[i][e];
                    }
                    self.at_upper[e] = !self.at_upper[e];
                }
                Some(r) => {
                    // Value the entering variable takes after the move.
                    let e_val = if sigma > 0.0 {
                        tstar
                    } else {
                        self.ub[e] - tstar
                    };
                    for i in 0..m {
                        if i != r {
                            self.xb[i] -= sigma * tstar * self.t[i][e];
                        }
                    }
                    let leaving = self.basis[r];
                    // Pivot algebra.
                    let p = self.t[r][e];
                    debug_assert!(p.abs() > PIVOT_EPS, "pivot on near-zero element");
                    let inv = 1.0 / p;
                    for v in &mut self.t[r] {
                        *v *= inv;
                    }
                    for i in 0..m {
                        if i != r {
                            let f = self.t[i][e];
                            if f != 0.0 {
                                for j in 0..ncols {
                                    self.t[i][j] -= f * self.t[r][j];
                                }
                                self.t[i][e] = 0.0;
                            }
                        }
                    }
                    let f = d[e];
                    if f != 0.0 {
                        for j in 0..ncols {
                            d[j] -= f * self.t[r][j];
                        }
                        d[e] = 0.0;
                    }
                    self.basis[r] = e;
                    self.xb[r] = e_val;
                    self.at_upper[leaving] = leave_at_upper;
                    self.at_upper[e] = false;
                    is_basic[leaving] = false;
                    is_basic[e] = true;
                }
            }
        }
        // Iteration cap reached; treat current point as optimal. With the
        // Bland fallback this is effectively unreachable.
        true
    }

    fn solve(mut self, model: &Model) -> LpResult {
        let ncols = self.ncols();
        let has_artificials = self.art_start < ncols;

        if has_artificials {
            // Phase 1: minimize the sum of artificials.
            let mut c1 = vec![0.0; ncols];
            for j in self.art_start..ncols {
                c1[j] = 1.0;
            }
            let mut d1 = self.reduced_costs(&c1);
            if !self.iterate(&mut d1) {
                // Phase-1 objective is bounded below by 0; cannot happen.
                return LpResult {
                    status: LpStatus::Infeasible,
                    x: Vec::new(),
                    objective: f64::INFINITY,
                };
            }
            let infeas: f64 = self
                .basis
                .iter()
                .enumerate()
                .filter(|(_, &b)| b >= self.art_start)
                .map(|(i, _)| self.xb[i])
                .sum();
            if infeas > 1e-6 {
                return LpResult {
                    status: LpStatus::Infeasible,
                    x: Vec::new(),
                    objective: f64::INFINITY,
                };
            }
            // Pin artificials to zero and ban them from re-entering.
            for j in self.art_start..ncols {
                self.ub[j] = 0.0;
                self.banned[j] = true;
            }
            // Drive basic artificials (at value 0) out where possible.
            for r in 0..self.basis.len() {
                if self.basis[r] < self.art_start {
                    continue;
                }
                // Entering column must currently sit at its lower bound
                // (value 0) so this degenerate pivot leaves the solution
                // unchanged; at-upper columns would enter at the wrong
                // value. If none qualifies, the artificial stays basic at
                // 0 — harmless, since its bound is pinned to 0.
                let basic: Vec<usize> = self.basis.clone();
                if let Some(e) = (0..self.art_start).find(|&j| {
                    !self.banned[j]
                        && !self.at_upper[j]
                        && !basic.contains(&j)
                        && self.t[r][j].abs() > 1e-6
                }) {
                    // Degenerate pivot: entering at value 0.
                    let p = self.t[r][e];
                    let inv = 1.0 / p;
                    for v in &mut self.t[r] {
                        *v *= inv;
                    }
                    let m = self.basis.len();
                    for i in 0..m {
                        if i != r {
                            let f = self.t[i][e];
                            if f != 0.0 {
                                for j in 0..ncols {
                                    self.t[i][j] -= f * self.t[r][j];
                                }
                                self.t[i][e] = 0.0;
                            }
                        }
                    }
                    self.basis[r] = e;
                    self.xb[r] = 0.0;
                    self.at_upper[e] = false;
                }
            }
        }

        // Phase 2: the real objective over structural columns.
        let mut c2 = vec![0.0; ncols];
        for &(v, coeff) in &model.objective.terms {
            c2[v.0] += coeff;
        }
        let mut d2 = self.reduced_costs(&c2);
        if !self.iterate(&mut d2) {
            return LpResult {
                status: LpStatus::Unbounded,
                x: Vec::new(),
                objective: f64::NEG_INFINITY,
            };
        }

        // Extract the solution in original space.
        let mut x = vec![0.0; self.nstruct];
        for j in 0..self.nstruct {
            if self.at_upper[j] && self.ub[j].is_finite() {
                x[j] = self.ub[j];
            }
        }
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.nstruct {
                x[b] = self.xb[i];
            }
        }
        for j in 0..self.nstruct {
            x[j] += self.shift[j];
        }
        let objective = model.objective.eval(&x);
        LpResult {
            status: LpStatus::Optimal,
            x,
            objective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LinExpr, Model};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    #[test]
    fn trivial_bounded_minimum() {
        // min x, 0 <= x <= 5 → 0
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 5.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 0.0);
    }

    #[test]
    fn maximize_via_negation_hits_upper_bound() {
        // min -x, 0 <= x <= 5 → x = 5 (pure bound flip, no constraints)
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 5.0);
        m.set_objective(LinExpr::new().add(x, -1.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[x.index()], 5.0);
        assert_close(r.objective, -5.0);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3a + 5b s.t. a <= 4, 2b <= 12, 3a + 2b <= 18 (Dantzig's
        // example): optimum a=2, b=6, obj=36.
        let mut m = Model::minimize();
        let a = m.continuous("a", 0.0, f64::INFINITY);
        let b = m.continuous("b", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(a, 1.0), Cmp::Le, 4.0);
        m.constrain(LinExpr::new().add(b, 2.0), Cmp::Le, 12.0);
        m.constrain(LinExpr::new().add(a, 3.0).add(b, 2.0), Cmp::Le, 18.0);
        m.set_objective(LinExpr::new().add(a, -3.0).add(b, -5.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[a.index()], 2.0);
        assert_close(r.x[b.index()], 6.0);
        assert_close(r.objective, -36.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + y s.t. x + y = 10, x - y = 2 → x=6, y=4.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Eq, 10.0);
        m.constrain(LinExpr::new().add(x, 1.0).add(y, -1.0), Cmp::Eq, 2.0);
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[x.index()], 6.0);
        assert_close(r.x[y.index()], 4.0);
    }

    #[test]
    fn ge_constraints() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 → x=4? obj: prefer x
        // (cheaper): x=4, y=0, obj 8.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Ge, 4.0);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, 1.0);
        m.set_objective(LinExpr::new().add(x, 2.0).add(y, 3.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 8.0);
        assert_close(r.x[x.index()], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 3
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Le, 1.0);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, 3.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        assert_eq!(solve_lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x, x >= 0 unbounded below.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, 0.0);
        m.set_objective(LinExpr::new().add(x, -1.0));
        assert_eq!(solve_lp(&m).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_shifted() {
        // min x, -3 <= x <= 7, x >= -1 → x = -1.
        let mut m = Model::minimize();
        let x = m.continuous("x", -3.0, 7.0);
        m.constrain(LinExpr::new().add(x, 1.0), Cmp::Ge, -1.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.x[x.index()], -1.0);
    }

    #[test]
    fn constraint_with_constant_term() {
        // min x s.t. (x + 5) >= 8 → x = 3.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        m.constrain(LinExpr::new().add(x, 1.0).plus(5.0), Cmp::Ge, 8.0);
        m.set_objective(LinExpr::new().add(x, 1.0));
        let r = solve_lp(&m);
        assert_close(r.x[x.index()], 3.0);
    }

    #[test]
    fn relaxation_with_overridden_bounds() {
        // Binary x relaxed to [0,1], then fixed to 1.
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        m.constrain(LinExpr::new().add(x, 4.0).add(y, 1.0), Cmp::Ge, 2.0);
        m.set_objective(LinExpr::new().add(x, 1.0).add(y, 1.0));
        // Relaxed: x = 0.5, y = 0 → obj 0.5.
        let r = solve_lp(&m);
        assert_close(r.objective, 0.5);
        // Fix x = 0: y must cover the constraint → obj 2.
        let r0 = solve_relaxation(&m, &[0.0, 0.0], &[0.0, 10.0]);
        assert_close(r0.objective, 2.0);
        // Fix x = 1: obj 1.
        let r1 = solve_relaxation(&m, &[1.0, 0.0], &[1.0, 10.0]);
        assert_close(r1.objective, 1.0);
        // Crossed override bounds → infeasible.
        let rx = solve_relaxation(&m, &[1.0, 0.0], &[0.0, 10.0]);
        assert_eq!(rx.status, LpStatus::Infeasible);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, f64::INFINITY);
        let y = m.continuous("y", 0.0, f64::INFINITY);
        for _ in 0..4 {
            m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Le, 1.0);
        }
        m.constrain(LinExpr::new().add(x, 1.0).add(y, -1.0), Cmp::Le, 0.0);
        m.set_objective(LinExpr::new().add(x, -1.0).add(y, -0.5));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -0.75); // x = y = 0.5
    }

    #[test]
    fn min_max_formulation_like_join_model() {
        // The join cost model's shape: minimize g where g >= load_j for
        // each node j, loads coupled through assignment variables.
        // Two units (costs 3 and 5), two nodes; relaxation splits load
        // evenly: g = 4.
        let mut m = Model::minimize();
        let x: Vec<Vec<_>> = (0..2)
            .map(|i| {
                (0..2)
                    .map(|j| m.continuous(format!("x{i}{j}"), 0.0, 1.0))
                    .collect()
            })
            .collect();
        let g = m.continuous("g", 0.0, f64::INFINITY);
        let costs = [3.0, 5.0];
        for xi in x.iter() {
            let expr = xi.iter().fold(LinExpr::new(), |e, &v| e.add(v, 1.0));
            m.constrain(expr, Cmp::Eq, 1.0);
        }
        for j in 0..2 {
            let mut expr = LinExpr::new().add(g, 1.0);
            for (i, xi) in x.iter().enumerate() {
                expr = expr.add(xi[j], -costs[i]);
            }
            m.constrain(expr, Cmp::Ge, 0.0);
        }
        m.set_objective(LinExpr::new().add(g, 1.0));
        let r = solve_lp(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 4.0);
    }
}
