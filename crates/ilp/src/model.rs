//! Model builder for (integer) linear programs.
//!
//! The physical join planner formulates its cost model as an integer
//! linear program (paper §5.2). The paper solves it with SCIP; this crate
//! is the from-scratch substitute: a model builder, an LP-relaxation
//! simplex solver, and a time-budgeted branch & bound.

use std::fmt;

/// Identifies one decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's index in solution vectors.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Must take value 0 or 1 in integer solutions.
    Binary,
    /// Any value within its bounds.
    Continuous,
}

/// One decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name for diagnostics.
    pub name: String,
    /// Integrality class.
    pub kind: VarKind,
    /// Lower bound (inclusive).
    pub lower: f64,
    /// Upper bound (inclusive; may be `f64::INFINITY`).
    pub upper: f64,
}

/// A linear expression `Σ coeff·var + constant`.
#[derive(Debug, Clone, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms. May contain repeats; they are
    /// summed when the model is compiled.
    pub terms: Vec<(VarId, f64)>,
    /// Additive constant.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// Add `coeff · var` to the expression (builder style).
    pub fn add(mut self, var: VarId, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Add a constant (builder style).
    pub fn plus(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// Evaluate at a point.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * x[v.0]).sum::<f64>()
    }
}

/// The comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// One linear constraint `expr (≤|≥|=) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A minimization (I)LP.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
}

impl Model {
    /// An empty minimization model.
    pub fn minimize() -> Self {
        Model::default()
    }

    /// Add a binary (0/1) variable.
    pub fn binary(&mut self, name: impl Into<String>) -> VarId {
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Binary,
            lower: 0.0,
            upper: 1.0,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add a continuous variable with bounds `[lower, upper]`.
    pub fn continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        assert!(lower <= upper, "variable bounds crossed");
        self.vars.push(Variable {
            name: name.into(),
            kind: VarKind::Continuous,
            lower,
            upper,
        });
        VarId(self.vars.len() - 1)
    }

    /// Add the constraint `expr cmp rhs`.
    pub fn constrain(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Set the objective (minimized).
    pub fn set_objective(&mut self, expr: LinExpr) {
        self.objective = expr;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Access a variable's metadata.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// The objective expression (minimized).
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Evaluate the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.eval(x)
    }

    /// Indices of all binary variables.
    pub fn binary_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
    }

    /// Check a candidate point against every constraint and bound.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            if x[i] < v.lower - tol || x[i] > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Binary && (x[i] - x[i].round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(x);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proved optimal (within tolerance).
    Optimal,
    /// A feasible integer solution was found but optimality was not
    /// proved before the budget ran out.
    Feasible,
    /// The model has no feasible solution.
    Infeasible,
    /// The LP relaxation is unbounded below.
    Unbounded,
    /// The budget ran out before the search found any feasible integer
    /// solution of its own (a caller-supplied warm start, if any, is
    /// still returned in `Solution::values`).
    BudgetExhausted,
}

impl SolveStatus {
    /// True when the solver itself produced a usable integer assignment
    /// (`Optimal` or `Feasible`). `BudgetExhausted` answers false even
    /// though callers may still hold a warm-start incumbent — the
    /// planner's fallback chain uses this to decide which tier actually
    /// produced the plan.
    pub fn found_feasible(&self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible (budget hit)",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::BudgetExhausted => "budget exhausted, no solution",
        };
        f.write_str(s)
    }
}

/// A solver result.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Values per variable (empty unless a solution exists).
    pub values: Vec<f64>,
    /// Objective at `values` (meaningful when a solution exists).
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Le, 5.0);
        m.set_objective(LinExpr::new().add(x, -1.0).add(y, -1.0));
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var(x).kind, VarKind::Binary);
        assert_eq!(m.binary_vars().count(), 1);
    }

    #[test]
    fn lin_expr_eval() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        let e = LinExpr::new().add(x, 2.0).add(y, -1.0).plus(3.0);
        assert_eq!(e.eval(&[1.0, 4.0]), 1.0);
    }

    #[test]
    fn feasibility_checks() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        let y = m.continuous("y", 0.0, 10.0);
        m.constrain(LinExpr::new().add(x, 1.0).add(y, 1.0), Cmp::Le, 5.0);
        m.constrain(LinExpr::new().add(y, 1.0), Cmp::Ge, 2.0);
        assert!(m.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 5.0], 1e-9)); // violates Le
        assert!(!m.is_feasible(&[1.0, 1.0], 1e-9)); // violates Ge
        assert!(!m.is_feasible(&[0.5, 3.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[1.0, 11.0], 1e-9)); // bound
        assert!(!m.is_feasible(&[1.0], 1e-9)); // arity
    }

    #[test]
    #[should_panic(expected = "bounds crossed")]
    fn crossed_bounds_panic() {
        let mut m = Model::minimize();
        m.continuous("bad", 5.0, 1.0);
    }
}
