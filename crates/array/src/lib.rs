//! # sj-array: a chunked multidimensional array storage engine
//!
//! This crate implements the Array Data Model (ADM) substrate of
//! *Skew-Aware Join Optimization for Array Databases* (SIGMOD 2015, §2):
//! a SciDB-like storage engine where
//!
//! * every array has named, ordered **dimensions** (contiguous integer
//!   ranges with a chunk interval) and typed **attributes**;
//! * cells are clustered into multidimensional **chunks**, sorted
//!   C-style within each chunk, and **vertically partitioned** (one
//!   column per attribute);
//! * only occupied cells are stored, so chunk sizes mirror data skew.
//!
//! On top of the storage model it provides the schema-alignment operators
//! the paper's logical join planner composes (Table 1): [`ops::redim`],
//! [`ops::rechunk`], [`ops::hash_partition`], [`ops::sort`], [`ops::scan`],
//! plus general [`ops::filter`]/[`ops::apply`]/[`ops::project`], scalar
//! [`expr`]essions, and the value-distribution [`histogram`]s used for
//! dimension-shape inference.
//!
//! ```
//! use sj_array::{Array, ArraySchema, Value};
//!
//! let schema = ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
//! let array = Array::from_cells(schema, vec![
//!     (vec![1, 2], vec![Value::Int(3), Value::Float(1.1)]),
//!     (vec![5, 5], vec![Value::Int(3), Value::Float(1.4)]),
//! ]).unwrap();
//! assert_eq!(array.chunk_count(), 2);
//! ```

#![warn(missing_docs)]

mod array;
mod batch;
mod chunk;
mod error;
mod histogram;
mod schema;
mod value;

pub mod expr;
pub mod keys;
pub mod ops;
pub mod parallel;

pub use array::Array;
pub use batch::{CellBatch, Column, GatherScratch};
pub use chunk::Chunk;
pub use error::{ArrayError, Result};
pub use expr::{BinOp, Expr};
pub use histogram::{Histogram, DISTINCT_REGISTERS};
pub use schema::{ArraySchema, AttributeDef, DimensionDef};
pub use value::{DataType, Value};
