//! `sort` and `scan` operators.

use crate::array::Array;

/// Sort every chunk of `array` into C-order, returning the sorted array.
/// Each chunk sort is the stable radix sort over normalized coordinate
/// keys ([`crate::keys`]).
///
/// The logical planner inserts this after a hash/nested-loop join whose
/// output chunks came from a `rechunk` (paper §4: "sort the output of a
/// hash join that received its join units from a rechunk operator").
pub fn sort(array: &Array) -> Array {
    let mut out = array.clone();
    out.sort_chunks();
    out
}

/// `scan` is pass-through access to an already-organized array — "no
/// additional cost compared to operators that reorganize the data"
/// (paper Table 1). Provided for plan-symmetry; returns a clone.
pub fn scan(array: &Array) -> Array {
    array.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ArraySchema;
    use crate::value::Value;

    fn unsorted_array() -> Array {
        let schema = ArraySchema::parse("A<v:int>[i=1,10,10]").unwrap();
        let mut a = Array::new(schema);
        for i in (1..=10).rev() {
            a.insert(&[i], &[Value::Int(i)]).unwrap();
        }
        a
    }

    #[test]
    fn sort_orders_all_chunks() {
        let a = unsorted_array();
        assert!(!a.all_sorted());
        let sorted = sort(&a);
        assert!(sorted.all_sorted());
        assert_eq!(sorted.cell_count(), 10);
        // Original untouched.
        assert!(!a.all_sorted());
    }

    #[test]
    fn scan_is_identity() {
        let a = unsorted_array();
        let s = scan(&a);
        assert_eq!(s, a);
    }
}
