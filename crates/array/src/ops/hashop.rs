//! The `hash` operator: partition an array's cells into hash buckets.
//!
//! "The hash operator creates join units as hash buckets. This slice
//! mapping hashes a source array's cells within O(n) time. It produces
//! hash buckets that are unordered and dimension-less." (paper §4)
//!
//! Buckets retain the cell's full payload — its source coordinates become
//! ordinary integer columns — so downstream join algorithms can still emit
//! any dimension or attribute the output schema needs.

use std::hash::{Hash, Hasher};

use crate::array::Array;
use crate::batch::CellBatch;
use crate::error::{ArrayError, Result};
use crate::keys;
use crate::ops::kernels::{flatten_into, scatter_into};
use crate::ops::ColumnRef;
use crate::value::{DataType, Value};

/// The output of [`hash_partition`]: `nbuckets` unordered cell batches.
///
/// Every batch has the source array's dimensions re-materialized as leading
/// attribute columns (dimension-less layout), followed by the source
/// attributes.
#[derive(Debug, Clone)]
pub struct BucketSet {
    /// Names of the columns in each bucket batch, in order: source
    /// dimensions first, then source attributes.
    pub column_names: Vec<String>,
    /// Types of the columns in each bucket batch.
    pub column_types: Vec<DataType>,
    /// Indices (into the bucket columns) of the hash key columns.
    pub key_columns: Vec<usize>,
    /// The buckets. Length is the requested bucket count.
    pub buckets: Vec<CellBatch>,
}

impl BucketSet {
    /// Total cells across all buckets.
    pub fn cell_count(&self) -> usize {
        self.buckets.iter().map(CellBatch::len).sum()
    }

    /// Per-bucket cell counts.
    pub fn sizes(&self) -> Vec<usize> {
        self.buckets.iter().map(CellBatch::len).collect()
    }
}

/// Deterministic hash of a sequence of key values.
///
/// Uses an FNV-1a core with the [`Value`] hash (which normalizes integral
/// floats to integers), so `Int(2)` and `Float(2.0)` land in the same
/// bucket — required for mixed-type equi-joins.
pub fn hash_key(values: &[Value]) -> u64 {
    struct Fnv(keys::Fnv);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0 .0
        }
        fn write(&mut self, bytes: &[u8]) {
            self.0.write(bytes);
        }
    }
    let mut h = Fnv(keys::Fnv::new());
    for v in values {
        v.hash(&mut h);
    }
    // Final avalanche so low bits are well-mixed for `% nbuckets`.
    // [`keys::hash_row`] replicates this whole pipeline columnar-side;
    // the two must stay bit-identical (pinned by a test in `keys`).
    keys::avalanche(h.finish())
}

/// Partition every cell of `array` into `nbuckets` buckets keyed by the
/// given columns.
pub fn hash_partition(array: &Array, keys: &[ColumnRef], nbuckets: usize) -> Result<BucketSet> {
    let schema = &array.schema;
    let nbuckets = nbuckets.max(1);
    let ndims = schema.ndims();

    let mut column_names: Vec<String> = Vec::with_capacity(ndims + schema.nattrs());
    let mut column_types: Vec<DataType> = Vec::with_capacity(ndims + schema.nattrs());
    for d in &schema.dims {
        column_names.push(d.name.clone());
        column_types.push(DataType::Int64);
    }
    for a in &schema.attrs {
        column_names.push(a.name.clone());
        column_types.push(a.dtype);
    }
    let key_columns: Vec<usize> = keys
        .iter()
        .map(|k| match k {
            ColumnRef::Dim(d) => *d,
            ColumnRef::Attr(a) => ndims + *a,
        })
        .collect();

    let mut buckets: Vec<CellBatch> = (0..nbuckets)
        .map(|_| CellBatch::new(0, &column_types))
        .collect();

    // Flatten each chunk into the dimension-less bucket layout, then route
    // rows by key hash — both steps are the shared kernels the join
    // executor's slice mapping uses.
    let mut flat = CellBatch::new(0, &column_types);
    for (_, chunk) in array.chunks() {
        flat.clear();
        flatten_into(&chunk.cells, &mut flat)?;
        scatter_into::<ArrayError>(&flat, &mut buckets, |f, row| {
            Ok((keys::hash_row(f, &key_columns, row) % nbuckets as u64) as usize)
        })?;
    }

    Ok(BucketSet {
        column_names,
        column_types,
        key_columns,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::schema::ArraySchema;

    fn sample() -> Array {
        let schema = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        Array::from_cells(
            schema,
            (1..=100).map(|i| (vec![i], vec![Value::Int(i % 7)])),
        )
        .unwrap()
    }

    #[test]
    fn partition_preserves_all_cells() {
        let a = sample();
        let keys = [ColumnRef::Attr(0)];
        let bs = hash_partition(&a, &keys, 16).unwrap();
        assert_eq!(bs.buckets.len(), 16);
        assert_eq!(bs.cell_count(), 100);
        assert_eq!(bs.column_names, vec!["i", "v"]);
        assert_eq!(bs.key_columns, vec![1]);
    }

    #[test]
    fn equal_keys_share_a_bucket() {
        let a = sample();
        let bs = hash_partition(&a, &[ColumnRef::Attr(0)], 8).unwrap();
        // All cells with v = 3 must be in one bucket.
        let mut home = None;
        for (b, bucket) in bs.buckets.iter().enumerate() {
            for row in 0..bucket.len() {
                if bucket.attrs[1].get(row) == Value::Int(3) {
                    match home {
                        None => home = Some(b),
                        Some(h) => assert_eq!(h, b),
                    }
                }
            }
        }
        assert!(home.is_some());
    }

    #[test]
    fn buckets_are_dimensionless() {
        let a = sample();
        let bs = hash_partition(&a, &[ColumnRef::Attr(0)], 4).unwrap();
        for bucket in &bs.buckets {
            assert_eq!(bucket.ndims(), 0);
            assert_eq!(bucket.nattrs(), 2); // i materialized + v
        }
    }

    #[test]
    fn hashing_on_dimension_keys() {
        let a = sample();
        let bs = hash_partition(&a, &[ColumnRef::Dim(0)], 4).unwrap();
        assert_eq!(bs.cell_count(), 100);
        assert_eq!(bs.key_columns, vec![0]);
    }

    #[test]
    fn integral_float_and_int_keys_collide() {
        assert_eq!(hash_key(&[Value::Int(42)]), hash_key(&[Value::Float(42.0)]));
        assert_ne!(hash_key(&[Value::Int(42)]), hash_key(&[Value::Int(43)]));
    }

    #[test]
    fn hash_is_deterministic_across_calls() {
        let a = sample();
        let b1 = hash_partition(&a, &[ColumnRef::Attr(0)], 8).unwrap();
        let b2 = hash_partition(&a, &[ColumnRef::Attr(0)], 8).unwrap();
        assert_eq!(b1.sizes(), b2.sizes());
    }

    #[test]
    fn zero_buckets_clamps_to_one() {
        let a = sample();
        let bs = hash_partition(&a, &[ColumnRef::Attr(0)], 0).unwrap();
        assert_eq!(bs.buckets.len(), 1);
        assert_eq!(bs.cell_count(), 100);
    }

    #[test]
    fn spread_is_reasonably_even_for_distinct_keys() {
        // 100 distinct dimension keys over 4 buckets: no bucket should be
        // pathologically empty or hold the majority.
        let a = sample();
        let bs = hash_partition(&a, &[ColumnRef::Dim(0)], 4).unwrap();
        for &s in &bs.sizes() {
            assert!(s > 5 && s < 60, "bucket size {s} out of expected band");
        }
    }
}
