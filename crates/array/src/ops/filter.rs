//! `filter`, `apply`, and `project`: cell-level operators.
//!
//! Thin whole-array wrappers over the batch kernels in [`super::kernels`];
//! the streaming pipeline in `sj-core` drives the same kernels per batch.

use crate::array::Array;
use crate::error::{ArrayError, Result};
use crate::expr::Expr;
use crate::ops::kernels::{batch_for, organize, ApplyKernel, FilterKernel};

/// Keep only the cells for which `predicate` evaluates to `true`.
///
/// This is the AFL `filter(A, v1 > 5)` from paper §2.2. The output schema
/// equals the input schema.
pub fn filter(array: &Array, predicate: &Expr) -> Result<Array> {
    let kernel = FilterKernel::compile(&array.schema, predicate)?;
    let mut out = batch_for(&array.schema);
    for (_, chunk) in array.chunks() {
        kernel.apply(&chunk.cells, &mut out)?;
    }
    organize(array.schema.clone(), &out, true)
}

/// Compute new attributes from expressions, keeping the dimension space.
///
/// Each `(name, expr)` pair adds an attribute; the output schema has
/// exactly those attributes (the paper's SELECT lists compute derived
/// values such as `Band2.reflectance - Band1.reflectance`).
pub fn apply(array: &Array, outputs: &[(String, Expr)]) -> Result<Array> {
    let kernel = ApplyKernel::compile(&array.schema, outputs, false)?;
    let mut out = kernel.output_batch();
    for (_, chunk) in array.chunks() {
        kernel.apply(&chunk.cells, &mut out)?;
    }
    organize(kernel.schema().clone(), &out, true)
}

/// Keep only the named attributes (vertical projection).
///
/// Array chunks are vertically partitioned precisely so joins can move
/// "only the necessary attributes" (paper §2.1); `project` models that
/// attribute subsetting.
pub fn project(array: &Array, attr_names: &[&str]) -> Result<Array> {
    let exprs: Vec<(String, Expr)> = attr_names
        .iter()
        .map(|&n| (n.to_string(), Expr::col(n)))
        .collect();
    // Validate that each name is an attribute, not a dimension.
    for &n in attr_names {
        if !array.schema.has_attr(n) {
            return Err(ArrayError::NoSuchAttribute(n.to_string()));
        }
    }
    apply(array, &exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::schema::ArraySchema;
    use crate::value::Value;

    fn sample() -> Array {
        let schema = ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
        Array::from_cells(
            schema,
            vec![
                (vec![1, 2], vec![Value::Int(3), Value::Float(1.1)]),
                (vec![2, 2], vec![Value::Int(7), Value::Float(1.3)]),
                (vec![5, 5], vec![Value::Int(9), Value::Float(2.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_v1_gt_5() {
        // SELECT * FROM A WHERE v1 > 5
        let a = sample();
        let out = filter(&a, &Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5))).unwrap();
        assert_eq!(out.cell_count(), 2);
        assert!(out.get(&[1, 2]).unwrap().is_none());
        assert!(out.get(&[2, 2]).unwrap().is_some());
        assert_eq!(out.schema, a.schema);
    }

    #[test]
    fn filter_rejects_non_boolean_predicate() {
        let a = sample();
        assert!(filter(&a, &Expr::col("v1")).is_err());
    }

    #[test]
    fn apply_computes_derived_attribute() {
        let a = sample();
        let out = apply(
            &a,
            &[(
                "ratio".into(),
                Expr::binary(BinOp::Div, Expr::col("v2"), Expr::col("v1")),
            )],
        )
        .unwrap();
        assert_eq!(out.schema.nattrs(), 1);
        assert_eq!(out.schema.attrs[0].name, "ratio");
        let v = out.get(&[2, 2]).unwrap().unwrap()[0].as_float().unwrap();
        assert!((v - 1.3 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn project_subsets_attributes() {
        let a = sample();
        let out = project(&a, &["v2"]).unwrap();
        assert_eq!(out.schema.nattrs(), 1);
        assert_eq!(out.cell_count(), 3);
        assert_eq!(out.get(&[1, 2]).unwrap(), Some(vec![Value::Float(1.1)]));
        // Projection shrinks stored bytes (vertical partitioning payoff).
        assert!(out.byte_size() < a.byte_size());
    }

    #[test]
    fn project_rejects_dimension_names() {
        let a = sample();
        assert!(project(&a, &["i"]).is_err());
        assert!(project(&a, &["missing"]).is_err());
    }
}
