//! `filter`, `apply`, and `project`: cell-level operators.

use crate::array::Array;
use crate::error::{ArrayError, Result};
use crate::expr::Expr;
use crate::schema::{ArraySchema, AttributeDef};
use crate::value::Value;

/// Keep only the cells for which `predicate` evaluates to `true`.
///
/// This is the AFL `filter(A, v1 > 5)` from paper §2.2. The output schema
/// equals the input schema.
pub fn filter(array: &Array, predicate: &Expr) -> Result<Array> {
    let bound = predicate.bind(&array.schema)?;
    let mut out = Array::new(array.schema.clone());
    let mut values: Vec<Value> = Vec::with_capacity(array.schema.nattrs());
    for (_, chunk) in array.chunks() {
        let cells = &chunk.cells;
        for row in 0..cells.len() {
            match bound.eval(cells, row)? {
                Value::Bool(true) => {
                    values.clear();
                    for a in 0..cells.nattrs() {
                        values.push(cells.attrs[a].get(row));
                    }
                    let coord = cells.coord(row);
                    out.insert(&coord, &values)?;
                }
                Value::Bool(false) => {}
                other => {
                    return Err(ArrayError::Eval(format!(
                        "filter predicate evaluated to non-boolean {other}"
                    )))
                }
            }
        }
    }
    out.sort_chunks();
    Ok(out)
}

/// Compute new attributes from expressions, keeping the dimension space.
///
/// Each `(name, expr)` pair adds an attribute; the output schema has
/// exactly those attributes (the paper's SELECT lists compute derived
/// values such as `Band2.reflectance - Band1.reflectance`).
pub fn apply(array: &Array, outputs: &[(String, Expr)]) -> Result<Array> {
    let mut attrs = Vec::with_capacity(outputs.len());
    let mut bound = Vec::with_capacity(outputs.len());
    for (name, expr) in outputs {
        let dtype = expr.result_type(&array.schema)?;
        attrs.push(AttributeDef::new(name.clone(), dtype));
        bound.push(expr.bind(&array.schema)?);
    }
    let schema = ArraySchema::new(array.schema.name.clone(), array.schema.dims.clone(), attrs)?;
    let mut out = Array::new(schema);
    let mut values: Vec<Value> = Vec::with_capacity(outputs.len());
    for (_, chunk) in array.chunks() {
        let cells = &chunk.cells;
        for row in 0..cells.len() {
            values.clear();
            for b in &bound {
                values.push(b.eval(cells, row)?);
            }
            let coord = cells.coord(row);
            out.insert(&coord, &values)?;
        }
    }
    out.sort_chunks();
    Ok(out)
}

/// Keep only the named attributes (vertical projection).
///
/// Array chunks are vertically partitioned precisely so joins can move
/// "only the necessary attributes" (paper §2.1); `project` models that
/// attribute subsetting.
pub fn project(array: &Array, attr_names: &[&str]) -> Result<Array> {
    let exprs: Vec<(String, Expr)> = attr_names
        .iter()
        .map(|&n| (n.to_string(), Expr::col(n)))
        .collect();
    // Validate that each name is an attribute, not a dimension.
    for &n in attr_names {
        if !array.schema.has_attr(n) {
            return Err(ArrayError::NoSuchAttribute(n.to_string()));
        }
    }
    apply(array, &exprs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn sample() -> Array {
        let schema = ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
        Array::from_cells(
            schema,
            vec![
                (vec![1, 2], vec![Value::Int(3), Value::Float(1.1)]),
                (vec![2, 2], vec![Value::Int(7), Value::Float(1.3)]),
                (vec![5, 5], vec![Value::Int(9), Value::Float(2.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_v1_gt_5() {
        // SELECT * FROM A WHERE v1 > 5
        let a = sample();
        let out = filter(&a, &Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5))).unwrap();
        assert_eq!(out.cell_count(), 2);
        assert!(out.get(&[1, 2]).unwrap().is_none());
        assert!(out.get(&[2, 2]).unwrap().is_some());
        assert_eq!(out.schema, a.schema);
    }

    #[test]
    fn filter_rejects_non_boolean_predicate() {
        let a = sample();
        assert!(filter(&a, &Expr::col("v1")).is_err());
    }

    #[test]
    fn apply_computes_derived_attribute() {
        let a = sample();
        let out = apply(
            &a,
            &[(
                "ratio".into(),
                Expr::binary(BinOp::Div, Expr::col("v2"), Expr::col("v1")),
            )],
        )
        .unwrap();
        assert_eq!(out.schema.nattrs(), 1);
        assert_eq!(out.schema.attrs[0].name, "ratio");
        let v = out.get(&[2, 2]).unwrap().unwrap()[0].as_float().unwrap();
        assert!((v - 1.3 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn project_subsets_attributes() {
        let a = sample();
        let out = project(&a, &["v2"]).unwrap();
        assert_eq!(out.schema.nattrs(), 1);
        assert_eq!(out.cell_count(), 3);
        assert_eq!(
            out.get(&[1, 2]).unwrap(),
            Some(vec![Value::Float(1.1)])
        );
        // Projection shrinks stored bytes (vertical partitioning payoff).
        assert!(out.byte_size() < a.byte_size());
    }

    #[test]
    fn project_rejects_dimension_names() {
        let a = sample();
        assert!(project(&a, &["i"]).is_err());
        assert!(project(&a, &["missing"]).is_err());
    }
}
