//! `redim` and `rechunk`: re-organizing an array to a new schema.
//!
//! `redim` "converts one or more attributes of array α into dimensions,
//! producing ordered chunks as its output" (paper §4). It iterates over the
//! cells, uses a slice function to assign each cell into a new chunk
//! (O(n)), then sorts each chunk (n/c · log(n/c) per chunk).
//!
//! `rechunk` performs the same cell-to-chunk assignment but skips the sort,
//! producing unordered chunks — profitable when the join is selective and
//! it is cheaper to sort the (fewer) output cells instead (paper §4).
//!
//! Both are thin wrappers over [`RedimKernel`], which the streaming
//! pipeline applies per batch.

use crate::array::Array;
use crate::error::Result;
use crate::ops::kernels::{organize, RedimKernel};
use crate::schema::ArraySchema;

pub use crate::ops::kernels::RedimPolicy;

/// Redimension `array` to `target`, producing ordered chunks.
///
/// Every target dimension/attribute must share a name with a source
/// dimension or attribute; attributes promoted to dimensions must hold
/// integral values.
pub fn redim(array: &Array, target: &ArraySchema, policy: RedimPolicy) -> Result<Array> {
    reassign(array, target, policy, true)
}

/// Re-tile `array` to `target`'s chunk intervals without sorting.
pub fn rechunk(array: &Array, target: &ArraySchema, policy: RedimPolicy) -> Result<Array> {
    reassign(array, target, policy, false)
}

fn reassign(
    array: &Array,
    target: &ArraySchema,
    policy: RedimPolicy,
    ordered: bool,
) -> Result<Array> {
    let kernel = RedimKernel::compile(&array.schema, target)?;
    let mut out = kernel.output_batch();
    for (_, chunk) in array.chunks() {
        kernel.apply(policy, &chunk.cells, &mut out)?;
    }
    organize(target.clone(), &out, ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    /// Paper §2.3.1 example: B<v1:int, v2:float, i:int>[j=1,6,3] is
    /// redimensioned to <v1:int, v2:float>[i=1,6,3, j=1,6,3] so it can be
    /// merge-joined with A.
    fn source_b() -> Array {
        let schema = ArraySchema::parse("B<v1:int, v2:float, i:int>[j=1,6,3]").unwrap();
        Array::from_cells(
            schema,
            vec![
                (
                    vec![1],
                    vec![Value::Int(3), Value::Float(1.1), Value::Int(2)],
                ),
                (
                    vec![4],
                    vec![Value::Int(1), Value::Float(4.7), Value::Int(5)],
                ),
                (
                    vec![6],
                    vec![Value::Int(7), Value::Float(0.4), Value::Int(1)],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn redim_promotes_attribute_to_dimension() {
        let b = source_b();
        let target = ArraySchema::parse("B2<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
        let out = redim(&b, &target, RedimPolicy::Strict).unwrap();
        assert_eq!(out.cell_count(), 3);
        assert!(out.all_sorted());
        out.validate().unwrap();
        // (i=2, j=1) holds the first cell's values.
        assert_eq!(
            out.get(&[2, 1]).unwrap(),
            Some(vec![Value::Int(3), Value::Float(1.1)])
        );
        assert_eq!(
            out.get(&[1, 6]).unwrap(),
            Some(vec![Value::Int(7), Value::Float(0.4)])
        );
    }

    #[test]
    fn redim_demotes_dimension_to_attribute() {
        let b = source_b();
        // Flatten to a 1-cell-per-j array keyed by i, keeping j as attr.
        let target = ArraySchema::parse("B3<j:int, v1:int>[i=1,6,1]").unwrap();
        let out = redim(&b, &target, RedimPolicy::Strict).unwrap();
        assert_eq!(out.cell_count(), 3);
        assert_eq!(
            out.get(&[5]).unwrap(),
            Some(vec![Value::Int(4), Value::Int(1)])
        );
    }

    #[test]
    fn redim_out_of_bounds_strict_errors_drop_drops() {
        let b = source_b();
        // i only ranges to 4 here, so the cell with i=5 is out of bounds.
        let target = ArraySchema::parse("B4<v1:int, v2:float>[i=1,4,2, j=1,6,3]").unwrap();
        assert!(redim(&b, &target, RedimPolicy::Strict).is_err());
        let out = redim(&b, &target, RedimPolicy::DropOutOfBounds).unwrap();
        assert_eq!(out.cell_count(), 2);
    }

    #[test]
    fn redim_rejects_unmapped_target_columns() {
        let b = source_b();
        let target = ArraySchema::parse("B5<zzz:int>[i=1,6,3]").unwrap();
        assert!(redim(&b, &target, RedimPolicy::Strict).is_err());
    }

    #[test]
    fn redim_rejects_non_integral_dimension_values() {
        let schema = ArraySchema::parse("F<x:float>[k=1,3,3]").unwrap();
        let f = Array::from_cells(schema, vec![(vec![1], vec![Value::Float(1.5)])]).unwrap();
        let target = ArraySchema::parse("F2<k:int>[x=1,10,5]").unwrap();
        assert!(redim(&f, &target, RedimPolicy::Strict).is_err());
    }

    #[test]
    fn rechunk_retiles_without_sorting() {
        let schema = ArraySchema::parse("A<v:int>[i=1,100,10]").unwrap();
        // Insert descending so chunks would need sorting.
        let cells: Vec<_> = (1..=100)
            .rev()
            .map(|i| (vec![i], vec![Value::Int(i)]))
            .collect();
        let mut a = Array::new(schema);
        for (c, v) in cells {
            a.insert(&c, &v).unwrap();
        }
        let target = ArraySchema::parse("A2<v:int>[i=1,100,25]").unwrap();
        let out = rechunk(&a, &target, RedimPolicy::Strict).unwrap();
        assert_eq!(out.cell_count(), 100);
        assert_eq!(out.chunk_count(), 4);
        assert!(!out.all_sorted());
        // redim on the same input produces sorted chunks.
        let sorted = redim(&a, &target, RedimPolicy::Strict).unwrap();
        assert!(sorted.all_sorted());
    }

    #[test]
    fn redim_allows_duplicate_coordinates_for_join_units() {
        // Two cells share attribute value v=7; promoting v to a dimension
        // puts both at coordinate 7 — allowed (join units are bags).
        let schema = ArraySchema::parse("A<v:int, tag:int>[i=1,10,10]").unwrap();
        let a = Array::from_cells(
            schema,
            vec![
                (vec![1], vec![Value::Int(7), Value::Int(100)]),
                (vec![2], vec![Value::Int(7), Value::Int(200)]),
            ],
        )
        .unwrap();
        let target = ArraySchema::parse("J<i:int, tag:int>[v=1,10,5]").unwrap();
        let out = redim(&a, &target, RedimPolicy::Strict).unwrap();
        assert_eq!(out.cell_count(), 2);
        // Both landed in the same chunk at the same coordinate.
        let (_, chunk) = out.chunks().next().unwrap();
        assert_eq!(chunk.cell_count(), 2);
        assert_eq!(chunk.cells.coord(0), vec![7]);
        assert_eq!(chunk.cells.coord(1), vec![7]);
    }
}
