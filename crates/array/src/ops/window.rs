//! `between` (spatial windowing) and `aggregate`: the remaining everyday
//! ADM operators science workflows compose around joins.

use crate::array::Array;
use crate::error::{ArrayError, Result};
use crate::ops::kernels::{batch_for, organize, WindowKernel};
use crate::value::Value;

/// Keep only cells inside the inclusive hyper-rectangle
/// `[low[d], high[d]]` per dimension — SciDB's `between`.
///
/// Bounds are clamped to the array's dimension ranges; the output keeps
/// the input schema (chunks outside the window simply disappear, chunks
/// straddling it shrink).
pub fn between(array: &Array, low: &[i64], high: &[i64]) -> Result<Array> {
    let kernel = WindowKernel::compile(&array.schema, low, high)?;
    let mut out = batch_for(&array.schema);
    for (_, chunk) in array.chunks() {
        // Skip chunks entirely outside the window.
        let extents = array
            .schema
            .dims
            .iter()
            .enumerate()
            .map(|(d, dim)| (dim.chunk_start(chunk.pos[d]), dim.chunk_end(chunk.pos[d])));
        if !kernel.intersects(extents) {
            continue;
        }
        kernel.apply(&chunk.cells, &mut out)?;
    }
    organize(array.schema.clone(), &out, true)
}

/// An aggregate function over one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Number of occupied cells (attribute-independent).
    Count,
    /// Sum of the attribute.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggFn {
    /// Parse an aggregate name (`count`, `sum`, `avg`, `min`, `max`).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Ok(AggFn::Count),
            "sum" => Ok(AggFn::Sum),
            "avg" | "mean" => Ok(AggFn::Avg),
            "min" => Ok(AggFn::Min),
            "max" => Ok(AggFn::Max),
            other => Err(ArrayError::Parse(format!("unknown aggregate `{other}`"))),
        }
    }
}

/// Compute a whole-array aggregate over the named attribute.
///
/// Returns `Value::Int` for `Count`, `Value::Float` for `Sum`/`Avg`, and
/// the attribute's own type for `Min`/`Max`. Aggregating an empty array
/// yields `Count = 0` and an error for the others.
pub fn aggregate(array: &Array, func: AggFn, attr: &str) -> Result<Value> {
    if func == AggFn::Count {
        return Ok(Value::Int(array.cell_count() as i64));
    }
    let idx = array.schema.attr_index(attr)?;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for (_, chunk) in array.chunks() {
        let col = &chunk.cells.attrs[idx];
        for row in 0..col.len() {
            let v = col.get(row);
            match func {
                AggFn::Sum | AggFn::Avg => {
                    sum += v.as_float().ok_or_else(|| {
                        ArrayError::Eval(format!("cannot sum non-numeric value {v}"))
                    })?;
                    count += 1;
                }
                AggFn::Min => {
                    min = Some(match min.take() {
                        None => v,
                        Some(m) => {
                            if crate::expr::compare_values(&v, &m)? == std::cmp::Ordering::Less {
                                v
                            } else {
                                m
                            }
                        }
                    });
                }
                AggFn::Max => {
                    max = Some(match max.take() {
                        None => v,
                        Some(m) => {
                            if crate::expr::compare_values(&v, &m)? == std::cmp::Ordering::Greater {
                                v
                            } else {
                                m
                            }
                        }
                    });
                }
                AggFn::Count => unreachable!(),
            }
        }
    }
    match func {
        AggFn::Sum => Ok(Value::Float(sum)),
        AggFn::Avg => {
            if count == 0 {
                Err(ArrayError::Eval("avg of an empty array".into()))
            } else {
                Ok(Value::Float(sum / count as f64))
            }
        }
        AggFn::Min => min.ok_or_else(|| ArrayError::Eval("min of an empty array".into())),
        AggFn::Max => max.ok_or_else(|| ArrayError::Eval("max of an empty array".into())),
        AggFn::Count => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ArraySchema;

    fn grid() -> Array {
        let schema = ArraySchema::parse("G<v:int>[i=1,8,4, j=1,8,4]").unwrap();
        Array::from_cells(
            schema,
            (1..=8i64)
                .flat_map(|i| (1..=8i64).map(move |j| (vec![i, j], vec![Value::Int(i * 10 + j)]))),
        )
        .unwrap()
    }

    #[test]
    fn between_selects_window() {
        let g = grid();
        let w = between(&g, &[2, 3], &[4, 5]).unwrap();
        assert_eq!(w.cell_count(), 9);
        assert!(w.get(&[2, 3]).unwrap().is_some());
        assert!(w.get(&[1, 3]).unwrap().is_none());
        assert!(w.get(&[5, 5]).unwrap().is_none());
        w.validate().unwrap();
    }

    #[test]
    fn between_whole_array_is_identity() {
        let g = grid();
        let w = between(&g, &[1, 1], &[8, 8]).unwrap();
        assert_eq!(w.cell_count(), g.cell_count());
    }

    #[test]
    fn between_rejects_bad_windows() {
        let g = grid();
        assert!(between(&g, &[3], &[4, 5]).is_err());
        assert!(between(&g, &[5, 5], &[4, 4]).is_err());
    }

    #[test]
    fn between_skips_disjoint_chunks() {
        let g = grid();
        // Window entirely in the first chunk.
        let w = between(&g, &[1, 1], &[2, 2]).unwrap();
        assert_eq!(w.cell_count(), 4);
        assert_eq!(w.chunk_count(), 1);
    }

    #[test]
    fn aggregates() {
        let g = grid();
        assert_eq!(aggregate(&g, AggFn::Count, "v").unwrap(), Value::Int(64));
        assert_eq!(aggregate(&g, AggFn::Min, "v").unwrap(), Value::Int(11));
        assert_eq!(aggregate(&g, AggFn::Max, "v").unwrap(), Value::Int(88));
        let sum = aggregate(&g, AggFn::Sum, "v").unwrap().as_float().unwrap();
        let expect: i64 = (1..=8).flat_map(|i| (1..=8).map(move |j| i * 10 + j)).sum();
        assert_eq!(sum, expect as f64);
        let avg = aggregate(&g, AggFn::Avg, "v").unwrap().as_float().unwrap();
        assert!((avg - expect as f64 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_empty_and_errors() {
        let empty = Array::new(ArraySchema::parse("E<v:int>[i=1,4,2]").unwrap());
        assert_eq!(aggregate(&empty, AggFn::Count, "v").unwrap(), Value::Int(0));
        assert!(aggregate(&empty, AggFn::Avg, "v").is_err());
        assert!(aggregate(&empty, AggFn::Min, "v").is_err());
        let g = grid();
        assert!(aggregate(&g, AggFn::Sum, "missing").is_err());
    }

    #[test]
    fn agg_fn_parsing() {
        assert_eq!(AggFn::parse("SUM").unwrap(), AggFn::Sum);
        assert_eq!(AggFn::parse("count").unwrap(), AggFn::Count);
        assert!(AggFn::parse("median").is_err());
    }
}
