//! Reusable batch kernels.
//!
//! Each kernel is compiled once against a schema and then applied to any
//! number of [`CellBatch`]es, **appending** its output rows into a
//! caller-owned buffer. That shape lets three consumers share one
//! implementation:
//!
//! * the whole-array operator functions (`ops::filter`, `ops::apply`,
//!   `ops::redim`, …), which loop a kernel over an array's chunks and then
//!   [`organize`] the result;
//! * the streaming `BatchOperator` pipeline in `sj-core`, which re-applies a
//!   kernel per pulled batch into a reused buffer (no per-batch allocation);
//! * the join executor's slice-mapping and output-organization phases
//!   ([`flatten_into`], [`scatter_into`], [`organize`]).
//!
//! Row ordering inside [`organize`] — chunk-id regrouping and the final
//! per-chunk C-order sort — runs on the normalized-key radix kernels of
//! [`crate::keys`] (comparator fallback for keys beyond the width
//! budget), so every consumer above gets the columnar sort path.

use crate::array::Array;
use crate::batch::{CellBatch, Column};
use crate::error::{ArrayError, Result};
use crate::expr::{BinOp, BoundExpr, Expr};
use crate::keys::{self, encode_f64};
use crate::schema::{ArraySchema, AttributeDef};
use crate::value::{DataType, Value};

/// Column operand of a fast-path filter comparison.
#[derive(Debug, Clone, Copy)]
enum FastCol {
    Dim(usize),
    IntAttr(usize),
    FloatAttr(usize),
}

/// A `column <op> literal` comparison over a numeric column, recognized
/// at compile time so [`FilterKernel::apply`] can run a chunked columnar
/// select instead of the per-row expression interpreter. `op` is
/// normalized so the column is always on the left.
#[derive(Debug, Clone)]
struct FastCmp {
    col: FastCol,
    op: BinOp,
    lit: Value,
}

/// Append to `idx` the positions of `vals` where `pred` holds, writing
/// the candidate index unconditionally and advancing by the predicate's
/// truth value — a branch-free inner loop the compiler autovectorizes
/// (verified by the `chunked/filter_int` microbench; see EXPERIMENTS.md).
fn select_idx<T: Copy>(vals: &[T], idx: &mut Vec<usize>, pred: impl Fn(T) -> bool) {
    idx.clear();
    idx.resize(vals.len(), 0);
    let mut m = 0usize;
    for (i, &x) in vals.iter().enumerate() {
        idx[m] = i;
        m += usize::from(pred(x));
    }
    idx.truncate(m);
}

/// Monomorphize one branch-free select per comparison operator; `$key`
/// maps each element into a domain whose natural order equals
/// [`crate::expr::compare_values`] order (identity for `i64`,
/// [`encode_f64`] for floats — unsigned order is IEEE totalOrder).
macro_rules! select_by_op {
    ($vals:expr, $idx:expr, $op:expr, $key:expr, $lit:expr) => {{
        let key = $key;
        let lit = $lit;
        match $op {
            BinOp::Eq => select_idx($vals, $idx, |x| key(x) == lit),
            BinOp::Ne => select_idx($vals, $idx, |x| key(x) != lit),
            BinOp::Lt => select_idx($vals, $idx, |x| key(x) < lit),
            BinOp::Le => select_idx($vals, $idx, |x| key(x) <= lit),
            BinOp::Gt => select_idx($vals, $idx, |x| key(x) > lit),
            BinOp::Ge => select_idx($vals, $idx, |x| key(x) >= lit),
            _ => unreachable!("fast filter ops are comparisons"),
        }
    }};
}

/// A compiled `filter` predicate: appends the rows of a batch for which the
/// predicate evaluates to `true`.
#[derive(Debug)]
pub struct FilterKernel {
    bound: BoundExpr,
    fast: Option<FastCmp>,
}

impl FilterKernel {
    /// Bind `predicate` against `schema`.
    pub fn compile(schema: &ArraySchema, predicate: &Expr) -> Result<FilterKernel> {
        let bound = predicate.bind(schema)?;
        let fast = Self::detect_fast(&bound);
        Ok(FilterKernel { bound, fast })
    }

    /// Recognize `column <cmp> literal` (either operand order) over a
    /// numeric column. Such predicates are total — they always evaluate
    /// to a boolean, never to an error — so the columnar path needs no
    /// per-row error handling.
    fn detect_fast(bound: &BoundExpr) -> Option<FastCmp> {
        let BoundExpr::Binary { op, left, right } = bound else {
            return None;
        };
        use BinOp::*;
        if !matches!(op, Eq | Ne | Lt | Le | Gt | Ge) {
            return None;
        }
        let (col_expr, lit, flipped) = match (&**left, &**right) {
            (BoundExpr::Literal(v), c) => (c, v, true),
            (c, BoundExpr::Literal(v)) => (c, v, false),
            _ => return None,
        };
        if !matches!(lit, Value::Int(_) | Value::Float(_)) {
            return None;
        }
        let col = match col_expr {
            BoundExpr::Dim(d) => FastCol::Dim(*d),
            BoundExpr::Attr(a, DataType::Int64) => FastCol::IntAttr(*a),
            BoundExpr::Attr(a, DataType::Float64) => FastCol::FloatAttr(*a),
            _ => return None,
        };
        let op = if flipped {
            match op {
                Lt => Gt,
                Le => Ge,
                Gt => Lt,
                Ge => Le,
                other => *other,
            }
        } else {
            *op
        };
        Some(FastCmp {
            col,
            op,
            lit: lit.clone(),
        })
    }

    /// Append every passing row of `input` to `out` (same column layout as
    /// the input schema).
    pub fn apply(&self, input: &CellBatch, out: &mut CellBatch) -> Result<()> {
        if let Some(fc) = &self.fast {
            if let Some(done) = Self::apply_columnar(fc, input, out) {
                return done;
            }
        }
        self.apply_rowwise(input, out)
    }

    /// The per-row interpreter path — the fast path's fallback, kept
    /// independently callable for before/after benchmarking.
    #[doc(hidden)]
    pub fn apply_rowwise(&self, input: &CellBatch, out: &mut CellBatch) -> Result<()> {
        for row in 0..input.len() {
            match self.bound.eval(input, row)? {
                Value::Bool(true) => out.push_row_from(input, row)?,
                Value::Bool(false) => {}
                other => {
                    return Err(ArrayError::Eval(format!(
                        "filter predicate evaluated to non-boolean {other}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Chunked columnar select + one gather. `None` when the batch does
    /// not carry the expected column (the row-wise path then reports the
    /// usual evaluation error). Bit-identical row selection to
    /// [`apply_rowwise`]: integer compares are exact, and float compares
    /// run in [`encode_f64`] space, whose unsigned order *is* the
    /// `total_cmp` order `compare_values` uses.
    fn apply_columnar(fc: &FastCmp, input: &CellBatch, out: &mut CellBatch) -> Option<Result<()>> {
        let mut idx = Vec::new();
        let litf = || match fc.lit {
            Value::Int(l) => encode_f64(l as f64),
            Value::Float(l) => encode_f64(l),
            _ => unreachable!("fast filter literals are numeric"),
        };
        match fc.col {
            FastCol::Dim(d) => {
                let vals = input.coords.get(d)?;
                match fc.lit {
                    Value::Int(l) => select_by_op!(vals, &mut idx, fc.op, |x: i64| x, l),
                    _ => {
                        select_by_op!(vals, &mut idx, fc.op, |x: i64| encode_f64(x as f64), litf())
                    }
                }
            }
            FastCol::IntAttr(a) => {
                let Column::Int(vals) = input.attrs.get(a)? else {
                    return None;
                };
                match fc.lit {
                    Value::Int(l) => select_by_op!(vals, &mut idx, fc.op, |x: i64| x, l),
                    _ => {
                        select_by_op!(vals, &mut idx, fc.op, |x: i64| encode_f64(x as f64), litf())
                    }
                }
            }
            FastCol::FloatAttr(a) => {
                let Column::Float(vals) = input.attrs.get(a)? else {
                    return None;
                };
                select_by_op!(vals, &mut idx, fc.op, encode_f64, litf());
            }
        }
        Some(input.take_into(&idx, out))
    }
}

/// A compiled `apply`/`project` output list: evaluates one expression per
/// output attribute, keeping the dimension space.
#[derive(Debug)]
pub struct ApplyKernel {
    bound: Vec<BoundExpr>,
    schema: ArraySchema,
}

impl ApplyKernel {
    /// Bind the `(name, expr)` output list against `schema` and derive the
    /// output schema (input dimensions + computed attributes).
    ///
    /// With `lenient` set, qualified column names (`A.v`) that the schema
    /// does not carry verbatim fall back to their bare suffix (`v`) before
    /// binding — the resolution rule AQL projection lists need when they run
    /// over a join output whose schema dropped the qualifiers.
    pub fn compile(
        schema: &ArraySchema,
        outputs: &[(String, Expr)],
        lenient: bool,
    ) -> Result<ApplyKernel> {
        let mut attrs = Vec::with_capacity(outputs.len());
        let mut bound = Vec::with_capacity(outputs.len());
        for (name, expr) in outputs {
            let expr = if lenient {
                rewrite_for_output(expr, schema)
            } else {
                expr.clone()
            };
            attrs.push(AttributeDef::new(name.clone(), expr.result_type(schema)?));
            bound.push(expr.bind(schema)?);
        }
        let schema = ArraySchema::new(schema.name.clone(), schema.dims.clone(), attrs)?;
        Ok(ApplyKernel { bound, schema })
    }

    /// The output schema (input dimensions, computed attributes).
    pub fn schema(&self) -> &ArraySchema {
        &self.schema
    }

    /// An empty batch shaped like this kernel's output.
    pub fn output_batch(&self) -> CellBatch {
        batch_for(&self.schema)
    }

    /// Evaluate every output expression for each row of `input`, appending
    /// the results to `out`.
    pub fn apply(&self, input: &CellBatch, out: &mut CellBatch) -> Result<()> {
        for row in 0..input.len() {
            for (d, col) in input.coords.iter().enumerate() {
                out.coords[d].push(col[row]);
            }
            for (a, b) in self.bound.iter().enumerate() {
                out.attrs[a].push(b.eval(input, row)?)?;
            }
        }
        Ok(())
    }
}

/// How `redim`/`rechunk` treat cells that do not fit the target schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedimPolicy {
    /// Error on the first out-of-bounds coordinate. Duplicate target
    /// coordinates are permitted (needed when an attribute with repeated
    /// values becomes a dimension, e.g. while building join units).
    #[default]
    Strict,
    /// Silently drop out-of-bounds cells; duplicates permitted.
    DropOutOfBounds,
}

/// Where a target column's data comes from in the source schema.
enum Source {
    Dim(usize),
    Attr(usize),
}

/// A compiled `redim`/`rechunk` column mapping: rewrites each source row
/// into the target schema's coordinate space.
pub struct RedimKernel {
    /// For each target dimension: where its coordinate comes from.
    dim_sources: Vec<Source>,
    /// For each target attribute: where its value comes from.
    attr_sources: Vec<Source>,
    target: ArraySchema,
}

impl RedimKernel {
    /// Resolve every target dimension/attribute name against the source
    /// schema (dimensions take precedence over attributes).
    pub fn compile(source: &ArraySchema, target: &ArraySchema) -> Result<RedimKernel> {
        let resolve = |name: &str| -> Result<Source> {
            if let Ok(d) = source.dim_index(name) {
                Ok(Source::Dim(d))
            } else if let Ok(a) = source.attr_index(name) {
                Ok(Source::Attr(a))
            } else {
                Err(ArrayError::SchemaMismatch(format!(
                    "target column `{name}` not found in source schema `{}`",
                    source.name
                )))
            }
        };
        Ok(RedimKernel {
            dim_sources: target
                .dims
                .iter()
                .map(|d| resolve(&d.name))
                .collect::<Result<_>>()?,
            attr_sources: target
                .attrs
                .iter()
                .map(|a| resolve(&a.name))
                .collect::<Result<_>>()?,
            target: target.clone(),
        })
    }

    /// The target schema this kernel maps into.
    pub fn target(&self) -> &ArraySchema {
        &self.target
    }

    /// An empty batch shaped like the target schema.
    pub fn output_batch(&self) -> CellBatch {
        batch_for(&self.target)
    }

    /// Remap each row of `input` into the target coordinate space,
    /// appending to `out`. Out-of-bounds coordinates follow `policy`.
    pub fn apply(&self, policy: RedimPolicy, input: &CellBatch, out: &mut CellBatch) -> Result<()> {
        let mut coord = vec![0i64; self.target.ndims()];
        'rows: for row in 0..input.len() {
            for (k, src) in self.dim_sources.iter().enumerate() {
                let c = match src {
                    Source::Dim(d) => input.coords[*d][row],
                    Source::Attr(a) => input.attrs[*a].get(row).to_coord()?,
                };
                if !self.target.dims[k].contains(c) {
                    match policy {
                        RedimPolicy::Strict => {
                            return Err(ArrayError::CoordOutOfBounds {
                                dimension: self.target.dims[k].name.clone(),
                                value: c,
                                range: (self.target.dims[k].start, self.target.dims[k].end),
                            })
                        }
                        RedimPolicy::DropOutOfBounds => continue 'rows,
                    }
                }
                coord[k] = c;
            }
            for (d, &c) in coord.iter().enumerate() {
                out.coords[d].push(c);
            }
            for (k, src) in self.attr_sources.iter().enumerate() {
                match src {
                    Source::Dim(d) => out.attrs[k].push(Value::Int(input.coords[*d][row]))?,
                    Source::Attr(a) => out.attrs[k].push_from(&input.attrs[*a], row)?,
                }
            }
        }
        Ok(())
    }
}

/// A compiled `between` window: keeps rows inside the inclusive
/// hyper-rectangle `[low[d], high[d]]` per dimension.
#[derive(Debug)]
pub struct WindowKernel {
    low: Vec<i64>,
    high: Vec<i64>,
}

impl WindowKernel {
    /// Validate the window against `schema` (arity and non-emptiness).
    pub fn compile(schema: &ArraySchema, low: &[i64], high: &[i64]) -> Result<WindowKernel> {
        let ndims = schema.ndims();
        if low.len() != ndims || high.len() != ndims {
            return Err(ArrayError::ArityMismatch {
                expected: ndims,
                actual: low.len().min(high.len()),
            });
        }
        for (d, dim) in schema.dims.iter().enumerate() {
            if low[d] > high[d] {
                return Err(ArrayError::InvalidSchema(format!(
                    "between window is empty on dimension `{}`: {} > {}",
                    dim.name, low[d], high[d]
                )));
            }
        }
        Ok(WindowKernel {
            low: low.to_vec(),
            high: high.to_vec(),
        })
    }

    /// Whether any part of the window intersects the given chunk extents
    /// (`(chunk_start, chunk_end)` per dimension).
    pub fn intersects(&self, extents: impl Iterator<Item = (i64, i64)>) -> bool {
        for (d, (lo, hi)) in extents.enumerate() {
            if hi < self.low[d] || lo > self.high[d] {
                return false;
            }
        }
        true
    }

    /// Append every in-window row of `input` to `out`.
    pub fn apply(&self, input: &CellBatch, out: &mut CellBatch) -> Result<()> {
        for row in 0..input.len() {
            let inside = (0..input.ndims()).all(|d| {
                let c = input.coords[d][row];
                c >= self.low[d] && c <= self.high[d]
            });
            if inside {
                out.push_row_from(input, row)?;
            }
        }
        Ok(())
    }
}

/// An empty [`CellBatch`] shaped like `schema` (one coordinate column per
/// dimension, one attribute column per attribute).
pub fn batch_for(schema: &ArraySchema) -> CellBatch {
    let types: Vec<_> = schema.attrs.iter().map(|a| a.dtype).collect();
    CellBatch::new(schema.ndims(), &types)
}

/// Flatten a batch's coordinates into leading integer *attribute* columns
/// (dimension-less layout), appending to `out`.
///
/// `out` must carry `input.ndims() + input.nattrs()` attribute columns and
/// no coordinate columns. This is the layout join units and hash buckets
/// share (paper §4: buckets are "unordered and dimension-less").
pub fn flatten_into(input: &CellBatch, out: &mut CellBatch) -> Result<()> {
    let ndims = input.ndims();
    for (d, col) in input.coords.iter().enumerate() {
        out.attrs[d].extend_ints(col)?;
    }
    for (a, col) in input.attrs.iter().enumerate() {
        out.attrs[ndims + a].extend_from(col)?;
    }
    Ok(())
}

/// Append every row of `src` onto `out` (same column layout), column at a
/// time — the pipeline sink's accumulation step.
pub fn extend_into(src: &CellBatch, out: &mut CellBatch) -> Result<()> {
    for (d, col) in src.coords.iter().enumerate() {
        out.coords[d].extend_from_slice(col);
    }
    for (a, col) in src.attrs.iter().enumerate() {
        out.attrs[a].extend_from(col)?;
    }
    Ok(())
}

/// Route each row of `flat` to one of `outs` (row copy via
/// [`CellBatch::push_row_from`]), with the destination chosen by `route`.
///
/// Shared by hash partitioning (`route` = key hash modulo bucket count) and
/// the join executor's slice mapping (`route` = join-unit assignment).
pub fn scatter_into<E: From<ArrayError>>(
    flat: &CellBatch,
    outs: &mut [CellBatch],
    mut route: impl FnMut(&CellBatch, usize) -> std::result::Result<usize, E>,
) -> std::result::Result<(), E> {
    for row in 0..flat.len() {
        let dst = route(flat, row)?;
        outs[dst].push_row_from(flat, row)?;
    }
    Ok(())
}

/// Organize a flat batch of cells into a chunked [`Array`] under `schema`,
/// sorting each chunk into C-order when `ordered` is set.
///
/// This is the output-organization phase every materializing consumer ends
/// with: the whole-array operators, the streaming pipeline's sink, and the
/// join executor (paper §3.1 phase 6).
pub fn organize(schema: ArraySchema, cells: &CellBatch, ordered: bool) -> Result<Array> {
    organize_with(schema, cells, ordered, &keys::KernelConfig::default()).map(|(array, _)| array)
}

/// [`organize`] with explicit kernel-dispatch thresholds; also returns
/// which sort kernels ran over how many chunks (in
/// [`keys::SortKernel::ALL`] order, zero counts omitted) so consumers can
/// report dispatch decisions in their `kernel_dispatch` telemetry span.
pub fn organize_with(
    schema: ArraySchema,
    cells: &CellBatch,
    ordered: bool,
    cfg: &keys::KernelConfig,
) -> Result<(Array, Vec<(keys::SortKernel, usize)>)> {
    let mut out = Array::from_batch(schema, cells)?;
    let mut sort_kernels = Vec::new();
    if ordered {
        sort_kernels = out.sort_chunks_with(cfg);
    }
    Ok((out, sort_kernels))
}

/// Rewrite column references in `expr` so it binds against `output`:
/// names the schema carries verbatim are kept; otherwise a qualified
/// `Array.col` falls back to its bare suffix `col`.
pub fn rewrite_for_output(expr: &Expr, output: &ArraySchema) -> Expr {
    match expr {
        Expr::Column(name) => {
            if output.has_dim(name) || output.has_attr(name) {
                expr.clone()
            } else if let Some((_, col)) = name.split_once('.') {
                Expr::col(col)
            } else {
                expr.clone()
            }
        }
        Expr::Literal(_) => expr.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_for_output(left, output)),
            right: Box::new(rewrite_for_output(right, output)),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(rewrite_for_output(e, output))),
        Expr::Not(e) => Expr::Not(Box::new(rewrite_for_output(e, output))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn sample() -> Array {
        let schema = ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap();
        Array::from_cells(
            schema,
            vec![
                (vec![1, 2], vec![Value::Int(3), Value::Float(1.1)]),
                (vec![2, 2], vec![Value::Int(7), Value::Float(1.3)]),
                (vec![5, 5], vec![Value::Int(9), Value::Float(2.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_kernel_appends_into_reused_buffer() {
        let a = sample();
        let k = FilterKernel::compile(
            &a.schema,
            &Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5)),
        )
        .unwrap();
        let mut out = batch_for(&a.schema);
        for (_, chunk) in a.chunks() {
            k.apply(&chunk.cells, &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
        // The buffer is reusable: clear + refill yields the same rows.
        out.clear();
        for (_, chunk) in a.chunks() {
            k.apply(&chunk.cells, &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn columnar_filter_matches_rowwise_interpreter() {
        // Mixed int/float/dim predicates over data with NaN, ±0.0, and
        // boundary ints; the fast path must select the exact same rows
        // (order included) as the interpreter.
        let schema = ArraySchema::parse("A<v:int, f:float>[i=1,100,100]").unwrap();
        let mut cells = Vec::new();
        for (n, (v, f)) in [
            (5i64, 1.5f64),
            (-3, f64::NAN),
            (0, 0.0),
            (7, -0.0),
            (i64::MAX, f64::INFINITY),
            (i64::MIN, -1.0),
            (5, 2.5),
        ]
        .into_iter()
        .enumerate()
        {
            cells.push((vec![n as i64 + 1], vec![Value::Int(v), Value::Float(f)]));
        }
        let a = Array::from_cells(schema.clone(), cells).unwrap();
        let exprs = [
            Expr::binary(BinOp::Eq, Expr::col("v"), Expr::int(5)),
            Expr::binary(BinOp::Ne, Expr::col("v"), Expr::int(0)),
            Expr::binary(BinOp::Lt, Expr::col("f"), Expr::float(1.0)),
            Expr::binary(BinOp::Ge, Expr::col("f"), Expr::float(0.0)),
            Expr::binary(BinOp::Le, Expr::col("i"), Expr::int(3)),
            Expr::binary(BinOp::Gt, Expr::int(4), Expr::col("i")), // flipped
            Expr::binary(BinOp::Eq, Expr::col("f"), Expr::float(0.0)), // vs -0.0
            Expr::binary(BinOp::Gt, Expr::col("v"), Expr::float(4.5)), // int col, float lit
        ];
        for e in &exprs {
            let k = FilterKernel::compile(&schema, e).unwrap();
            assert!(k.fast.is_some(), "expected fast path for {e:?}");
            let mut fast = batch_for(&schema);
            let mut slow = batch_for(&schema);
            for (_, chunk) in a.chunks() {
                k.apply(&chunk.cells, &mut fast).unwrap();
                k.apply_rowwise(&chunk.cells, &mut slow).unwrap();
            }
            // Bit-level comparison (floats by bits via debug formatting
            // would miss -0.0 vs 0.0; compare columns directly).
            assert_eq!(fast.coords, slow.coords, "{e:?}");
            assert_eq!(fast.len(), slow.len(), "{e:?}");
            for (cf, cs) in fast.attrs.iter().zip(&slow.attrs) {
                match (cf, cs) {
                    (Column::Float(x), Column::Float(y)) => {
                        let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                        let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(xb, yb, "{e:?}");
                    }
                    _ => assert_eq!(cf, cs, "{e:?}"),
                }
            }
        }
        // Non-comparison predicates stay on the interpreter path.
        let k = FilterKernel::compile(
            &schema,
            &Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Gt, Expr::col("v"), Expr::int(0)),
                Expr::binary(BinOp::Lt, Expr::col("v"), Expr::int(6)),
            ),
        )
        .unwrap();
        assert!(k.fast.is_none());
        let mut out = batch_for(&schema);
        for (_, chunk) in a.chunks() {
            k.apply(&chunk.cells, &mut out).unwrap();
        }
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn apply_kernel_matches_output_schema() {
        let a = sample();
        let k = ApplyKernel::compile(
            &a.schema,
            &[(
                "ratio".into(),
                Expr::binary(BinOp::Div, Expr::col("v2"), Expr::col("v1")),
            )],
            false,
        )
        .unwrap();
        assert_eq!(k.schema().attrs.len(), 1);
        let mut out = k.output_batch();
        for (_, chunk) in a.chunks() {
            k.apply(&chunk.cells, &mut out).unwrap();
        }
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn lenient_apply_resolves_qualified_names() {
        let a = sample();
        // `A.v1` is not a schema column; lenient compile strips to `v1`.
        assert!(
            ApplyKernel::compile(&a.schema, &[("x".into(), Expr::col("A.v1"))], false).is_err()
        );
        let k = ApplyKernel::compile(&a.schema, &[("x".into(), Expr::col("A.v1"))], true).unwrap();
        let mut out = k.output_batch();
        for (_, chunk) in a.chunks() {
            k.apply(&chunk.cells, &mut out).unwrap();
        }
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn rewrite_for_output_prefers_exact_then_bare() {
        let out = ArraySchema::parse("C<reflectance:float, B.reflectance:float>[t=1,5,5]").unwrap();
        let e = rewrite_for_output(&Expr::col("Band1.reflectance"), &out);
        assert_eq!(e, Expr::col("reflectance"));
        // Exact qualified match wins over suffix-stripping.
        let e = rewrite_for_output(&Expr::col("B.reflectance"), &out);
        assert_eq!(e, Expr::col("B.reflectance"));
    }

    #[test]
    fn flatten_and_scatter_roundtrip_cells() {
        let a = sample();
        let mut flat = CellBatch::new(
            0,
            &[
                crate::value::DataType::Int64,
                crate::value::DataType::Int64,
                crate::value::DataType::Int64,
                crate::value::DataType::Float64,
            ],
        );
        for (_, chunk) in a.chunks() {
            flatten_into(&chunk.cells, &mut flat).unwrap();
        }
        assert_eq!(flat.len(), 3);
        assert_eq!(flat.attrs[0].get(0), Value::Int(1)); // i of first cell
        let mut outs = vec![flat.take(&[]), flat.take(&[])];
        for o in &mut outs {
            o.clear();
        }
        scatter_into::<ArrayError>(&flat, &mut outs, |f, row| {
            Ok((f.attrs[0].get(row).to_coord()? % 2) as usize)
        })
        .unwrap();
        assert_eq!(outs[0].len() + outs[1].len(), 3);
    }

    #[test]
    fn organize_sorts_only_when_asked() {
        let schema = ArraySchema::parse("A<v:int>[i=1,10,10]").unwrap();
        let mut cells = batch_for(&schema);
        for i in (1..=10i64).rev() {
            cells.push(&[i], &[Value::Int(i)]).unwrap();
        }
        let sorted = organize(schema.clone(), &cells, true).unwrap();
        assert!(sorted.all_sorted());
        let raw = organize(schema, &cells, false).unwrap();
        assert!(!raw.all_sorted());
    }
}
