//! Array operators.
//!
//! These are the schema-alignment and access operators the logical join
//! planner composes (paper §4, Table 1):
//!
//! | operator  | effect                                    | output            |
//! |-----------|-------------------------------------------|-------------------|
//! | `redim`   | attrs↔dims conversion + per-chunk sort    | ordered chunks    |
//! | `hash`    | hash cells into buckets by key columns    | unordered buckets |
//! | `rechunk` | re-tile to new chunk intervals, no sort   | unordered chunks  |
//! | `sort`    | sort chunk cells into C-order             | ordered chunks    |
//! | `scan`    | pass-through access                       | ordered chunks    |
//!
//! plus the general-purpose `filter`, `apply`, and `project`.

mod filter;
mod hashop;
pub mod kernels;
mod redim;
mod sortop;
mod window;

pub use filter::{apply, filter, project};
pub use hashop::{hash_key, hash_partition, BucketSet};
pub use redim::{rechunk, redim, RedimPolicy};
pub use sortop::{scan, sort};
pub use window::{aggregate, between, AggFn};

use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;

/// A reference to one column of an array: either a dimension or an
/// attribute, by position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnRef {
    /// Dimension at index.
    Dim(usize),
    /// Attribute at index.
    Attr(usize),
}

impl ColumnRef {
    /// Resolve a name against a schema, preferring dimensions.
    pub fn resolve(schema: &ArraySchema, name: &str) -> Result<ColumnRef> {
        if let Ok(d) = schema.dim_index(name) {
            Ok(ColumnRef::Dim(d))
        } else if let Ok(a) = schema.attr_index(name) {
            Ok(ColumnRef::Attr(a))
        } else {
            Err(ArrayError::NoSuchAttribute(name.to_string()))
        }
    }

    /// The column's name under `schema`.
    pub fn name<'s>(&self, schema: &'s ArraySchema) -> &'s str {
        match self {
            ColumnRef::Dim(d) => &schema.dims[*d].name,
            ColumnRef::Attr(a) => &schema.attrs[*a].name,
        }
    }

    /// Whether this reference points at a dimension.
    pub fn is_dim(&self) -> bool {
        matches!(self, ColumnRef::Dim(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_dimensions() {
        let s = ArraySchema::parse("A<v:int>[i=1,6,3]").unwrap();
        assert_eq!(ColumnRef::resolve(&s, "i").unwrap(), ColumnRef::Dim(0));
        assert_eq!(ColumnRef::resolve(&s, "v").unwrap(), ColumnRef::Attr(0));
        assert!(ColumnRef::resolve(&s, "w").is_err());
    }

    #[test]
    fn name_roundtrip() {
        let s = ArraySchema::parse("A<v:int>[i=1,6,3]").unwrap();
        assert_eq!(ColumnRef::Dim(0).name(&s), "i");
        assert_eq!(ColumnRef::Attr(0).name(&s), "v");
        assert!(ColumnRef::Dim(0).is_dim());
        assert!(!ColumnRef::Attr(0).is_dim());
    }
}
