//! Scalar expressions over cells.
//!
//! Used by `filter` predicates (e.g. `v1 > 5`, paper §2.2) and by SELECT
//! lists that compute derived attributes (e.g. the normalized difference
//! vegetation index `(b2 - b1) / (b2 + b1)`, paper §6.3.2).

use std::fmt;

use crate::batch::CellBatch;
use crate::error::{ArrayError, Result};
use crate::schema::ArraySchema;
use crate::value::{DataType, Value};

/// Binary operators available in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always float-valued).
    Div,
    /// Modulo (integers only).
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a dimension or attribute by name; resolved against the
    /// schema at bind time.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// Shorthand for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Value::Float(v))
    }

    /// Build a binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Names of all columns the expression references.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Neg(inner) | Expr::Not(inner) => inner.collect_columns(out),
        }
    }

    /// Rebuild the expression with every column name passed through `f`
    /// (used by the plan rewriter to strip `Rel.` qualifiers when pushing
    /// predicates into join inputs).
    pub fn map_columns(&self, f: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(name) => Expr::Column(f(name)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            Expr::Neg(inner) => Expr::Neg(Box::new(inner.map_columns(f))),
            Expr::Not(inner) => Expr::Not(Box::new(inner.map_columns(f))),
        }
    }

    /// Bind column names against `schema`, producing an evaluable form.
    pub fn bind(&self, schema: &ArraySchema) -> Result<BoundExpr> {
        match self {
            Expr::Column(name) => {
                if let Ok(d) = schema.dim_index(name) {
                    Ok(BoundExpr::Dim(d))
                } else if let Ok(a) = schema.attr_index(name) {
                    Ok(BoundExpr::Attr(a, schema.attrs[a].dtype))
                } else {
                    Err(ArrayError::NoSuchAttribute(name.clone()))
                }
            }
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Binary { op, left, right } => Ok(BoundExpr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            }),
            Expr::Neg(inner) => Ok(BoundExpr::Neg(Box::new(inner.bind(schema)?))),
            Expr::Not(inner) => Ok(BoundExpr::Not(Box::new(inner.bind(schema)?))),
        }
    }

    /// Static result type of the expression under `schema`.
    pub fn result_type(&self, schema: &ArraySchema) -> Result<DataType> {
        self.bind(schema)?.result_type()
    }

    /// Fold literal-only subtrees into literals, using the same evaluator
    /// the runtime uses so folded and unfolded plans stay bit-identical.
    ///
    /// Subtrees whose folding would error at runtime (e.g. `1 / 0`) are
    /// left untouched so the error still surfaces during execution.
    pub fn fold_constants(&self) -> Expr {
        match self {
            Expr::Binary { op, left, right } => {
                let l = left.fold_constants();
                let r = right.fold_constants();
                if let (Expr::Literal(lv), Expr::Literal(rv)) = (&l, &r) {
                    if let Ok(v) = eval_binary(*op, lv, rv) {
                        return Expr::Literal(v);
                    }
                }
                Expr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
            Expr::Neg(inner) => {
                let i = inner.fold_constants();
                match i {
                    Expr::Literal(Value::Int(v)) => Expr::Literal(Value::Int(-v)),
                    Expr::Literal(Value::Float(v)) => Expr::Literal(Value::Float(-v)),
                    other => Expr::Neg(Box::new(other)),
                }
            }
            Expr::Not(inner) => {
                let i = inner.fold_constants();
                match i {
                    Expr::Literal(Value::Bool(b)) => Expr::Literal(Value::Bool(!b)),
                    other => Expr::Not(Box::new(other)),
                }
            }
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
        }
    }
}

/// An expression with column references resolved to indices.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    /// Dimension coordinate at index.
    Dim(usize),
    /// Attribute column at index, with its type.
    Attr(usize, DataType),
    /// Literal.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<BoundExpr>,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Numeric negation.
    Neg(Box<BoundExpr>),
    /// Logical not.
    Not(Box<BoundExpr>),
}

impl BoundExpr {
    /// Evaluate against cell `row` of `batch`.
    pub fn eval(&self, batch: &CellBatch, row: usize) -> Result<Value> {
        match self {
            BoundExpr::Dim(d) => Ok(Value::Int(batch.coords[*d][row])),
            BoundExpr::Attr(a, _) => Ok(batch.attrs[*a].get(row)),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Binary { op, left, right } => {
                let l = left.eval(batch, row)?;
                let r = right.eval(batch, row)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Neg(inner) => match inner.eval(batch, row)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Float(v) => Ok(Value::Float(-v)),
                other => Err(ArrayError::Eval(format!("cannot negate {other}"))),
            },
            BoundExpr::Not(inner) => match inner.eval(batch, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                other => Err(ArrayError::Eval(format!("NOT of non-boolean {other}"))),
            },
        }
    }

    /// Static result type.
    pub fn result_type(&self) -> Result<DataType> {
        match self {
            BoundExpr::Dim(_) => Ok(DataType::Int64),
            BoundExpr::Attr(_, t) => Ok(*t),
            BoundExpr::Literal(v) => Ok(v.data_type()),
            BoundExpr::Binary { op, left, right } => {
                let l = left.result_type()?;
                let r = right.result_type()?;
                match op {
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        Ok(DataType::Bool)
                    }
                    BinOp::And | BinOp::Or => Ok(DataType::Bool),
                    BinOp::Div => Ok(DataType::Float64),
                    BinOp::Mod => Ok(DataType::Int64),
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        if l == DataType::Float64 || r == DataType::Float64 {
                            Ok(DataType::Float64)
                        } else {
                            Ok(DataType::Int64)
                        }
                    }
                }
            }
            BoundExpr::Neg(inner) => inner.result_type(),
            BoundExpr::Not(_) => Ok(DataType::Bool),
        }
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And | Or => {
            let (a, b) = match (l.as_bool(), r.as_bool()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(ArrayError::Eval(format!(
                        "{} applied to non-booleans {l}, {r}",
                        op.symbol()
                    )))
                }
            };
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare_values(l, r)?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul => match (l, r) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    Add => a.wrapping_add(*b),
                    Sub => a.wrapping_sub(*b),
                    Mul => a.wrapping_mul(*b),
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            _ => {
                let (a, b) = numeric_pair(l, r, op)?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
        Div => {
            let (a, b) = numeric_pair(l, r, op)?;
            Ok(Value::Float(a / b))
        }
        Mod => match (l, r) {
            (Value::Int(a), Value::Int(b)) if *b != 0 => Ok(Value::Int(a.rem_euclid(*b))),
            (Value::Int(_), Value::Int(0)) => Err(ArrayError::Eval("modulo by zero".into())),
            _ => Err(ArrayError::Eval(format!(
                "% applied to non-integers {l}, {r}"
            ))),
        },
    }
}

/// Numeric-aware comparison used by predicates: `Int(2)` equals
/// `Float(2.0)` here, unlike the total `Ord` on [`Value`].
pub fn compare_values(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        _ => {
            let (a, b) = match (l.as_float(), r.as_float()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(ArrayError::Eval(format!("cannot compare {l} with {r}"))),
            };
            Ok(a.total_cmp(&b))
        }
    }
}

fn numeric_pair(l: &Value, r: &Value, op: BinOp) -> Result<(f64, f64)> {
    match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(ArrayError::Eval(format!(
            "{} applied to non-numeric values {l}, {r}",
            op.symbol()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ArraySchema {
        ArraySchema::parse("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]").unwrap()
    }

    fn batch() -> CellBatch {
        let mut b = CellBatch::new(2, &[DataType::Int64, DataType::Float64]);
        b.push(&[1, 2], &[Value::Int(3), Value::Float(1.1)])
            .unwrap();
        b.push(&[2, 2], &[Value::Int(7), Value::Float(1.3)])
            .unwrap();
        b
    }

    #[test]
    fn fold_constants_collapses_literal_subtrees() {
        // v1 > (2 + 3) folds to v1 > 5; the column side is untouched.
        let e = Expr::binary(
            BinOp::Gt,
            Expr::col("v1"),
            Expr::binary(BinOp::Add, Expr::int(2), Expr::int(3)),
        );
        assert_eq!(
            e.fold_constants(),
            Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5))
        );
        // -(2 * 2) and NOT(true) fold; an erroring subtree (modulo by
        // zero) is left intact so the error still surfaces at runtime.
        let neg = Expr::Neg(Box::new(Expr::binary(
            BinOp::Mul,
            Expr::int(2),
            Expr::int(2),
        )));
        assert_eq!(neg.fold_constants(), Expr::int(-4));
        let not = Expr::Not(Box::new(Expr::Literal(Value::Bool(true))));
        assert_eq!(not.fold_constants(), Expr::Literal(Value::Bool(false)));
        let modulo = Expr::binary(BinOp::Mod, Expr::int(1), Expr::int(0));
        assert_eq!(modulo.fold_constants(), modulo);
        // Division is always float-valued, so 1/0 folds to +inf — the
        // same value the runtime evaluator produces.
        let div = Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(
            div.fold_constants(),
            Expr::Literal(Value::Float(f64::INFINITY))
        );
        // Folding evaluates with the runtime evaluator: same value, bitwise.
        let b = batch();
        let folded = e.fold_constants().bind(&schema()).unwrap();
        let raw = e.bind(&schema()).unwrap();
        for row in 0..b.len() {
            assert_eq!(folded.eval(&b, row).unwrap(), raw.eval(&b, row).unwrap());
        }
    }

    #[test]
    fn filter_predicate_from_paper() {
        // SELECT * FROM A WHERE v1 > 5 (paper §2.2)
        let e = Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5));
        let bound = e.bind(&schema()).unwrap();
        let b = batch();
        assert_eq!(bound.eval(&b, 0).unwrap(), Value::Bool(false));
        assert_eq!(bound.eval(&b, 1).unwrap(), Value::Bool(true));
        assert_eq!(bound.result_type().unwrap(), DataType::Bool);
    }

    #[test]
    fn dimension_references_evaluate_to_coords() {
        let e = Expr::binary(BinOp::Add, Expr::col("i"), Expr::col("j"));
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound.eval(&batch(), 0).unwrap(), Value::Int(3));
        assert_eq!(bound.eval(&batch(), 1).unwrap(), Value::Int(4));
    }

    #[test]
    fn ndvi_expression() {
        // (v2 - v1) / (v2 + v1), mixed int/float arithmetic.
        let e = Expr::binary(
            BinOp::Div,
            Expr::binary(BinOp::Sub, Expr::col("v2"), Expr::col("v1")),
            Expr::binary(BinOp::Add, Expr::col("v2"), Expr::col("v1")),
        );
        let bound = e.bind(&schema()).unwrap();
        let v = bound.eval(&batch(), 0).unwrap().as_float().unwrap();
        assert!((v - (1.1 - 3.0) / (1.1 + 3.0)).abs() < 1e-12);
        assert_eq!(bound.result_type().unwrap(), DataType::Float64);
    }

    #[test]
    fn unknown_column_fails_at_bind() {
        let e = Expr::col("nope");
        assert!(e.bind(&schema()).is_err());
    }

    #[test]
    fn logical_ops_and_not() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Ge, Expr::col("v1"), Expr::int(3)),
            Expr::Not(Box::new(Expr::binary(
                BinOp::Eq,
                Expr::col("i"),
                Expr::int(2),
            ))),
        );
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound.eval(&batch(), 0).unwrap(), Value::Bool(true));
        assert_eq!(bound.eval(&batch(), 1).unwrap(), Value::Bool(false));
    }

    #[test]
    fn type_errors_surface_as_eval_errors() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::col("v1"),
            Expr::Literal(Value::Bool(true)),
        );
        let bound = e.bind(&schema()).unwrap();
        assert!(bound.eval(&batch(), 0).is_err());
    }

    #[test]
    fn modulo_semantics() {
        let e = Expr::binary(BinOp::Mod, Expr::col("v1"), Expr::int(4));
        let bound = e.bind(&schema()).unwrap();
        assert_eq!(bound.eval(&batch(), 1).unwrap(), Value::Int(3));
        let zero = Expr::binary(BinOp::Mod, Expr::col("v1"), Expr::int(0));
        assert!(zero.bind(&schema()).unwrap().eval(&batch(), 0).is_err());
    }

    #[test]
    fn referenced_columns_deduplicated() {
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::col("v1"), Expr::col("v1")),
            Expr::col("j"),
        );
        assert_eq!(
            e.referenced_columns(),
            vec!["j".to_string(), "v1".to_string()]
        );
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(
            compare_values(&Value::Int(2), &Value::Float(2.0)).unwrap(),
            std::cmp::Ordering::Equal
        );
        assert!(compare_values(&Value::Int(2), &Value::Str("x".into())).is_err());
    }

    #[test]
    fn display_renders_infix() {
        let e = Expr::binary(BinOp::Gt, Expr::col("v1"), Expr::int(5));
        assert_eq!(e.to_string(), "(v1 > 5)");
    }
}
