//! Columnar cell batches: the universal container for sets of cells.
//!
//! Chunks (paper §2.1) are vertically partitioned — every attribute is
//! stored in its own column, and coordinates are stored column-per-
//! dimension. `CellBatch` implements that layout for an arbitrary set of
//! cells; [`crate::chunk::Chunk`] wraps a batch with a chunk-grid position,
//! and join slices / hash buckets in the join framework reuse the same
//! type for their cell payloads.

use std::cmp::Ordering;

use crate::error::{ArrayError, Result};
use crate::keys;
use crate::value::{DataType, Value};

/// Reusable buffers for columnar gathers: applying a sort permutation
/// moves each column through the matching buffer here (one pass, no
/// fresh allocation once the buffers are warm). Shared with the radix
/// sort kernels via [`keys::SortScratch`].
#[derive(Debug, Default)]
pub struct GatherScratch {
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Vec<bool>,
    strs: Vec<String>,
}

/// Row indices accepted by the permutation kernels (`u32` from the radix
/// sorts, `usize` from comparator sorts).
trait PermIndex: Copy {
    fn ix(self) -> usize;
}

impl PermIndex for u32 {
    #[inline]
    fn ix(self) -> usize {
        self as usize
    }
}

impl PermIndex for usize {
    #[inline]
    fn ix(self) -> usize {
        self
    }
}

/// A typed column of attribute values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings.
    Str(Vec<String>),
}

impl Column {
    /// An empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int64 => Column::Int(Vec::new()),
            DataType::Float64 => Column::Float(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
        }
    }

    /// An empty column with pre-reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Self {
        match dtype {
            DataType::Int64 => Column::Int(Vec::with_capacity(cap)),
            DataType::Float64 => Column::Float(Vec::with_capacity(cap)),
            DataType::Bool => Column::Bool(Vec::with_capacity(cap)),
            DataType::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's element type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int64,
            Column::Float(_) => DataType::Float64,
            Column::Bool(_) => DataType::Bool,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value, coercing ints to floats where the column is float.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            (Column::Float(v), Value::Int(x)) => v.push(x as f64),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            (Column::Str(v), Value::Str(x)) => v.push(x),
            (col, value) => {
                return Err(ArrayError::TypeMismatch {
                    expected: col.dtype().name().into(),
                    actual: value.data_type().name().into(),
                })
            }
        }
        Ok(())
    }

    /// Read the value at `i` (panics on out-of-bounds, like slice indexing).
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Float(v) => Value::Float(v[i]),
            Column::Bool(v) => Value::Bool(v[i]),
            Column::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Compare the values at positions `a` and `b` without materializing.
    pub fn cmp_at(&self, a: usize, b: usize) -> Ordering {
        match self {
            Column::Int(v) => v[a].cmp(&v[b]),
            Column::Float(v) => v[a].total_cmp(&v[b]),
            Column::Bool(v) => v[a].cmp(&v[b]),
            Column::Str(v) => v[a].cmp(&v[b]),
        }
    }

    /// The value at `i` as a dimension coordinate — the columnar
    /// counterpart of [`Value::to_coord`] (integers pass through,
    /// exactly-integral floats convert, everything else errors).
    pub fn coord_at(&self, i: usize) -> Result<i64> {
        match self {
            Column::Int(v) => Ok(v[i]),
            Column::Float(v) if v[i].fract() == 0.0 && v[i].is_finite() => Ok(v[i] as i64),
            other => Err(ArrayError::TypeMismatch {
                expected: "integer coordinate".into(),
                actual: format!("{}", other.get(i)),
            }),
        }
    }

    /// Reorder in place so position `i` holds the old `perm[i]` value,
    /// gathering through `scratch`. `perm` must use each index exactly
    /// once (strings are moved, not cloned).
    fn permute_impl<I: PermIndex>(&mut self, perm: &[I], scratch: &mut GatherScratch) {
        match self {
            Column::Int(v) => {
                scratch.ints.clear();
                scratch.ints.extend(perm.iter().map(|&i| v[i.ix()]));
                std::mem::swap(v, &mut scratch.ints);
            }
            Column::Float(v) => {
                scratch.floats.clear();
                scratch.floats.extend(perm.iter().map(|&i| v[i.ix()]));
                std::mem::swap(v, &mut scratch.floats);
            }
            Column::Bool(v) => {
                scratch.bools.clear();
                scratch.bools.extend(perm.iter().map(|&i| v[i.ix()]));
                std::mem::swap(v, &mut scratch.bools);
            }
            Column::Str(v) => {
                scratch.strs.clear();
                scratch
                    .strs
                    .extend(perm.iter().map(|&i| std::mem::take(&mut v[i.ix()])));
                std::mem::swap(v, &mut scratch.strs);
            }
        }
    }

    /// Append `src[i]` for every index in `indices` (bulk columnar
    /// gather; types must match exactly).
    pub fn gather_from(&mut self, src: &Column, indices: &[usize]) -> Result<()> {
        match (self, src) {
            (Column::Int(a), Column::Int(b)) => a.extend(indices.iter().map(|&i| b[i])),
            (Column::Float(a), Column::Float(b)) => a.extend(indices.iter().map(|&i| b[i])),
            (Column::Bool(a), Column::Bool(b)) => a.extend(indices.iter().map(|&i| b[i])),
            (Column::Str(a), Column::Str(b)) => a.extend(indices.iter().map(|&i| b[i].clone())),
            (a, b) => {
                return Err(ArrayError::TypeMismatch {
                    expected: a.dtype().name().into(),
                    actual: b.dtype().name().into(),
                })
            }
        }
        Ok(())
    }

    /// Remove all values, keeping the allocated capacity (buffer reuse on
    /// hot per-chunk paths).
    pub fn clear(&mut self) {
        match self {
            Column::Int(v) => v.clear(),
            Column::Float(v) => v.clear(),
            Column::Bool(v) => v.clear(),
            Column::Str(v) => v.clear(),
        }
    }

    /// Append the value at `src[i]` directly, without materializing a
    /// `Value`. Coerces ints into float columns like [`Column::push`].
    pub fn push_from(&mut self, src: &Column, i: usize) -> Result<()> {
        match (self, src) {
            (Column::Int(a), Column::Int(b)) => a.push(b[i]),
            (Column::Float(a), Column::Float(b)) => a.push(b[i]),
            (Column::Float(a), Column::Int(b)) => a.push(b[i] as f64),
            (Column::Bool(a), Column::Bool(b)) => a.push(b[i]),
            (Column::Str(a), Column::Str(b)) => a.push(b[i].clone()),
            (a, b) => {
                return Err(ArrayError::TypeMismatch {
                    expected: a.dtype().name().into(),
                    actual: b.dtype().name().into(),
                })
            }
        }
        Ok(())
    }

    /// Append a copy of every value of `other` (bulk [`Column::push_from`]).
    pub fn extend_from(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
            (Column::Float(a), Column::Int(b)) => a.extend(b.iter().map(|&x| x as f64)),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Str(a), Column::Str(b)) => a.extend(b.iter().cloned()),
            (a, b) => {
                return Err(ArrayError::TypeMismatch {
                    expected: a.dtype().name().into(),
                    actual: b.dtype().name().into(),
                })
            }
        }
        Ok(())
    }

    /// Append raw integer values (coordinate flattening); coerces into
    /// float columns.
    pub fn extend_ints(&mut self, xs: &[i64]) -> Result<()> {
        match self {
            Column::Int(v) => v.extend_from_slice(xs),
            Column::Float(v) => v.extend(xs.iter().map(|&x| x as f64)),
            other => {
                return Err(ArrayError::TypeMismatch {
                    expected: other.dtype().name().into(),
                    actual: DataType::Int64.name().into(),
                })
            }
        }
        Ok(())
    }

    /// Move all values of `other` onto the end of `self`.
    pub fn append(&mut self, other: &mut Column) -> Result<()> {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a.append(b),
            (Column::Float(a), Column::Float(b)) => a.append(b),
            (Column::Bool(a), Column::Bool(b)) => a.append(b),
            (Column::Str(a), Column::Str(b)) => a.append(b),
            (a, b) => {
                return Err(ArrayError::TypeMismatch {
                    expected: a.dtype().name().into(),
                    actual: b.dtype().name().into(),
                })
            }
        }
        Ok(())
    }

    /// Build a new column containing `self[indices[0]], self[indices[1]], …`.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Approximate heap bytes used by the column payload.
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * 8,
            Column::Float(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

/// A columnar batch of cells: coordinate columns plus attribute columns.
///
/// All columns have identical length (one entry per occupied cell). The
/// batch knows nothing about chunking or schemas beyond its column count;
/// callers pair it with an [`crate::schema::ArraySchema`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellBatch {
    /// One `i64` coordinate column per dimension.
    pub coords: Vec<Vec<i64>>,
    /// One typed column per attribute.
    pub attrs: Vec<Column>,
}

impl CellBatch {
    /// An empty batch with `ndims` coordinate columns and the given
    /// attribute types.
    pub fn new(ndims: usize, attr_types: &[DataType]) -> Self {
        CellBatch {
            coords: vec![Vec::new(); ndims],
            attrs: attr_types.iter().map(|&t| Column::new(t)).collect(),
        }
    }

    /// An empty batch with pre-reserved capacity in every column.
    pub fn with_capacity(ndims: usize, attr_types: &[DataType], cap: usize) -> Self {
        CellBatch {
            coords: vec![Vec::with_capacity(cap); ndims],
            attrs: attr_types
                .iter()
                .map(|&t| Column::with_capacity(t, cap))
                .collect(),
        }
    }

    /// Number of dimensions (coordinate columns).
    pub fn ndims(&self) -> usize {
        self.coords.len()
    }

    /// Number of attribute columns.
    pub fn nattrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of cells in the batch.
    pub fn len(&self) -> usize {
        self.coords
            .first()
            .map_or_else(|| self.attrs.first().map_or(0, Column::len), Vec::len)
    }

    /// Whether the batch holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one cell given its coordinates and attribute values.
    pub fn push(&mut self, coord: &[i64], values: &[Value]) -> Result<()> {
        if coord.len() != self.coords.len() {
            return Err(ArrayError::ArityMismatch {
                expected: self.coords.len(),
                actual: coord.len(),
            });
        }
        if values.len() != self.attrs.len() {
            return Err(ArrayError::ArityMismatch {
                expected: self.attrs.len(),
                actual: values.len(),
            });
        }
        for (col, &c) in self.coords.iter_mut().zip(coord) {
            col.push(c);
        }
        for (col, v) in self.attrs.iter_mut().zip(values) {
            col.push(v.clone())?;
        }
        Ok(())
    }

    /// Remove all cells, keeping every column's allocated capacity.
    pub fn clear(&mut self) {
        for col in &mut self.coords {
            col.clear();
        }
        for col in &mut self.attrs {
            col.clear();
        }
    }

    /// Append row `i` of `src` (same column layout) without materializing
    /// per-value `Value`s — the hot path for slice/bucket distribution.
    pub fn push_row_from(&mut self, src: &CellBatch, i: usize) -> Result<()> {
        if src.ndims() != self.ndims() || src.nattrs() != self.nattrs() {
            return Err(ArrayError::SchemaMismatch(format!(
                "cannot copy a row of a {} dim / {} attr batch into one with {} dims / {} attrs",
                src.ndims(),
                src.nattrs(),
                self.ndims(),
                self.nattrs()
            )));
        }
        for (col, s) in self.coords.iter_mut().zip(&src.coords) {
            col.push(s[i]);
        }
        for (col, s) in self.attrs.iter_mut().zip(&src.attrs) {
            col.push_from(s, i)?;
        }
        Ok(())
    }

    /// The coordinate of cell `i` as an owned vector.
    pub fn coord(&self, i: usize) -> Vec<i64> {
        self.coords.iter().map(|c| c[i]).collect()
    }

    /// The value of attribute column `a` at cell `i`.
    pub fn value(&self, i: usize, a: usize) -> Value {
        self.attrs[a].get(i)
    }

    /// Move every cell of `other` onto the end of `self`.
    ///
    /// Column counts and types must match.
    pub fn append(&mut self, mut other: CellBatch) -> Result<()> {
        if other.ndims() != self.ndims() || other.nattrs() != self.nattrs() {
            return Err(ArrayError::SchemaMismatch(format!(
                "cannot append batch with {} dims / {} attrs to one with {} dims / {} attrs",
                other.ndims(),
                other.nattrs(),
                self.ndims(),
                self.nattrs()
            )));
        }
        for (a, b) in self.coords.iter_mut().zip(&mut other.coords) {
            a.append(b);
        }
        for (a, b) in self.attrs.iter_mut().zip(&mut other.attrs) {
            a.append(b)?;
        }
        Ok(())
    }

    /// Compare the coordinates of cells `a` and `b` in C-style (row-major,
    /// first dimension outermost) order.
    pub fn cmp_coords(&self, a: usize, b: usize) -> Ordering {
        for col in &self.coords {
            match col[a].cmp(&col[b]) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Whether the cells are in C-style coordinate order.
    pub fn is_sorted_c_order(&self) -> bool {
        (1..self.len()).all(|i| self.cmp_coords(i - 1, i) != Ordering::Greater)
    }

    /// Sort the cells into C-style coordinate order.
    ///
    /// Implements the sort invoked by `redim`/`sort` operators
    /// (paper Table 1); stable so attribute order among coordinate ties
    /// is deterministic. Dispatches among the normalized-key kernels
    /// ([`keys`]) with the default thresholds; see
    /// [`sort_c_order_with`](Self::sort_c_order_with).
    pub fn sort_c_order(&mut self) {
        self.sort_c_order_with(&keys::KernelConfig::default());
    }

    /// C-order sort with explicit kernel dispatch: comparator below
    /// `cfg.radix_min_rows` or when the key does not normalize,
    /// otherwise counting / radix / parallel radix per `cfg` (see
    /// [`keys::KernelConfig`]). Returns the kernel that ran. Every
    /// kernel is stable, so the choice never changes results.
    pub fn sort_c_order_with(&mut self, cfg: &keys::KernelConfig) -> keys::SortKernel {
        if self.is_sorted_c_order() {
            return keys::SortKernel::Identity;
        }
        if self.len() >= cfg.radix_min_rows {
            if let Some(kernel) = keys::sort_c_order_keyed(self, cfg) {
                return kernel;
            }
        }
        self.sort_c_order_comparator();
        keys::SortKernel::Comparator
    }

    /// Comparator-based C-order sort — the radix path's fallback, kept
    /// independently callable for before/after benchmarking.
    #[doc(hidden)]
    pub fn sort_c_order_comparator(&mut self) {
        if self.is_sorted_c_order() {
            return;
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.sort_by(|&a, &b| self.cmp_coords(a, b));
        self.apply_permutation(&indices);
    }

    /// Reorder the batch so row `i` of the result is old row `perm[i]`.
    ///
    /// `perm` must be a permutation (each row index exactly once):
    /// strings move rather than clone. One columnar gather pass per
    /// column through the thread-local scratch buffers.
    pub fn apply_permutation(&mut self, perm: &[usize]) {
        keys::with_scratch(|s| self.permute_impl(perm, &mut s.gather));
    }

    /// [`CellBatch::apply_permutation`] for the radix kernels' `u32`
    /// permutations, gathering through a caller-owned scratch.
    pub(crate) fn permute_u32(&mut self, perm: &[u32], scratch: &mut GatherScratch) {
        self.permute_impl(perm, scratch);
    }

    fn permute_impl<I: PermIndex>(&mut self, perm: &[I], scratch: &mut GatherScratch) {
        debug_assert_eq!(perm.len(), self.len());
        #[cfg(debug_assertions)]
        {
            let mut seen = vec![false; self.len()];
            for i in perm {
                assert!(
                    !std::mem::replace(&mut seen[i.ix()], true),
                    "apply_permutation requires each row index exactly once"
                );
            }
        }
        for col in &mut self.coords {
            scratch.ints.clear();
            scratch.ints.extend(perm.iter().map(|&i| col[i.ix()]));
            std::mem::swap(col, &mut scratch.ints);
        }
        for col in &mut self.attrs {
            col.permute_impl(perm, scratch);
        }
    }

    /// A new batch containing only the rows at `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> CellBatch {
        let mut out = CellBatch {
            coords: vec![Vec::with_capacity(indices.len()); self.ndims()],
            attrs: self
                .attrs
                .iter()
                .map(|c| Column::with_capacity(c.dtype(), indices.len()))
                .collect(),
        };
        self.take_into(indices, &mut out)
            .expect("freshly shaped batch matches its source layout");
        out
    }

    /// Append the rows at `indices` onto `out` (columnar gather into a
    /// reusable batch; layouts must match).
    pub fn take_into(&self, indices: &[usize], out: &mut CellBatch) -> Result<()> {
        if out.ndims() != self.ndims() || out.nattrs() != self.nattrs() {
            return Err(ArrayError::SchemaMismatch(format!(
                "cannot gather rows of a {} dim / {} attr batch into one with {} dims / {} attrs",
                self.ndims(),
                self.nattrs(),
                out.ndims(),
                out.nattrs()
            )));
        }
        for (dst, src) in out.coords.iter_mut().zip(&self.coords) {
            dst.extend(indices.iter().map(|&i| src[i]));
        }
        for (dst, src) in out.attrs.iter_mut().zip(&self.attrs) {
            dst.gather_from(src, indices)?;
        }
        Ok(())
    }

    /// Compare rows `a` and `b` lexicographically by the given attribute
    /// columns (used to order dimension-less join units by key).
    pub fn cmp_by_attr_columns(&self, cols: &[usize], a: usize, b: usize) -> Ordering {
        for &c in cols {
            match self.attrs[c].cmp_at(a, b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Whether rows are sorted by the given attribute columns.
    pub fn is_sorted_by_attr_columns(&self, cols: &[usize]) -> bool {
        (1..self.len()).all(|i| self.cmp_by_attr_columns(cols, i - 1, i) != Ordering::Greater)
    }

    /// Stable-sort rows by the given attribute columns, dispatching
    /// among the normalized-key kernels with the default thresholds; see
    /// [`sort_by_attr_columns_with`](Self::sort_by_attr_columns_with).
    pub fn sort_by_attr_columns(&mut self, cols: &[usize]) {
        self.sort_by_attr_columns_with(cols, &keys::KernelConfig::default());
    }

    /// Key sort with explicit kernel dispatch: comparator below
    /// `cfg.radix_min_rows`, for string keys, or beyond the width
    /// budget; otherwise counting / radix / parallel radix per `cfg`.
    /// Returns the kernel that ran. Every kernel is stable, so the
    /// choice never changes results.
    pub fn sort_by_attr_columns_with(
        &mut self,
        cols: &[usize],
        cfg: &keys::KernelConfig,
    ) -> keys::SortKernel {
        if self.is_sorted_by_attr_columns(cols) {
            return keys::SortKernel::Identity;
        }
        if self.len() >= cfg.radix_min_rows {
            if let Some(kernel) = keys::sort_by_attr_columns_keyed(self, cols, cfg) {
                return kernel;
            }
        }
        self.sort_by_attr_columns_comparator(cols);
        keys::SortKernel::Comparator
    }

    /// Comparator-based key sort — the radix path's fallback, kept
    /// independently callable for before/after benchmarking.
    #[doc(hidden)]
    pub fn sort_by_attr_columns_comparator(&mut self, cols: &[usize]) {
        if self.is_sorted_by_attr_columns(cols) {
            return;
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.sort_by(|&a, &b| self.cmp_by_attr_columns(cols, a, b));
        self.apply_permutation(&indices);
    }

    /// Approximate heap bytes held by the batch.
    pub fn byte_size(&self) -> usize {
        self.coords.iter().map(|c| c.len() * 8).sum::<usize>()
            + self.attrs.iter().map(Column::byte_size).sum::<usize>()
    }

    /// Iterate over `(coord, values)` pairs. Intended for tests and small
    /// result sets; hot paths should index columns directly.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Vec<i64>, Vec<Value>)> + '_ {
        (0..self.len()).map(move |i| {
            (
                self.coord(i),
                (0..self.nattrs()).map(|a| self.value(i, a)).collect(),
            )
        })
    }

    /// Internal consistency check: every column has the same length.
    pub fn check_consistent(&self) -> Result<()> {
        let n = self.len();
        for (d, c) in self.coords.iter().enumerate() {
            if c.len() != n {
                return Err(ArrayError::SchemaMismatch(format!(
                    "coordinate column {d} has length {} but batch length is {n}",
                    c.len()
                )));
            }
        }
        for (a, c) in self.attrs.iter().enumerate() {
            if c.len() != n {
                return Err(ArrayError::SchemaMismatch(format!(
                    "attribute column {a} has length {} but batch length is {n}",
                    c.len()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> CellBatch {
        let mut b = CellBatch::new(2, &[DataType::Int64, DataType::Float64]);
        b.push(&[2, 1], &[Value::Int(10), Value::Float(0.5)])
            .unwrap();
        b.push(&[1, 2], &[Value::Int(20), Value::Float(1.5)])
            .unwrap();
        b.push(&[1, 1], &[Value::Int(30), Value::Float(2.5)])
            .unwrap();
        b
    }

    #[test]
    fn push_and_read_back() {
        let b = sample_batch();
        assert_eq!(b.len(), 3);
        assert_eq!(b.coord(0), vec![2, 1]);
        assert_eq!(b.value(1, 0), Value::Int(20));
        assert_eq!(b.value(2, 1), Value::Float(2.5));
        b.check_consistent().unwrap();
    }

    #[test]
    fn push_arity_and_type_checks() {
        let mut b = CellBatch::new(2, &[DataType::Int64]);
        assert!(b.push(&[1], &[Value::Int(1)]).is_err());
        assert!(b.push(&[1, 2], &[]).is_err());
        assert!(b.push(&[1, 2], &[Value::Str("x".into())]).is_err());
        // Int coerces into float columns.
        let mut f = CellBatch::new(1, &[DataType::Float64]);
        f.push(&[1], &[Value::Int(3)]).unwrap();
        assert_eq!(f.value(0, 0), Value::Float(3.0));
    }

    #[test]
    fn c_order_sort() {
        let mut b = sample_batch();
        assert!(!b.is_sorted_c_order());
        b.sort_c_order();
        assert!(b.is_sorted_c_order());
        assert_eq!(b.coord(0), vec![1, 1]);
        assert_eq!(b.coord(1), vec![1, 2]);
        assert_eq!(b.coord(2), vec![2, 1]);
        // Attribute values moved with their cells.
        assert_eq!(b.value(0, 0), Value::Int(30));
        assert_eq!(b.value(2, 0), Value::Int(10));
    }

    #[test]
    fn sort_is_idempotent() {
        let mut b = sample_batch();
        b.sort_c_order();
        let snapshot = b.clone();
        b.sort_c_order();
        assert_eq!(b, snapshot);
    }

    #[test]
    fn figure1_serialization_order() {
        // Paper Figure 1: the first chunk of A serializes v1 as
        // (3,1,1,7,4,0,0) in C-style order. Occupied cells of chunk (i,j in
        // 1..=3): (1,2)=3, (1,3)=1, (2,1)=1, (2,2)=7, (3,1)=4, (3,2)=0, (3,3)=0
        let mut b = CellBatch::new(2, &[DataType::Int64]);
        // Insert shuffled.
        for (i, j, v) in [
            (3, 2, 0),
            (1, 2, 3),
            (2, 1, 1),
            (3, 3, 0),
            (1, 3, 1),
            (3, 1, 4),
            (2, 2, 7),
        ] {
            b.push(&[i, j], &[Value::Int(v)]).unwrap();
        }
        b.sort_c_order();
        let serialized: Vec<i64> = (0..b.len())
            .map(|i| b.value(i, 0).as_int().unwrap())
            .collect();
        assert_eq!(serialized, vec![3, 1, 1, 7, 4, 0, 0]);
    }

    #[test]
    fn append_merges_batches() {
        let mut a = sample_batch();
        let b = sample_batch();
        a.append(b).unwrap();
        assert_eq!(a.len(), 6);
        a.check_consistent().unwrap();
    }

    #[test]
    fn append_rejects_mismatched_shapes() {
        let mut a = sample_batch();
        let b = CellBatch::new(1, &[DataType::Int64]);
        assert!(a.append(b).is_err());
        let c = CellBatch::new(2, &[DataType::Str, DataType::Float64]);
        assert!(a.append(c).is_err());
    }

    #[test]
    fn take_selects_rows() {
        let b = sample_batch();
        let t = b.take(&[2, 0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.coord(0), vec![1, 1]);
        assert_eq!(t.coord(1), vec![2, 1]);
        assert_eq!(t.value(0, 0), Value::Int(30));
    }

    #[test]
    fn empty_batch_properties() {
        let b = CellBatch::new(3, &[]);
        assert!(b.is_empty());
        assert!(b.is_sorted_c_order());
        assert_eq!(b.byte_size(), 0);
        b.check_consistent().unwrap();
    }

    #[test]
    fn dimensionless_batch_len_comes_from_attrs() {
        // Hash buckets are dimension-less (paper §4: hash produces
        // "unordered buckets"); length must still be tracked.
        let mut b = CellBatch::new(0, &[DataType::Int64]);
        b.push(&[], &[Value::Int(1)]).unwrap();
        b.push(&[], &[Value::Int(2)]).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn sort_by_attr_columns_orders_keys() {
        let mut b = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
        for (k, v) in [(3, 30), (1, 10), (2, 20), (1, 11)] {
            b.push(&[], &[Value::Int(k), Value::Int(v)]).unwrap();
        }
        assert!(!b.is_sorted_by_attr_columns(&[0]));
        b.sort_by_attr_columns(&[0]);
        assert!(b.is_sorted_by_attr_columns(&[0]));
        let keys: Vec<i64> = (0..4).map(|i| b.value(i, 0).as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 1, 2, 3]);
        // Stability: 10 precedes 11 (original order among equal keys).
        assert_eq!(b.value(0, 1), Value::Int(10));
        assert_eq!(b.value(1, 1), Value::Int(11));
    }

    #[test]
    fn cmp_by_attr_columns_multi_key() {
        let mut b = CellBatch::new(0, &[DataType::Int64, DataType::Int64]);
        b.push(&[], &[Value::Int(1), Value::Int(5)]).unwrap();
        b.push(&[], &[Value::Int(1), Value::Int(3)]).unwrap();
        assert_eq!(b.cmp_by_attr_columns(&[0], 0, 1), Ordering::Equal);
        assert_eq!(b.cmp_by_attr_columns(&[0, 1], 0, 1), Ordering::Greater);
    }

    #[test]
    fn column_cmp_at() {
        let c = Column::Float(vec![1.0, f64::NAN, 0.5]);
        assert_eq!(c.cmp_at(0, 2), Ordering::Greater);
        assert_eq!(c.cmp_at(1, 1), Ordering::Equal);
        assert_eq!(c.cmp_at(0, 1), Ordering::Less); // NaN sorts last
    }

    #[test]
    fn byte_size_estimates() {
        let b = sample_batch();
        // 2 coord cols * 3 cells * 8 + int col 24 + float col 24
        assert_eq!(b.byte_size(), 48 + 24 + 24);
    }
}
