//! Scoped parallel map over `std::thread` — the engine's worker pool.
//!
//! The simulator models a shared-nothing cluster, but on real hardware
//! each simulated node's compute phases (slice mapping, hash build,
//! probe) can run on real cores concurrently, the way SciDB instances
//! would. It lives in `sj_array` so the kernel layer ([`crate::keys`])
//! can split one large sort across the same pool the executor uses
//! (re-exported as `sj_core::parallel`). The core primitive: map
//! a function over `n` independent work items on up to `threads` OS
//! threads, with
//!
//! - **work stealing**: workers pull the next item from a shared atomic
//!   cursor, so a skewed item never serializes the rest of the queue
//!   behind one pre-assigned thread;
//! - **size-ordered scheduling**: callers may pass per-item weights and
//!   the heaviest items are dispatched first (longest-processing-time
//!   order), shrinking the straggler tail that skew creates;
//! - **deterministic results**: outputs land in slots indexed by the
//!   item's original position, so the caller observes item order — never
//!   completion order — regardless of thread count or interleaving;
//! - **per-worker busy time**, so stragglers are measurable.
//!
//! `threads <= 1` (or a single item) runs inline on the caller's thread
//! with no pool, no locks, and the exact sequential execution order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Resolve a thread-count knob: `0` means "use the machine's available
/// parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Split `0..n` into `parts` contiguous, near-equal ranges (earlier
/// ranges absorb the remainder). Deterministic for a given `(n, parts)`:
/// the building block of the intra-sort and intra-join partitioning,
/// whose merge steps rely on ranges covering rows in index order.
pub fn split_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < rem);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Observability for one parallel region.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// Workers actually spawned (1 = ran inline).
    pub workers: usize,
    /// Wall-clock seconds for the whole region.
    pub wall_seconds: f64,
    /// Seconds each worker spent executing items (excludes steal/join
    /// overhead); the spread between workers is straggler time.
    pub busy_seconds: Vec<f64>,
}

impl PoolMetrics {
    /// Total busy seconds across workers.
    pub fn total_busy(&self) -> f64 {
        self.busy_seconds.iter().sum()
    }
}

/// Map `f` over `0..n` on up to `threads` workers; `out[i] = f(i)`.
///
/// Items are dispatched in index order (no weights). See [`par_map_weighted`]
/// for skew-aware scheduling.
pub fn par_map<T, F>(threads: usize, n: usize, f: F) -> (Vec<T>, PoolMetrics)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let order: Vec<usize> = (0..n).collect();
    let (out, metrics) = run_pool_until(threads, order, n, f, &|| false);
    (unwrap_complete(out), metrics)
}

/// [`par_map`] with a cooperative stop probe: before claiming each
/// item, every worker (and the inline path, between items) polls
/// `stop()`; once it returns true no further items start, and items
/// never claimed come back as `None`. Items already running finish
/// normally — nothing is interrupted mid-item, so outputs that do
/// exist are complete and the pool always joins cleanly (no leaked
/// threads, no poisoned locks).
pub fn par_map_until<T, F>(
    threads: usize,
    n: usize,
    f: F,
    stop: &(dyn Fn() -> bool + Sync),
) -> (Vec<Option<T>>, PoolMetrics)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let order: Vec<usize> = (0..n).collect();
    run_pool_until(threads, order, n, f, stop)
}

/// Map `f` over `0..weights.len()`, dispatching heavier items first
/// (descending `weights[i]`, ties by index for determinism); `out[i] = f(i)`.
///
/// This is longest-processing-time scheduling: under Zipfian skew the hot
/// unit starts immediately while the tail packs around it, instead of the
/// hot unit landing last and adding its full runtime to the makespan.
pub fn par_map_weighted<T, F>(threads: usize, weights: &[u64], f: F) -> (Vec<T>, PoolMetrics)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (out, metrics) = par_map_weighted_until(threads, weights, f, &|| false);
    (unwrap_complete(out), metrics)
}

/// [`par_map_weighted`] with a cooperative stop probe; see
/// [`par_map_until`] for the stop semantics.
pub fn par_map_weighted_until<T, F>(
    threads: usize,
    weights: &[u64],
    f: F,
    stop: &(dyn Fn() -> bool + Sync),
) -> (Vec<Option<T>>, PoolMetrics)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = weights.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    run_pool_until(threads, order, n, f, stop)
}

/// Unwrap a never-stopped pool run (stop probe was `|| false`, so every
/// slot is filled).
fn unwrap_complete<T>(out: Vec<Option<T>>) -> Vec<T> {
    out.into_iter()
        .map(|v| v.expect("worker pool completed without filling every slot"))
        .collect()
}

fn run_pool_until<T, F>(
    threads: usize,
    order: Vec<usize>,
    n: usize,
    f: F,
    stop: &(dyn Fn() -> bool + Sync),
) -> (Vec<Option<T>>, PoolMetrics)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    let wall = Instant::now();

    if workers <= 1 || n <= 1 {
        // Exact sequential path: index order, caller's thread, polling
        // the stop probe between items like a worker would.
        let t = Instant::now();
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        for i in 0..n {
            if stop() {
                out.resize_with(n, || None);
                break;
            }
            out.push(Some(f(i)));
        }
        let busy = t.elapsed().as_secs_f64();
        return (
            out,
            PoolMetrics {
                workers: 1,
                wall_seconds: wall.elapsed().as_secs_f64(),
                busy_seconds: vec![busy],
            },
        );
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut busy_seconds = vec![0.0f64; workers];

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut busy = 0.0f64;
                    loop {
                        // The between-units lifecycle checkpoint: a
                        // tripped probe stops this worker before it
                        // claims another item.
                        if stop() {
                            break;
                        }
                        let pos = cursor.fetch_add(1, Ordering::Relaxed);
                        if pos >= order.len() {
                            break;
                        }
                        let idx = order[pos];
                        let t = Instant::now();
                        let value = f(idx);
                        busy += t.elapsed().as_secs_f64();
                        *slots[idx].lock().expect("result slot poisoned") = Some(value);
                    }
                    busy
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(busy) => busy_seconds[w] = busy,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    let out: Vec<Option<T>> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned"))
        .collect();
    (
        out,
        PoolMetrics {
            workers,
            wall_seconds: wall.elapsed().as_secs_f64(),
            busy_seconds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolve_zero_is_machine_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_are_in_item_order() {
        for threads in [1, 2, 4, 8] {
            let (out, m) = par_map(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            assert!(m.workers >= 1 && m.workers <= threads.max(1));
            assert_eq!(m.busy_seconds.len(), m.workers);
        }
    }

    #[test]
    fn weighted_results_match_unweighted() {
        let weights: Vec<u64> = (0..50).map(|i| (i * 7919) % 100).collect();
        let (a, _) = par_map(4, 50, |i| i + 1);
        let (b, _) = par_map_weighted(4, &weights, |i| i + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let (out, _) = par_map(8, 1000, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_input_is_fine() {
        let (out, m) = par_map(4, 0, |i| i);
        assert!(out.is_empty());
        assert_eq!(m.workers, 1);
    }

    #[test]
    fn single_thread_runs_inline() {
        // Inline path must not spawn: verify via thread id equality.
        let main_id = std::thread::current().id();
        let (ids, m) = par_map(1, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == main_id));
        assert_eq!(m.workers, 1);
    }

    #[test]
    fn stop_probe_leaves_unclaimed_items_none() {
        for threads in [1, 2, 8] {
            let done = AtomicU64::new(0);
            // Stop after 10 items have finished: whatever is already
            // claimed completes, nothing new starts.
            let (out, _) = par_map_until(
                threads,
                1000,
                |i| {
                    done.fetch_add(1, Ordering::Relaxed);
                    i
                },
                &|| done.load(Ordering::Relaxed) >= 10,
            );
            assert_eq!(out.len(), 1000);
            let filled = out.iter().flatten().count();
            assert!(
                filled < 1000,
                "threads={threads}: the probe must stop the pool early"
            );
            // Every filled slot holds its own index (completed items
            // are whole, not torn).
            for (i, v) in out.iter().enumerate() {
                if let Some(v) = v {
                    assert_eq!(*v, i);
                }
            }
        }
    }

    #[test]
    fn never_stopping_probe_matches_plain_map() {
        let (plain, _) = par_map(4, 64, |i| i * 3);
        let (until, _) = par_map_until(4, 64, |i| i * 3, &|| false);
        assert_eq!(until.into_iter().flatten().collect::<Vec<_>>(), plain);
        let weights: Vec<u64> = (0..64).map(|i| (i as u64 * 31) % 17).collect();
        let (wplain, _) = par_map_weighted(4, &weights, |i| i * 3);
        let (wuntil, _) = par_map_weighted_until(4, &weights, |i| i * 3, &|| false);
        assert_eq!(wuntil.into_iter().flatten().collect::<Vec<_>>(), wplain);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
